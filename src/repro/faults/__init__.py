"""Deterministic fault injection for the feedback path.

The paper's robustness claim (Theorem 5) is about *behavioural*
misbehaviour — greedy sources — under perfect signalling.  This package
perturbs the signalling itself: every injector models one way the
feedback loop of a real deployment degrades, and all of them are
seeded and deterministic, so a faulty run is exactly as reproducible
as a clean one.

Injectors (see :mod:`repro.faults.injectors`):

* :class:`SignalLoss` — a source's congestion signal is lost with some
  probability and it keeps acting on the last value it received;
* :class:`SignalNoise` — the delivered signal is corrupted by bounded
  additive noise (clipped back into ``[0, 1]``);
* :class:`SignalQuantisation` — the delivered signal is rounded to a
  coarse grid (finite-precision feedback fields);
* :class:`ExtraDelay` — the arriving signal is the true signal from a
  bounded number of steps ago (staleness beyond the model's built-in
  synchrony);
* :class:`ClockSkew` — each source draws one constant per-run lag and
  always samples that many steps late (the fault-family face of the
  heterogeneous-clock engine in :mod:`repro.core.asynchronous`);
* :class:`GatewayOutage` — a gateway stops signalling for a window of
  steps (one-shot or periodic) and its connections coast on stale
  values until it recovers.

A :class:`FaultPlan` bundles injectors with one seed and threads
through :meth:`FlowControlSystem.run
<repro.core.dynamics.FlowControlSystem.run>`, :meth:`run_ensemble
<repro.core.dynamics.FlowControlSystem.run_ensemble>`, and the
packet-level :func:`~repro.simulation.closed_loop.run_closed_loop`.
An empty plan is guaranteed to leave every path bit-identical to the
fault-free code; a non-empty plan records every injected event (a
:class:`FaultEvent`) both on the returned trajectory and in the
observability layer's :class:`~repro.observability.RunRecord`.

CLI specs (``--faults``) parse through :func:`parse_fault_spec`, e.g.
``"loss=0.3,seed=7"`` or ``"delay=2:1,outage=50:20:100"``.
"""

from .injectors import (ClockSkew, ExtraDelay, FaultInjector,
                        GatewayOutage, SignalLoss, SignalNoise,
                        SignalQuantisation)
from .plan import FaultEvent, FaultPlan, FaultState
from .spec import parse_fault_spec

__all__ = [
    "FaultInjector", "SignalLoss", "SignalNoise", "SignalQuantisation",
    "ExtraDelay", "ClockSkew", "GatewayOutage",
    "FaultPlan", "FaultState", "FaultEvent",
    "parse_fault_spec",
]
