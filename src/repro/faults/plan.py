"""Fault plans and their per-run state.

A :class:`FaultPlan` is an immutable description — a tuple of injectors
plus one seed.  Starting a plan yields a :class:`FaultState`: the
mutable per-trajectory machinery (RNG stream, last-delivered signals,
bounded history of true signals, recorded events).  Determinism
contract:

* the same plan started for the same member always produces the same
  perturbations and the same recorded events for the same inputs;
* distinct ensemble members get statistically independent streams
  (member index is folded into the RNG seed), so ensemble member ``m``
  under a plan reproduces ``run(initials[m], faults=plan,
  fault_member=m)`` exactly;
* an *empty* plan starts to ``None`` — callers keep the fault-free
  code path, which is therefore bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from ..errors import FaultError
from .injectors import (ClockSkew, ExtraDelay, FaultInjector,
                        GatewayOutage, SignalLoss, SignalNoise,
                        SignalQuantisation)

__all__ = ["FaultEvent", "FaultPlan", "FaultState"]


class FaultEvent(NamedTuple):
    """One injected perturbation, as recorded.

    ``detail`` is injector-specific: the stale value delivered (loss,
    outage), the effective lag (delay), or the signed signal error
    (corruption, quantisation).
    """

    step: int
    member: int
    connection: int
    kind: str
    detail: float

    def as_list(self) -> list:
        """JSON-safe view used by the observability layer."""
        return [int(self.step), int(self.member), int(self.connection),
                str(self.kind), float(self.detail)]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable set of fault injectors.

    ``FaultPlan()`` is the empty plan — a guaranteed no-op.  Plans are
    picklable (they travel into sweep workers) and hashable on their
    description.
    """

    injectors: Tuple[FaultInjector, ...] = ()
    seed: int = 0

    def __post_init__(self):
        injectors = tuple(self.injectors)
        for inj in injectors:
            if not isinstance(inj, FaultInjector):
                raise FaultError(
                    f"plan entries must be fault injectors, "
                    f"got {inj!r}")
        object.__setattr__(self, "injectors", injectors)
        if not isinstance(self.seed, int) or self.seed < 0:
            raise FaultError(
                f"plan seed must be an int >= 0, got {self.seed!r}")

    @property
    def empty(self) -> bool:
        return not self.injectors

    def start(self, network=None, n_connections: Optional[int] = None,
              member: int = 0) -> Optional["FaultState"]:
        """Create the per-run state, or ``None`` for the empty plan.

        Pass the :class:`~repro.core.topology.Network` when available —
        it resolves :class:`GatewayOutage` gateway names to connection
        sets (and validates them).  ``n_connections`` alone suffices
        for plans without named-gateway outages.
        """
        if self.empty:
            return None
        if network is not None:
            n = network.num_connections
        elif n_connections is not None:
            n = int(n_connections)
        else:
            raise FaultError(
                "FaultPlan.start needs a network or n_connections")
        if n < 1:
            raise FaultError(f"need at least one connection, got {n}")
        outage_masks = {}
        for inj in self.injectors:
            if isinstance(inj, GatewayOutage) and inj.gateway is not None:
                if network is None:
                    raise FaultError(
                        f"outage names gateway {inj.gateway!r} but no "
                        f"network was passed to FaultPlan.start")
                if inj.gateway not in network.gateway_names:
                    raise FaultError(
                        f"outage names unknown gateway {inj.gateway!r}; "
                        f"known: {sorted(network.gateway_names)}")
                outage_masks[inj] = np.asarray(
                    network.connections_at(inj.gateway), dtype=np.intp)
        return FaultState(self, n, int(member), outage_masks)

    def describe(self) -> str:
        """One-line human-readable summary (CLI, provenance notes)."""
        if self.empty:
            return "no faults"
        parts = [repr(inj) for inj in self.injectors]
        return f"seed={self.seed}; " + ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe description (artifact provenance)."""
        return {"seed": self.seed,
                "injectors": [inj.to_dict() for inj in self.injectors]}


class FaultState:
    """Mutable per-trajectory fault machinery.  See :class:`FaultPlan`.

    Attributes:
        events: every :class:`FaultEvent` injected so far, in
            (step, stage, connection) order.
    """

    def __init__(self, plan: FaultPlan, n_connections: int, member: int,
                 outage_masks: dict):
        self.plan = plan
        self.n = int(n_connections)
        self.member = int(member)
        self.events: List[FaultEvent] = []
        self.rng = np.random.default_rng([plan.seed, self.member])
        # Stable stage sort: skew -> delay -> outage -> loss -> noise
        # -> quantise.
        self._stages = sorted(plan.injectors, key=lambda inj: inj.stage)
        self._outage_masks = outage_masks
        self._delivered = np.zeros(self.n, dtype=float)
        max_lag = max((inj.max_lag for inj in self._stages
                       if isinstance(inj, (ClockSkew, ExtraDelay))),
                      default=0)
        self._history: List[np.ndarray] = []  # true signals, bounded
        self._history_cap = max_lag + 1
        # Per-source skew lags are a fixed property of the run: drawn
        # once from the member stream, before any per-step draws.
        self._skew_lags = {
            inj: self.rng.integers(inj.min_lag, inj.max_lag + 1,
                                   size=self.n)
            for inj in self._stages if isinstance(inj, ClockSkew)
        }

    def _event(self, step: int, connection: int, kind: str,
               detail: float) -> None:
        self.events.append(FaultEvent(int(step), self.member,
                                      int(connection), kind,
                                      float(detail)))

    def apply(self, step: int, true_signals: np.ndarray) -> np.ndarray:
        """Perturb one step's true signal vector; returns the observed
        vector (a fresh array — the input is never mutated)."""
        b = np.asarray(true_signals, dtype=float)
        if b.shape != (self.n,):
            raise FaultError(
                f"signal vector has shape {b.shape}, plan was started "
                f"for {self.n} connections")
        self._history.append(b.copy())
        if len(self._history) > self._history_cap:
            del self._history[0]
        observed = b.copy()
        for inj in self._stages:
            if isinstance(inj, ClockSkew):
                observed = self._apply_clock_skew(inj, step, observed)
            elif isinstance(inj, ExtraDelay):
                observed = self._apply_delay(inj, step, observed)
            elif isinstance(inj, GatewayOutage):
                observed = self._apply_outage(inj, step, observed)
            elif isinstance(inj, SignalLoss):
                observed = self._apply_loss(inj, step, observed)
            elif isinstance(inj, SignalNoise):
                observed = self._apply_noise(inj, step, observed)
            elif isinstance(inj, SignalQuantisation):
                observed = self._apply_quantisation(inj, step, observed)
            else:  # pragma: no cover — FaultPlan validated entries
                raise FaultError(f"unknown injector {inj!r}")
        self._delivered = observed.copy()
        return observed

    # -- stages --------------------------------------------------------
    def _apply_clock_skew(self, inj: ClockSkew, step: int,
                          observed: np.ndarray) -> np.ndarray:
        lags = self._skew_lags[inj]
        # history[-1] is the current step's true signal (lag 0); the
        # oldest retained entry bounds the achievable lag early on.
        max_avail = len(self._history) - 1
        for i in range(self.n):
            lag = min(int(lags[i]), max_avail)
            if lag <= 0:
                continue
            observed[i] = self._history[-1 - lag][i]
            self._event(step, i, inj.kind, float(lag))
        return observed

    def _apply_delay(self, inj: ExtraDelay, step: int,
                     observed: np.ndarray) -> np.ndarray:
        lags = np.full(self.n, inj.delay, dtype=np.intp)
        if inj.jitter:
            lags = lags + self.rng.integers(0, inj.jitter + 1,
                                            size=self.n)
        # history[-1] is the current step's true signal (lag 0); the
        # oldest retained entry bounds the achievable lag early on.
        max_avail = len(self._history) - 1
        for i in range(self.n):
            lag = min(int(lags[i]), max_avail)
            if lag <= 0:
                continue
            observed[i] = self._history[-1 - lag][i]
            self._event(step, i, inj.kind, float(lag))
        return observed

    def _apply_outage(self, inj: GatewayOutage, step: int,
                      observed: np.ndarray) -> np.ndarray:
        if not inj.active(step):
            return observed
        affected = self._outage_masks.get(inj)
        if affected is None:
            affected = range(self.n)
        for i in affected:
            observed[i] = self._delivered[i]
            self._event(step, i, inj.kind, float(observed[i]))
        return observed

    def _apply_loss(self, inj: SignalLoss, step: int,
                    observed: np.ndarray) -> np.ndarray:
        draws = self.rng.random(self.n)
        eligible = (range(self.n) if inj.connections is None
                    else inj.connections)
        for i in eligible:
            if i >= self.n:
                raise FaultError(
                    f"loss targets connection {i} but the system has "
                    f"only {self.n}")
            if draws[i] < inj.rate:
                observed[i] = self._delivered[i]
                self._event(step, i, inj.kind, float(observed[i]))
        return observed

    def _apply_noise(self, inj: SignalNoise, step: int,
                     observed: np.ndarray) -> np.ndarray:
        # Draw both streams unconditionally so the RNG stream shape
        # does not depend on which connections happen to be hit.
        draws = self.rng.random(self.n)
        noise = self.rng.uniform(-inj.amplitude, inj.amplitude,
                                 size=self.n)
        for i in range(self.n):
            if draws[i] < inj.rate:
                old = observed[i]
                observed[i] = min(1.0, max(0.0, old + noise[i]))
                self._event(step, i, inj.kind,
                            float(observed[i] - old))
        return observed

    def _apply_quantisation(self, inj: SignalQuantisation, step: int,
                            observed: np.ndarray) -> np.ndarray:
        grid = inj.levels - 1
        for i in range(self.n):
            q = round(observed[i] * grid) / grid
            if q != observed[i]:
                self._event(step, i, inj.kind, float(q - observed[i]))
                observed[i] = q
        return observed
