"""Parsing of ``--faults`` spec strings into :class:`FaultPlan` s.

Grammar (comma-separated ``key=value`` tokens, whitespace ignored)::

    loss=RATE                      Bernoulli signal loss
    noise=RATE[:AMPLITUDE]         additive corruption (amplitude 0.1)
    quantise=LEVELS                round signals to LEVELS grid points
    delay=STEPS[:JITTER]           bounded extra feedback delay
    skew=MAX_LAG[:MIN_LAG]         per-source constant clock-skew lag
                                   drawn once from U{MIN_LAG..MAX_LAG}
                                   (MIN_LAG defaults to 0)
    outage=START:DURATION[:PERIOD][@GATEWAY]
                                   gateway outage window (repeating
                                   every PERIOD steps when given)
    seed=INT                       the plan seed (default 0)

Examples::

    loss=0.3,seed=7
    delay=2:1,noise=0.2:0.05
    outage=100:25:400@g0,quantise=16

Malformed specs raise :class:`~repro.errors.FaultError` with the
offending token named, which the CLI turns into a clean one-line
failure.
"""

from __future__ import annotations

from ..errors import FaultError
from .injectors import (ClockSkew, ExtraDelay, GatewayOutage,
                        SignalLoss, SignalNoise, SignalQuantisation)
from .plan import FaultPlan

__all__ = ["parse_fault_spec"]


def _int_field(token: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise FaultError(
            f"fault spec token {token!r}: expected an integer, "
            f"got {text!r}") from None


def _float_field(token: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FaultError(
            f"fault spec token {token!r}: expected a number, "
            f"got {text!r}") from None


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse one spec string (see module docstring) into a plan."""
    injectors = []
    seed = 0
    for raw in str(spec).split(","):
        token = raw.strip()
        if not token:
            continue
        if "=" not in token:
            raise FaultError(
                f"fault spec token {token!r}: expected key=value")
        key, _, value = token.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "seed":
            seed = _int_field(token, value)
            if seed < 0:
                raise FaultError(
                    f"fault spec token {token!r}: seed must be >= 0")
        elif key == "loss":
            injectors.append(SignalLoss(rate=_float_field(token, value)))
        elif key == "noise":
            parts = value.split(":")
            if len(parts) > 2:
                raise FaultError(
                    f"fault spec token {token!r}: expected "
                    f"noise=RATE[:AMPLITUDE]")
            rate = _float_field(token, parts[0])
            amplitude = (_float_field(token, parts[1])
                         if len(parts) == 2 else 0.1)
            injectors.append(SignalNoise(rate=rate, amplitude=amplitude))
        elif key == "quantise":
            injectors.append(
                SignalQuantisation(levels=_int_field(token, value)))
        elif key == "delay":
            parts = value.split(":")
            if len(parts) > 2:
                raise FaultError(
                    f"fault spec token {token!r}: expected "
                    f"delay=STEPS[:JITTER]")
            delay = _int_field(token, parts[0])
            jitter = _int_field(token, parts[1]) if len(parts) == 2 else 0
            injectors.append(ExtraDelay(delay=delay, jitter=jitter))
        elif key == "skew":
            parts = value.split(":")
            if len(parts) > 2:
                raise FaultError(
                    f"fault spec token {token!r}: expected "
                    f"skew=MAX_LAG[:MIN_LAG]")
            max_lag = _int_field(token, parts[0])
            min_lag = _int_field(token, parts[1]) if len(parts) == 2 else 0
            injectors.append(ClockSkew(min_lag=min_lag, max_lag=max_lag))
        elif key == "outage":
            gateway = None
            if "@" in value:
                value, _, gateway = value.partition("@")
                gateway = gateway.strip() or None
            parts = value.split(":")
            if len(parts) not in (2, 3):
                raise FaultError(
                    f"fault spec token {token!r}: expected "
                    f"outage=START:DURATION[:PERIOD][@GATEWAY]")
            start = _int_field(token, parts[0])
            duration = _int_field(token, parts[1])
            period = (_int_field(token, parts[2])
                      if len(parts) == 3 else None)
            injectors.append(GatewayOutage(start=start, duration=duration,
                                           period=period, gateway=gateway))
        else:
            raise FaultError(
                f"fault spec token {token!r}: unknown injector {key!r} "
                f"(known: loss, noise, quantise, delay, skew, outage, "
                f"seed)")
    return FaultPlan(injectors=tuple(injectors), seed=seed)
