"""The individual fault injectors.

Each injector is a small frozen dataclass describing one perturbation
of the per-connection signal vector ``b``.  Injectors hold *no* mutable
state — all randomness and memory (stale values, signal history) lives
in the per-run :class:`~repro.faults.plan.FaultState`, so one plan can
drive any number of independent, identically-distributed runs.

Injectors are applied in a fixed stage order regardless of how they are
listed in the plan (stable within a stage):

0. :class:`ClockSkew` — a slow source samples the world late;
1. :class:`ExtraDelay` — decides *which* true signal arrives;
2. :class:`GatewayOutage` — suppresses arrival entirely (stale value);
3. :class:`SignalLoss` — drops individual deliveries (stale value);
4. :class:`SignalNoise` — corrupts what arrived;
5. :class:`SignalQuantisation` — rounds what arrived.

This matches the physical pipeline: a skewed clock reads an old
snapshot before anything is even sent, the signal is then delayed in
flight, may fail to arrive at all, and only a signal that does arrive
can be corrupted or coarsely encoded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import FaultError

__all__ = ["FaultInjector", "ClockSkew", "ExtraDelay", "GatewayOutage",
           "SignalLoss", "SignalNoise", "SignalQuantisation"]


def _check_probability(name: str, value: float) -> float:
    value = float(value)
    if not (math.isfinite(value) and 0.0 <= value <= 1.0):
        raise FaultError(f"{name} must lie in [0, 1], got {value!r}")
    return value


class FaultInjector:
    """Base class; subclasses set ``stage`` (application order) and
    ``kind`` (the label used in recorded :class:`FaultEvent` s)."""

    stage: int = 99
    kind: str = "abstract"

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for key, value in self.__dict__.items():
            out[key] = value
        return out


@dataclass(frozen=True)
class ClockSkew(FaultInjector):
    """Per-source constant signal staleness from heterogeneous clocks.

    When the run starts, each connection draws one lag
    ``l_i ~ U{min_lag..max_lag}`` from the member's fault stream and
    thereafter always observes the *true* signal from ``l_i`` steps ago
    (clamped to the oldest recorded step).  A slow clock reads the
    world late — and unlike :class:`ExtraDelay`, whose lag is redrawn
    every step, the staleness is a fixed per-source property, which is
    exactly the asymmetry that a heterogeneous-clock population (see
    :mod:`repro.core.asynchronous`) exhibits.

    One event per (step, connection) with effective lag ``> 0`` is
    recorded, carrying the lag as its detail.
    """

    min_lag: int = 0
    max_lag: int = 2

    stage = 0
    kind = "clock_skew"

    def __post_init__(self):
        if not (isinstance(self.min_lag, int) and self.min_lag >= 0):
            raise FaultError(
                f"min_lag must be an int >= 0, got {self.min_lag!r}")
        if not (isinstance(self.max_lag, int)
                and self.max_lag >= self.min_lag):
            raise FaultError(
                f"max_lag must be an int >= min_lag "
                f"({self.min_lag}), got {self.max_lag!r}")
        if self.max_lag == 0:
            raise FaultError("ClockSkew with max_lag=0 injects "
                             "nothing; drop it from the plan")


@dataclass(frozen=True)
class ExtraDelay(FaultInjector):
    """Bounded extra feedback delay.

    The signal arriving at step ``t`` is the *true* signal from step
    ``t - d`` with ``d = delay + U{0..jitter}`` drawn per connection
    and per step (clamped to the oldest recorded step).  ``delay=0,
    jitter=k`` models pure jitter; ``jitter=0`` a constant staleness.

    One event per (step, connection) with effective lag ``> 0`` is
    recorded, carrying the lag as its detail.
    """

    delay: int = 1
    jitter: int = 0

    stage = 1
    kind = "delay"

    def __post_init__(self):
        if not (isinstance(self.delay, int) and self.delay >= 0):
            raise FaultError(
                f"delay must be an int >= 0, got {self.delay!r}")
        if not (isinstance(self.jitter, int) and self.jitter >= 0):
            raise FaultError(
                f"jitter must be an int >= 0, got {self.jitter!r}")
        if self.delay == 0 and self.jitter == 0:
            raise FaultError("ExtraDelay with delay=0 and jitter=0 "
                             "injects nothing; drop it from the plan")

    @property
    def max_lag(self) -> int:
        return self.delay + self.jitter


@dataclass(frozen=True)
class GatewayOutage(FaultInjector):
    """A gateway stops signalling for a window of steps.

    While the outage is active, every connection routed through
    ``gateway`` (all connections when ``gateway`` is ``None``) receives
    no new signal and keeps acting on the last value it received.  With
    ``period=None`` the window ``[start, start + duration)`` happens
    once; otherwise it repeats every ``period`` steps.
    """

    start: int = 0
    duration: int = 1
    period: Optional[int] = None
    gateway: Optional[str] = None

    stage = 2
    kind = "outage"

    def __post_init__(self):
        if not (isinstance(self.start, int) and self.start >= 0):
            raise FaultError(
                f"outage start must be an int >= 0, got {self.start!r}")
        if not (isinstance(self.duration, int) and self.duration >= 1):
            raise FaultError(
                f"outage duration must be an int >= 1, "
                f"got {self.duration!r}")
        if self.period is not None and not (
                isinstance(self.period, int)
                and self.period >= self.duration):
            raise FaultError(
                f"outage period must be an int >= duration "
                f"({self.duration}), got {self.period!r}")

    def active(self, step: int) -> bool:
        """True when the outage suppresses signalling at ``step``."""
        offset = step - self.start
        if offset < 0:
            return False
        if self.period is None:
            return offset < self.duration
        return (offset % self.period) < self.duration


@dataclass(frozen=True)
class SignalLoss(FaultInjector):
    """Per-delivery Bernoulli signal loss.

    Each step, each (selected) connection independently loses its
    signal with probability ``rate`` and keeps acting on the last value
    it received — stale ``b_i``, exactly the perturbation that flips
    aggregate-feedback conclusions.  ``connections`` restricts the loss
    to a subset (``None`` = everyone).
    """

    rate: float = 0.1
    connections: Optional[Tuple[int, ...]] = None

    stage = 3
    kind = "loss"

    def __post_init__(self):
        _check_probability("loss rate", self.rate)
        if self.connections is not None:
            conns = tuple(int(i) for i in self.connections)
            if any(i < 0 for i in conns):
                raise FaultError(
                    f"loss connections must be >= 0, got {conns!r}")
            object.__setattr__(self, "connections", conns)


@dataclass(frozen=True)
class SignalNoise(FaultInjector):
    """Bounded additive corruption of delivered signals.

    Each step, each connection's delivered signal is independently
    corrupted with probability ``rate`` by ``U(-amplitude, +amplitude)``
    additive noise, clipped back into ``[0, 1]``.  The recorded event
    detail is the realised (post-clip) perturbation.
    """

    rate: float = 0.1
    amplitude: float = 0.1

    stage = 4
    kind = "corrupt"

    def __post_init__(self):
        _check_probability("corruption rate", self.rate)
        amp = float(self.amplitude)
        if not (math.isfinite(amp) and 0.0 < amp <= 1.0):
            raise FaultError(
                f"corruption amplitude must lie in (0, 1], got "
                f"{self.amplitude!r}")


@dataclass(frozen=True)
class SignalQuantisation(FaultInjector):
    """Deterministic rounding of delivered signals to a coarse grid.

    The delivered signal is rounded to the nearest of ``levels``
    uniformly spaced values in ``[0, 1]`` — a ``levels``-ary feedback
    field.  Events are recorded only where rounding actually moved the
    value; the detail is the signed rounding error.
    """

    levels: int = 8

    stage = 5
    kind = "quantise"

    def __post_init__(self):
        if not (isinstance(self.levels, int) and self.levels >= 2):
            raise FaultError(
                f"quantisation levels must be an int >= 2, "
                f"got {self.levels!r}")
