"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the registered paper artifacts (T1, F1..F14);
* ``run <id> [--csv PATH] [--json-dir DIR]`` — run one experiment with
  default parameters, print its table, optionally dump the rows as CSV
  and/or a schema-valid JSON run-record artifact (provenance +
  per-iteration engine observables);
* ``all [--csv-dir DIR] [--json-dir DIR]`` — run everything, print a
  summary line per artifact, exit nonzero if any shape check fails;
* ``table1 [--rates r1,r2,...] [--mu MU]`` — regenerate Table 1 for
  custom rates;
* ``selftest`` — fast smoke check of the batch trajectory engine and
  the fault/resilience layer (equivalence against the scalar paths, a
  tiny ensemble, a faulty run, a checkpoint/resume round-trip); exits
  nonzero when any check fails;
* ``fuzz [--seed S] [--count K] [--shrink] [--json-dir D]`` — generate
  K deterministic random scenarios and cross-check every engine and
  theorem oracle on each (see :mod:`repro.scenarios`); exits nonzero
  on any oracle violation and prints a minimal repro spec when
  ``--shrink`` is given;
* ``scale [--n N] [--members M] [--block-size B] [--history P]
  [--steps K] [--discipline D]`` — run one blocked ensemble at scale
  (default ``N=100000``) and print the projected buffer sizes,
  outcome counts, and member-steps per second;
* ``chaos [--quick] [--rounds R] [--seed S] [--workdir DIR]`` — the
  structural chaos layer end to end: a scheduled
  degradation/blackhole run with its recorded transitions, the
  Theorem 5 robustness-floor monitor on Fair Share vs FIFO against a
  blaster adversary, and the kill-anywhere harness (SIGKILL a sweep
  worker at fuzzed crashpoints, prove the resumed results
  bit-identical); exits nonzero when any leg fails.

``selftest``, ``fuzz`` and ``scale`` also take ``--backend NAME`` (or
honour the ``REPRO_BACKEND`` environment variable) to pick the array /
compiled-kernel backend for the run; unknown or unavailable names fail
loudly with the list of available backends and an install hint (see
:mod:`repro.backends`).

``run`` also takes ``--faults SPEC`` (inject a seeded fault plan, e.g.
``loss=0.3,delay=2,seed=7`` — see :func:`repro.faults.parse_fault_spec`)
and ``--resume DIR`` (checkpoint the experiment's parameter sweep in
``DIR`` and resume it from there after an interruption); both only work
with experiments whose harness accepts the corresponding keyword
(``--faults``: X6; ``--resume``: X6 and X7).

:func:`main` raises :class:`~repro.errors.ReproError` subclasses on
user mistakes — the process entry point :func:`console_main` turns
those into a one-line message on stderr and exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .errors import CLIError, ReproError
from .experiments import (REGISTRY, format_summary, format_table, run,
                          run_all, run_table1, to_csv, to_json)
from .faults import parse_fault_spec
from .observability import collect

__all__ = ["main", "console_main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Shenker, 'A Theoretical Analysis "
                    "of Feedback Flow Control' (SIGCOMM 1990)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment_id",
                       help="artifact id, e.g. T1 or F5")
    run_p.add_argument("--csv", type=Path, default=None,
                       help="also write the rows to this CSV file")
    run_p.add_argument("--json-dir", type=Path, default=None,
                       help="write a JSON run-record artifact "
                            "(provenance + engine observables) here")
    run_p.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject a seeded fault plan, e.g. "
                            "'loss=0.3,delay=2,seed=7' (experiments "
                            "that accept a fault plan only)")
    run_p.add_argument("--resume", type=Path, default=None,
                       metavar="DIR",
                       help="checkpoint the experiment's sweep in DIR "
                            "and resume from it if interrupted "
                            "(experiments that sweep only)")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--csv-dir", type=Path, default=None,
                       help="write one CSV per experiment here")
    all_p.add_argument("--json-dir", type=Path, default=None,
                       help="write one JSON run-record artifact per "
                            "experiment here")

    t1_p = sub.add_parser("table1", help="regenerate Table 1")
    t1_p.add_argument("--rates", default="0.1,0.2,0.3,0.4",
                      help="comma-separated sending rates")
    t1_p.add_argument("--mu", type=float, default=1.5,
                      help="gateway service rate")

    backend_help = ("array/kernel backend (see repro.backends): "
                    "numpy, compiled, numba, cext, cupy, jax, or stub; "
                    "default: $REPRO_BACKEND or numpy")

    selftest_p = sub.add_parser(
        "selftest", help="fast batch-engine smoke check (< 30 s)")
    selftest_p.add_argument("--quick", action="store_true",
                            help="smaller ensembles (CI-friendly)")
    selftest_p.add_argument("--backend", default=None, metavar="NAME",
                            help=backend_help)
    selftest_p.add_argument("--force-fail", action="store_true",
                            help=argparse.SUPPRESS)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="fuzz random scenarios against the differential and "
             "theorem oracles")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="stream seed; the same (seed, count) "
                             "always fuzzes the same scenarios")
    fuzz_p.add_argument("--count", type=int, default=25,
                        help="number of scenarios to generate")
    fuzz_p.add_argument("--shrink", action="store_true",
                        help="minimise every failing scenario to a "
                             "small reproducer before reporting")
    fuzz_p.add_argument("--json-dir", type=Path, default=None,
                        help="write one artifact per scenario here, "
                             "plus a *.repro.json spec per failure")
    fuzz_p.add_argument("--oracle", action="append", default=None,
                        metavar="NAME", dest="oracles",
                        help="restrict to one oracle (repeatable); "
                             "default: the full catalogue")
    fuzz_p.add_argument("--max-shrink-iters", type=int, default=None,
                        help="cap on shrink-search oracle evaluations "
                             "(clamped to a safe range)")
    fuzz_p.add_argument("--backend", default=None, metavar="NAME",
                        help=backend_help)

    scale_p = sub.add_parser(
        "scale",
        help="run a large blocked ensemble and report memory/throughput")
    scale_p.add_argument("--n", type=int, default=100_000,
                         help="connections through the gateway "
                              "(default 100000)")
    scale_p.add_argument("--members", type=int, default=64,
                         help="ensemble members (default 64)")
    scale_p.add_argument("--block-size", type=int, default=8,
                         help="members stepped per block (default 8)")
    scale_p.add_argument("--history", default="none",
                         help="retention policy: full, tail, or none "
                              "(default none)")
    scale_p.add_argument("--steps", type=int, default=50,
                         help="step budget per member (default 50)")
    scale_p.add_argument("--discipline", default="fair-share",
                         help="fair-share or fifo (default fair-share)")
    scale_p.add_argument("--backend", default=None, metavar="NAME",
                         help=backend_help)

    chaos_p = sub.add_parser(
        "chaos",
        help="structural faults, the adversary floor monitor, and the "
             "kill-anywhere recovery harness")
    chaos_p.add_argument("--quick", action="store_true",
                         help="fewer kill rounds (CI-friendly)")
    chaos_p.add_argument("--rounds", type=int, default=None,
                         help="kill-anywhere rounds (default 6, "
                              "--quick 2)")
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="seed for the crashpoint fuzzing")
    chaos_p.add_argument("--workdir", type=Path, default=None,
                         help="directory for the victim sweeps "
                              "(default: a temporary directory)")
    return parser


def _cmd_list() -> int:
    for eid in sorted(REGISTRY):
        exp = REGISTRY[eid]
        print(f"{eid:>4}  {exp.paper_artifact}")
    return 0


def _cmd_run(experiment_id: str, csv: Optional[Path],
             json_dir: Optional[Path],
             faults_spec: Optional[str] = None,
             resume: Optional[Path] = None) -> int:
    kwargs = {}
    described = "defaults"
    if faults_spec is not None:
        kwargs["faults"] = parse_fault_spec(faults_spec)
        described = f"faults={faults_spec}"
    if resume is not None:
        kwargs["checkpoint_dir"] = resume

    def run_it():
        try:
            return run(experiment_id, **kwargs)
        except TypeError as exc:
            if "unexpected keyword argument" in str(exc) and kwargs:
                raise CLIError(
                    f"experiment {experiment_id} does not accept "
                    f"{sorted(kwargs)} — --faults/--resume only work "
                    f"with harnesses that take a fault plan or a "
                    f"checkpointed sweep (e.g. X6)") from exc
            raise

    if json_dir is not None:
        with collect() as session:
            result = run_it()
        path = to_json(result, json_dir, session=session,
                       config={"experiment_id": experiment_id,
                               "parameters": described})
        print(format_table(result))
        print(f"\nrun record written to {path}")
    else:
        result = run_it()
        print(format_table(result))
    if csv is not None:
        to_csv(result, csv)
        print(f"\nrows written to {csv}")
    return 0 if result.all_checks_pass else 1


def _cmd_all(csv_dir: Optional[Path], json_dir: Optional[Path]) -> int:
    if json_dir is not None:
        results = []
        for eid in sorted(REGISTRY):
            with collect() as session:
                result = run(eid)
            to_json(result, json_dir, session=session,
                    config={"experiment_id": eid,
                            "parameters": "defaults"})
            results.append(result)
        print(format_summary(results))
        print(f"\nrun records written to {json_dir}")
    else:
        results = run_all()
        print(format_summary(results))
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            to_csv(result, csv_dir / f"{result.experiment_id}.csv")
        print(f"\nCSV files written to {csv_dir}")
    return 0 if all(r.all_checks_pass for r in results) else 1


def _cmd_table1(rates: str, mu: float) -> int:
    values = [float(tok) for tok in rates.split(",") if tok.strip()]
    result = run_table1(rates=values, mu=mu)
    print(format_table(result))
    return 0 if result.all_checks_pass else 1


def _cmd_fuzz(seed: int, count: int, shrink: bool,
              json_dir: Optional[Path],
              oracles: Optional[List[str]],
              max_shrink_iters: Optional[int]) -> int:
    from .scenarios import fuzz as run_fuzz
    from .scenarios import oracle_names
    if oracles:
        unknown = sorted(set(oracles) - set(oracle_names()))
        if unknown:
            raise CLIError(
                f"unknown oracle(s) {unknown} — known: "
                f"{oracle_names()}")
    report = run_fuzz(seed, count, shrink_failures=shrink,
                      json_dir=json_dir, oracles=oracles,
                      max_shrink_iters=max_shrink_iters, progress=print)
    print()
    print("\n".join(report.summary_lines()))
    if json_dir is not None:
        print(f"\n{len(report.artifacts)} artifact(s) written to "
              f"{json_dir}")
    for outcome in report.failures:
        print(f"\nreproduce {outcome.spec.name} with:")
        print(outcome.repro_spec.to_json())
    return 0 if report.passed else 1


def _cmd_scale(n: int, members: int, block_size: int, history: str,
               steps: int, discipline: str) -> int:
    """Run one blocked ensemble at scale and print what it cost.

    Flag values are validated here with :class:`~repro.errors.CLIError`
    (the CLI contract); ``block_size`` is deliberately passed through
    so the engine's own :class:`~repro.errors.SweepError` validation
    (reject ``<= 0``, warn when it exceeds M) stays the single source
    of truth for that contract.
    """
    import time as _time

    import numpy as np

    from .core.dynamics import (HISTORY_POLICIES, FlowControlSystem,
                                ensemble_buffer_bytes)
    from .core.fairshare import FairShare
    from .core.fifo import Fifo
    from .core.ratecontrol import TargetRule
    from .core.signals import FeedbackStyle, LinearSaturating
    from .core.topology import single_gateway

    if n < 1:
        raise CLIError(f"--n must be >= 1, got {n}")
    if members < 1:
        raise CLIError(f"--members must be >= 1, got {members}")
    if steps < 1:
        raise CLIError(f"--steps must be >= 1, got {steps}")
    if history not in HISTORY_POLICIES:
        raise CLIError(f"--history must be one of "
                       f"{', '.join(HISTORY_POLICIES)}, got {history!r}")
    disciplines = {"fair-share": FairShare, "fifo": Fifo}
    if discipline not in disciplines:
        raise CLIError(f"--discipline must be one of "
                       f"{', '.join(sorted(disciplines))}, "
                       f"got {discipline!r}")

    system = FlowControlSystem(
        single_gateway(n, mu=float(n)), disciplines[discipline](),
        LinearSaturating(), TargetRule(eta=0.05, beta=0.4),
        style=FeedbackStyle.INDIVIDUAL)
    rng = np.random.default_rng(7)
    initials = rng.uniform(0.2, 0.8, size=(members, n))
    projected = ensemble_buffer_bytes(members, n, max_steps=steps,
                                      history=history)
    one_shot = ensemble_buffer_bytes(members, n, max_steps=steps,
                                     history="full")
    print(f"N={n} connections, M={members} members, "
          f"block_size={block_size}, history={history!r}, "
          f"{steps}-step budget ({discipline})")
    print(f"projected buffers: {projected / 2**20:.1f} MB "
          f"({history!r}) vs {one_shot / 2**20:.1f} MB (full history)")
    t0 = _time.perf_counter()
    result = system.run_ensemble(initials, max_steps=steps, tol=1e-10,
                                 history=history, block_size=block_size)
    elapsed = _time.perf_counter() - t0
    counts = {}
    for outcome in result.outcomes:
        counts[outcome.value] = counts.get(outcome.value, 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    total_steps = int(np.sum(result.steps))
    print(f"outcomes: {summary}")
    print(f"{total_steps} member-steps in {elapsed:.2f}s "
          f"({total_steps / elapsed:.0f} member-steps/s)")
    return 0


def _cmd_chaos(quick: bool, rounds: Optional[int], seed: int,
               workdir: Optional[Path]) -> int:
    """The chaos layer end to end; see the module docstring."""
    import tempfile

    import numpy as np

    from .chaos import (BlasterRule, CapacityDegradation,
                        GatewayBlackhole, StructuralFaultPlan,
                        check_robustness_floor)
    from .chaos.harness import kill_anywhere
    from .core.dynamics import FlowControlSystem
    from .core.fairshare import FairShare
    from .core.fifo import Fifo
    from .core.ratecontrol import ProportionalTargetRule
    from .core.signals import FeedbackStyle, LinearSaturating
    from .core.topology import single_gateway

    if rounds is None:
        rounds = 2 if quick else 6
    if rounds < 1:
        raise CLIError(f"--rounds must be >= 1, got {rounds}")
    if seed < 0:
        raise CLIError(f"--seed must be >= 0, got {seed}")
    ok = True

    # 1. Structural faults: a degradation plus a blackhole window on a
    # shared gateway, with the recorded transition log.
    n = 4
    honest = ProportionalTargetRule(eta=0.5, beta=0.3)
    plan = StructuralFaultPlan(injectors=(
        CapacityDegradation("g0", factor=0.5, start=30, duration=30),
        GatewayBlackhole("g0", start=70, duration=20),
    ), seed=seed)
    system = FlowControlSystem(
        single_gateway(n, mu=1.0), FairShare(), LinearSaturating(),
        honest, style=FeedbackStyle.INDIVIDUAL)
    traj = system.run(np.full(n, 0.1), max_steps=800, tol=1e-10,
                      structural=plan)
    print(f"structural: {plan.describe()}")
    for event in traj.structural_events or []:
        print(f"  step {event.step:>4}  {event.gateway}  "
              f"{event.kind} (factor {event.detail:g})")
    print(f"  outcome after damage and restore: {traj.outcome.value}")

    # 2. The Theorem 5 floor monitor: honest connections behind Fair
    # Share keep their floors against a blaster; FIFO lets them starve.
    print("\nrobustness floor vs one blaster adversary "
          f"({n - 1} honest + 1 blaster):")
    rules = [honest] * (n - 1) + [BlasterRule(increment=0.2, cap=5.0)]
    for disc_name, disc, expect_hold in (
            ("fair-share", FairShare(), True), ("fifo", Fifo(), False)):
        sys_d = FlowControlSystem(
            single_gateway(n, mu=1.0), disc, LinearSaturating(), rules,
            style=FeedbackStyle.INDIVIDUAL)
        final = sys_d.run(np.full(n, 0.1), max_steps=4000,
                          tol=1e-11).final
        check = check_robustness_floor(
            sys_d.network, LinearSaturating(), rules, final)
        verdict = ("as Theorem 5 predicts" if check.holds == expect_hold
                   else "UNEXPECTED")
        ok &= check.holds == expect_hold
        print(f"  {disc_name:>10}: {check.describe()} — {verdict}")

    # 3. Kill-anywhere: SIGKILL a real sweep worker at fuzzed
    # crashpoints, resume, demand bit-identical results.
    print(f"\nkill-anywhere: {rounds} fuzzed SIGKILL rounds "
          f"(seed {seed}):")
    if workdir is not None:
        workdir.mkdir(parents=True, exist_ok=True)
        reports = kill_anywhere(workdir, rounds=rounds, seed=seed)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            reports = kill_anywhere(tmp, rounds=rounds, seed=seed)
    for report in reports:
        print(f"  {report.describe()}")
    kills = sum(r.killed for r in reports)
    ok &= all(r.ok for r in reports)
    print(f"  {kills}/{len(reports)} rounds killed the worker; "
          f"recovery {'bit-identical in every round' if ok else 'FAILED'}")

    print(f"\nchaos: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None) is not None:
        # Resolve loudly before the command runs: an unknown or
        # unavailable backend is a CLIError listing the alternatives,
        # never a silent fall-through to numpy.
        from . import backends
        backends.use(backends.resolve(args.backend))
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment_id, args.csv, args.json_dir,
                        args.faults, args.resume)
    if args.command == "all":
        return _cmd_all(args.csv_dir, args.json_dir)
    if args.command == "table1":
        return _cmd_table1(args.rates, args.mu)
    if args.command == "selftest":
        from .selftest import main as selftest_main
        return selftest_main(quick=args.quick,
                             force_fail=args.force_fail)
    if args.command == "fuzz":
        return _cmd_fuzz(args.seed, args.count, args.shrink,
                         args.json_dir, args.oracles,
                         args.max_shrink_iters)
    if args.command == "scale":
        return _cmd_scale(args.n, args.members, args.block_size,
                          args.history, args.steps, args.discipline)
    if args.command == "chaos":
        return _cmd_chaos(args.quick, args.rounds, args.seed,
                          args.workdir)
    raise CLIError(f"unhandled command {args.command!r}")


def console_main(argv: Optional[List[str]] = None) -> int:
    """Process entry point: :func:`main` with clean error reporting.

    Library callers and tests use :func:`main` (and get the raised
    :class:`~repro.errors.ReproError` to inspect); the ``python -m
    repro`` process boundary turns any ReproError into a single line on
    stderr and exit code 2 — no traceback for user mistakes.
    """
    try:
        return main(argv)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(console_main())
