"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """The network description is malformed or internally inconsistent.

    Examples: a connection routed through an unknown gateway, a gateway
    with a non-positive service rate, or a negative line latency.
    """


class RateVectorError(ReproError):
    """A sending-rate vector has the wrong shape or contains bad values."""


class InfeasibleLoadError(ReproError):
    """An operation requires a stable queue but the offered load is >= 1.

    Raised only by operations that cannot meaningfully return ``inf``
    (for example, sampling a steady-state queue in the simulator
    validation helpers).  The analytic queue laws themselves never raise
    this; they return ``math.inf`` instead.
    """


class ConvergenceError(ReproError):
    """An iterative procedure failed to converge within its budget."""


class NotTimeScaleInvariantError(ReproError):
    """A rate-adjustment rule was required to be TSI but is not."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""


class FaultError(ReproError):
    """A fault-injection plan or injector is malformed.

    Examples: a loss probability outside [0, 1], a negative delay
    bound, an outage window referencing an unknown gateway, or an
    unparsable ``--faults`` spec string.
    """


class SweepError(ReproError):
    """The resilient sweep executor could not complete the grid.

    Raised for orchestration-level failures: an incompatible checkpoint
    directory, or bad resilience parameters (negative retries/timeout).
    Worker-side failures of the swept function raise the more specific
    :class:`WorkerFunctionError`.
    """


class WorkerFunctionError(SweepError):
    """The swept function itself raised inside a worker.

    Deterministic function bugs are not retried — the error propagates
    immediately, annotated with the failing grid index.  The original
    exception is chained as ``__cause__`` when it survived transport
    from the worker.

    Attributes:
        grid_index: position in the grid of the item whose evaluation
            failed.
    """

    def __init__(self, message: str, grid_index: int = -1):
        super().__init__(message)
        self.grid_index = int(grid_index)


class ArtifactError(ReproError, ValueError):
    """An observability artifact or record failed schema validation.

    Also a :class:`ValueError` for backwards compatibility — the
    artifact writer raised bare ``ValueError`` before this class
    existed.
    """


class ScenarioError(ReproError):
    """A fuzzing scenario specification is malformed.

    Examples: mismatched rule/connection counts, an unknown rule or
    signal kind, a weighted discipline without weights, or an
    unparsable serialised :class:`~repro.scenarios.ScenarioSpec`.
    """


class ChaosError(ReproError):
    """A structural chaos plan, adversary, or crashpoint is malformed.

    Examples: a capacity-degradation factor outside (0, 1], a blackhole
    window referencing an unknown gateway, an adversary assignment that
    does not match the connection count, or an unparsable
    ``REPRO_CRASHPOINT`` specification.
    """


class OracleError(ReproError):
    """A differential oracle could not be evaluated.

    Raised for harness-level misuse (an unknown oracle name, an oracle
    invoked on a scenario it does not apply to) — *not* for oracle
    violations, which are data, not exceptions.
    """


class CLIError(ReproError):
    """The command-line front end was invoked inconsistently.

    ``python -m repro`` converts this (like every :class:`ReproError`)
    into a one-line message on stderr and a nonzero exit instead of a
    traceback.
    """
