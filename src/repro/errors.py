"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """The network description is malformed or internally inconsistent.

    Examples: a connection routed through an unknown gateway, a gateway
    with a non-positive service rate, or a negative line latency.
    """


class RateVectorError(ReproError):
    """A sending-rate vector has the wrong shape or contains bad values."""


class InfeasibleLoadError(ReproError):
    """An operation requires a stable queue but the offered load is >= 1.

    Raised only by operations that cannot meaningfully return ``inf``
    (for example, sampling a steady-state queue in the simulator
    validation helpers).  The analytic queue laws themselves never raise
    this; they return ``math.inf`` instead.
    """


class ConvergenceError(ReproError):
    """An iterative procedure failed to converge within its budget."""


class NotTimeScaleInvariantError(ReproError):
    """A rate-adjustment rule was required to be TSI but is not."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""
