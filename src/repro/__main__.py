"""``python -m repro`` — see :mod:`repro.cli`."""

import sys

from .cli import console_main

if __name__ == "__main__":
    sys.exit(console_main())
