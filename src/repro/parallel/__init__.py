"""Deterministic, resilient parallel sweep runner for grid workloads.

Most experiments are embarrassingly parallel sweeps: evaluate one
deterministic function over a parameter grid (gains, connection counts,
design configurations) and collect the results *in grid order*.
:func:`sweep` runs such a grid over a :mod:`concurrent.futures` pool
with deterministic chunking — the grid is split into contiguous chunks,
every chunk is evaluated in order within one worker, and the results
are reassembled in the original grid order, so the output is identical
to ``[fn(p) for p in grid]`` regardless of worker count, executor kind,
scheduling jitter, retries, or resume.

Resilience (all opt-in, all deterministic in the result):

* **Error classification** — an exception raised by ``fn`` itself is a
  *function* error: it is never retried (deterministic functions fail
  deterministically) and propagates immediately as
  :class:`~repro.errors.WorkerFunctionError`, annotated with the
  failing grid index and chaining the original exception.  Everything
  else — broken pools, timeouts, pickling failures — is an
  *infrastructure* error and never loses completed work.
* **Retries with backoff** — chunks that fail for infrastructure
  reasons are retried up to ``retries`` times on a fresh pool, sleeping
  ``backoff * 2**round`` between rounds.
* **Per-chunk timeout** — ``timeout`` bounds the wait for each chunk's
  result; a timed-out chunk counts as an infrastructure failure.
* **Salvage** — when retries are exhausted (or the failure is known to
  be deterministic, e.g. unpicklable work), only the *still-failing*
  chunks are recomputed serially on the calling thread; completed
  chunks are kept.
* **Checkpoint/resume** — ``checkpoint_dir`` persists each completed
  chunk to disk (atomically); a re-invocation with the same grid shape
  and directory loads completed chunks instead of recomputing them, so
  an interrupted sweep resumes where it died and finishes with results
  identical to an uninterrupted run.

Guidance:

* ``executor="process"`` (the default) gives true CPU parallelism but
  requires ``fn``, the grid items, and the results to be picklable —
  use module-level functions, not lambdas or closures.
* ``executor="thread"`` has no pickling constraints and works well when
  ``fn`` spends its time in numpy (which releases the GIL).
* ``executor="serial"`` (or ``workers<=1``) runs the plain list
  comprehension; it is also the automatic fallback when a pool cannot
  be created (restricted sandboxes, unpicklable work).

The batched trajectory engine (:meth:`FlowControlSystem.run_ensemble
<repro.core.dynamics.FlowControlSystem.run_ensemble>`) is preferred
when the grid points share one system — vectorisation beats process
pools there.  :func:`sweep` is for grids where each point builds a
*different* system or analysis.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import math
import os
import pickle
import time
import warnings
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..chaos.crashpoints import crashpoint
from ..errors import RateVectorError, SweepError, WorkerFunctionError
from ..observability import SweepRecord, emit_sweep_record, is_collecting

__all__ = ["sweep", "chunk_indices", "memoised", "CHECKPOINT_SCHEMA"]

#: Schema identifier embedded in every checkpoint manifest.
CHECKPOINT_SCHEMA = "repro.sweep-checkpoint/v1"

#: Infrastructure failures worth retrying: a fresh pool (or more time)
#: can plausibly fix these.  Anything else infra-side is treated as
#: deterministic (unpicklable work, sandbox restrictions) and goes
#: straight to the serial salvage path without burning retry rounds.
_RETRYABLE = (TimeoutError, concurrent.futures.BrokenExecutor, OSError,
              MemoryError)


def _retry_backoff(backoff: float, round_index: int, seed) -> float:
    """Seconds to sleep before retry round ``round_index`` (1-based).

    Exponential base ``backoff * 2**(round_index - 1)`` scaled by a
    seeded jitter factor in ``[0.5, 1.5)`` — jitter decorrelates
    workers retrying against the same contended resource, and seeding
    it (``default_rng(seed)``, where the caller folds the sweep seed
    and round into ``seed``) keeps the whole retry schedule
    reproducible from the sweep seed alone.
    """
    base = backoff * (2 ** (round_index - 1))
    if base <= 0:
        return 0.0
    jitter = np.random.default_rng(seed).random()
    return base * (0.5 + jitter)


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous
    ranges whose sizes differ by at most one.

    Deterministic: depends only on the two counts.  Used by
    :func:`sweep` so that a given grid always maps to the same chunks
    (which is also what makes checkpoints resumable).
    """
    if n_items < 0:
        raise SweepError(f"item count must be >= 0, got {n_items!r}")
    if n_chunks < 1:
        raise SweepError(f"chunk count must be >= 1, got {n_chunks!r}")
    n_chunks = min(n_chunks, max(1, n_items))
    base, extra = divmod(n_items, n_chunks)
    out = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        if size == 0:
            break
        out.append(range(start, start + size))
        start += size
    return out


class memoised:
    """Deterministic memoising wrapper for sweep functions.

    ``memoised(fn)`` caches ``fn``'s results keyed by a stable digest
    of the pickled argument, so grids with repeated points (warm-start
    scans, queue-law solves re-evaluated per figure) compute each
    distinct point once.  Only sound for *deterministic* ``fn`` — which
    :func:`sweep` requires anyway.

    The cache lives on the wrapper instance (per process); with the
    process executor each worker keeps its own cache, so memoisation
    pays off within a chunk and for serial/thread sweeps.  ``hits`` /
    ``misses`` expose the effectiveness.  Unpicklable arguments fall
    through to ``fn`` uncached rather than failing.
    """

    def __init__(self, fn: Callable):
        self.fn = fn
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def _key(self, item) -> Optional[str]:
        try:
            return hashlib.sha256(
                pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
            ).hexdigest()
        except Exception:
            return None

    def __call__(self, item):
        key = self._key(item)
        if key is None:
            return self.fn(item)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = self.fn(item)
        self._cache[key] = result
        return result


def _run_chunk(fn: Callable, items: list) -> list:
    """Evaluate one contiguous chunk, in order (module-level so process
    pools can pickle it)."""
    return [fn(item) for item in items]


def _run_chunk_timed(fn: Callable, items: list) -> tuple:
    """Like :func:`_run_chunk`, but also reports the in-worker wall
    time so :class:`~repro.observability.SweepRecord` can derive
    per-chunk cost and worker utilisation."""
    start = time.perf_counter()
    out = [fn(item) for item in items]
    return out, time.perf_counter() - start


def _run_chunk_guarded(fn: Callable, items: list, first_index: int) -> tuple:
    """Worker-side chunk evaluation with error classification.

    Returns ``("ok", results, elapsed)``, or ``("error", grid_index,
    exception, repr)`` when ``fn`` itself raised — the caller turns
    that into an immediate :class:`WorkerFunctionError` instead of a
    retry.  (If the exception object cannot travel back through the
    pool, the chunk degrades to an infrastructure failure and the
    serial salvage path re-raises the original error directly.)
    """
    start = time.perf_counter()
    out = []
    for offset, item in enumerate(items):
        try:
            out.append(fn(item))
        except Exception as exc:
            return ("error", first_index + offset, exc, repr(exc))
    return ("ok", out, time.perf_counter() - start)


def _raise_worker_error(grid_index: int, rep: str, original) -> None:
    raise WorkerFunctionError(
        f"sweep function raised at grid index {grid_index}: {rep}",
        grid_index=grid_index) from original


class _Checkpoint:
    """On-disk per-chunk results of one sweep (see ``checkpoint_dir``).

    Layout: ``manifest.json`` pins the grid shape (item count and
    chunk sizes); ``chunk_NNNNN.pkl`` holds each completed chunk's
    results.  Writes are atomic (tmp file + rename), so a sweep killed
    mid-write never leaves a corrupt chunk behind — at worst the chunk
    is recomputed.
    """

    def __init__(self, directory: Union[str, Path], n_items: int,
                 chunks: List[range]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunks = chunks
        manifest = {"schema": CHECKPOINT_SCHEMA, "n_items": n_items,
                    "chunk_sizes": [len(r) for r in chunks]}
        path = self.directory / "manifest.json"
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise SweepError(
                    f"unreadable sweep checkpoint manifest {path}: "
                    f"{exc!r}") from exc
            if existing != manifest:
                raise SweepError(
                    f"checkpoint directory {self.directory} belongs to a "
                    f"different sweep (manifest {existing!r} != "
                    f"{manifest!r}); point --resume/checkpoint_dir at a "
                    f"fresh directory")
        else:
            self._atomic_write(path, json.dumps(manifest, indent=2),
                               binary=False)

    def _chunk_path(self, k: int) -> Path:
        return self.directory / f"chunk_{k:05d}.pkl"

    def _atomic_write(self, path: Path, payload, binary: bool) -> None:
        tmp = path.with_name(path.name + ".tmp")
        mode = "wb" if binary else "w"
        with tmp.open(mode) as handle:
            handle.write(payload)
        crashpoint("sweep-checkpoint-mid-write")
        os.replace(tmp, path)

    def load(self) -> dict:
        """``{chunk index: results}`` for every valid completed chunk."""
        loaded = {}
        for k, r in enumerate(self.chunks):
            path = self._chunk_path(k)
            if not path.exists():
                continue
            try:
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
            except Exception:  # truncated / corrupt — recompute
                continue
            if (isinstance(payload, dict) and payload.get("chunk") == k
                    and isinstance(payload.get("results"), list)
                    and len(payload["results"]) == len(r)):
                loaded[k] = payload["results"]
        return loaded

    def write(self, k: int, results: list) -> None:
        crashpoint("sweep-checkpoint-pre-write")
        self._atomic_write(self._chunk_path(k),
                           pickle.dumps({"chunk": k, "results": results}),
                           binary=True)


def sweep(fn: Callable, grid: Sequence, workers: Optional[int] = None,
          executor: str = "process",
          chunk_size: Optional[int] = None,
          timeout: Optional[float] = None,
          retries: int = 2,
          backoff: float = 0.5,
          checkpoint_dir: Optional[Union[str, Path]] = None,
          seed: int = 0) -> list:
    """Evaluate ``fn`` over ``grid``, in parallel, deterministically.

    Args:
        fn: the per-point function.  With the (default) process
            executor it must be picklable — a module-level function.
        grid: the parameter points; results come back in this order.
        workers: pool size.  ``None`` uses ``os.cpu_count()``; ``0`` or
            ``1`` runs serially.
        executor: ``"process"``, ``"thread"``, or ``"serial"``.
        chunk_size: points per task.  ``None`` splits the grid into
            ``4 * workers`` contiguous chunks (enough slack for uneven
            point costs without drowning in task overhead).
        timeout: per-chunk result wait in seconds; a timed-out chunk
            counts as an infrastructure failure (retried, then salvaged
            serially).  ``None`` waits forever.
        retries: infrastructure-failure retry rounds before the serial
            salvage kicks in (function errors are never retried).
        backoff: base of the exponential sleep between retry rounds
            (``backoff * 2**round`` seconds, jittered — see ``seed``).
        checkpoint_dir: directory for per-chunk checkpoints; pass the
            same directory again to resume an interrupted sweep (grid
            shape must match — the manifest is checked).
        seed: seeds the retry backoff's jitter stream
            (``default_rng([seed, round])``), so the exact sleep
            schedule of a retried sweep is reproducible from the sweep
            seed; it does not affect the results, which are
            deterministic regardless.

    Returns:
        ``[fn(p) for p in grid]`` — exactly, whatever the parallelism,
        the retries, or the resume history.

    Raises:
        WorkerFunctionError: ``fn`` itself raised; the original
            exception is chained and the failing grid index attached.
        SweepError: the checkpoint directory belongs to a different
            sweep, or the resilience parameters are malformed.

    When an :func:`repro.observability.collect` session is active, a
    :class:`~repro.observability.SweepRecord` with per-chunk in-worker
    timing, worker utilisation, retry/salvage/resume counts, and any
    serial-fallback reason is emitted; the result list is unaffected.
    """
    items = list(grid)
    if executor not in ("process", "thread", "serial"):
        raise RateVectorError(
            f"executor must be 'process', 'thread', or 'serial', "
            f"got {executor!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise RateVectorError(f"workers must be >= 0, got {workers!r}")
    if timeout is not None and not timeout > 0:
        raise SweepError(f"timeout must be > 0 seconds, got {timeout!r}")
    if not (isinstance(retries, int) and retries >= 0):
        raise SweepError(f"retries must be an int >= 0, got {retries!r}")
    if not backoff >= 0:
        raise SweepError(f"backoff must be >= 0, got {backoff!r}")
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise SweepError(f"seed must be an int >= 0, got {seed!r}")
    rec = (SweepRecord(n_items=len(items), executor=executor,
                       workers=workers) if is_collecting() else None)
    wall_start = time.perf_counter()

    def run_serial(fallback_reason: Optional[str] = None) -> list:
        if rec is None:
            return _run_chunk(fn, items)
        out, elapsed = _run_chunk_timed(fn, items)
        rec.serial = True
        rec.fallback_reason = fallback_reason
        rec.n_chunks = 1 if items else 0
        rec.chunk_sizes = [len(items)] if items else []
        rec.chunk_seconds = [elapsed] if items else []
        rec.finalise(time.perf_counter() - wall_start, 1)
        emit_sweep_record(rec)
        return out

    serial_only = (executor == "serial" or workers <= 1
                   or len(items) <= 1)
    if serial_only and checkpoint_dir is None:
        # The legacy fast path: one pass, no chunk bookkeeping.
        return run_serial()

    if chunk_size is not None:
        if chunk_size < 1:
            raise RateVectorError(
                f"chunk_size must be >= 1, got {chunk_size!r}")
        n_chunks = math.ceil(len(items) / chunk_size)
    else:
        n_chunks = 4 * max(1, workers)
    chunks = chunk_indices(len(items), n_chunks)

    ckpt = (_Checkpoint(checkpoint_dir, len(items), chunks)
            if checkpoint_dir is not None else None)
    results: List[Optional[list]] = [None] * len(chunks)
    seconds = [0.0] * len(chunks)
    resumed: List[int] = []
    if ckpt is not None:
        for k, out in sorted(ckpt.load().items()):
            results[k] = out
            resumed.append(k)
    pending = [k for k in range(len(chunks)) if results[k] is None]

    salvage_reason: Optional[str] = None
    retry_rounds = 0
    salvaged: List[int] = []
    pool_completed = 0

    if not serial_only and pending:
        pool_cls = (concurrent.futures.ProcessPoolExecutor
                    if executor == "process"
                    else concurrent.futures.ThreadPoolExecutor)
        round_index = 0
        while pending:
            if round_index > 0:
                if round_index > retries:
                    break  # retry budget spent — salvage the rest
                time.sleep(_retry_backoff(backoff, round_index,
                                          [seed, round_index]))
                retry_rounds += 1
            round_index += 1
            try:
                pool = pool_cls(max_workers=min(workers, len(pending)))
            except Exception as exc:  # sandbox forbids pools entirely
                salvage_reason = repr(exc)
                break
            failed: List[int] = []
            round_reason: Optional[str] = None
            retryable = True
            dirty = False  # a timed-out worker may still be running
            futures = {}
            try:
                for k in pending:
                    futures[k] = _submit(pool, fn,
                                         [items[i] for i in chunks[k]],
                                         chunks[k].start)
            except Exception as exc:
                pool.shutdown(wait=False, cancel_futures=True)
                salvage_reason = repr(exc)
                break
            for k in pending:
                try:
                    payload = futures[k].result(timeout=timeout)
                except _RETRYABLE as exc:
                    failed.append(k)
                    round_reason = repr(exc)
                    if isinstance(exc, TimeoutError):
                        futures[k].cancel()
                        dirty = True
                    continue
                except Exception as exc:
                    # Deterministic infrastructure failure (e.g. the
                    # work does not pickle): retrying cannot help.
                    failed.append(k)
                    round_reason = repr(exc)
                    retryable = False
                    continue
                if payload[0] == "error":
                    pool.shutdown(wait=False, cancel_futures=True)
                    _, grid_index, original, rep = payload
                    _raise_worker_error(grid_index, rep, original)
                _, out, elapsed = payload
                results[k] = out
                seconds[k] = elapsed
                pool_completed += 1
                if ckpt is not None:
                    ckpt.write(k, out)
            pool.shutdown(wait=not dirty, cancel_futures=True)
            pending = failed
            if pending and not retryable:
                salvage_reason = round_reason
                break
            if pending:
                salvage_reason = round_reason

    if pending:
        # Serial completion: the deliberate serial+checkpoint path, or
        # the salvage of chunks that kept failing for infra reasons.
        if salvage_reason is not None:
            warnings.warn(
                f"parallel sweep fell back to serial execution for "
                f"{len(pending)} of {len(chunks)} chunk(s): "
                f"{salvage_reason}", RuntimeWarning, stacklevel=2)
            salvaged = list(pending)
        for k in pending:
            payload = _run_chunk_guarded(fn, [items[i] for i in chunks[k]],
                                         chunks[k].start)
            if payload[0] == "error":
                _, grid_index, original, rep = payload
                _raise_worker_error(grid_index, rep, original)
            _, out, elapsed = payload
            results[k] = out
            seconds[k] = elapsed
            if ckpt is not None:
                ckpt.write(k, out)

    out: list = []
    for piece in results:
        out.extend(piece)
    if rec is not None:
        if (pool_completed == 0 and not resumed
                and len(salvaged) == len(chunks)):
            # The whole grid ran on the calling thread: report one
            # logical chunk, exactly like the plain serial path.
            rec.n_chunks = 1
            rec.chunk_sizes = [len(items)]
            rec.chunk_seconds = [sum(seconds)]
        else:
            rec.n_chunks = len(chunks)
            rec.chunk_sizes = [len(r) for r in chunks]
            rec.chunk_seconds = seconds
        rec.serial = pool_completed == 0
        rec.fallback_reason = salvage_reason
        rec.retry_rounds = retry_rounds
        rec.salvaged_chunks = salvaged
        rec.resumed_chunks = resumed
        rec.finalise(time.perf_counter() - wall_start,
                     min(workers, len(chunks)) if pool_completed else 1)
        emit_sweep_record(rec)
    return out


def _submit(pool, fn: Callable, chunk_items: list, first_index: int):
    """Submit one chunk to the pool (separate function so tests can
    inject infrastructure failures deterministically)."""
    return pool.submit(_run_chunk_guarded, fn, chunk_items, first_index)


# Re-exported here so ``repro.parallel`` remains the single import
# surface for parallel execution; the import sits at module bottom
# because orchestrator pulls sweep()/chunk_indices() back from this
# package.
from .orchestrator import ORCHESTRATOR_SCHEMA, Orchestrator, SweepJob  # noqa: E402

__all__ += ["Orchestrator", "SweepJob", "ORCHESTRATOR_SCHEMA"]
