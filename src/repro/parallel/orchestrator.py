"""Long-running sharded sweep orchestrator.

:func:`repro.parallel.sweep` evaluates one grid and returns.  The
:class:`Orchestrator` manages a *queue* of such sweeps as durable jobs
rooted in a directory:

* each submitted :class:`SweepJob` gets its own job directory with a
  small ``state.json`` lifecycle record
  (``queued -> running -> done | failed``);
* a job's grid is split into ``shards`` contiguous slices
  (:func:`repro.parallel.chunk_indices`), and each shard runs as its
  own checkpointed :func:`~repro.parallel.sweep` across the worker
  pool;
* every finished shard's results are written to disk immediately
  (atomic ``pickle`` per shard), so aggregation is incremental — a
  million-point grid never has to be held as one in-flight result set;
* a killed or crashed orchestrator resumes mid-job: re-submit the same
  job and completed shards are loaded from disk while the interrupted
  shard resumes from its own sweep checkpoint, chunk by chunk.

Functions are not persisted (pickling arbitrary callables is not
reliable across processes and code versions): resuming means
re-submitting the same ``(name, fn, grid)``.  ``state.json`` pins the
grid size and shard layout and refuses a mismatched resubmission, the
same contract the sweep checkpoint manifest uses for chunks.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import SweepError
from . import chunk_indices, sweep

__all__ = ["SweepJob", "Orchestrator", "ORCHESTRATOR_SCHEMA"]

#: Schema identifier embedded in every job ``state.json``.
ORCHESTRATOR_SCHEMA = "repro.orchestrator-job/v1"

_STATUSES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class SweepJob:
    """One sweep in the orchestrator queue.

    ``fn``/``grid`` are as in :func:`repro.parallel.sweep`; ``shards``
    is the number of contiguous grid slices the job is split into
    (each shard is one checkpointed sweep call, and the unit of
    incremental aggregation and resume).  The remaining fields are
    passed through to every shard's ``sweep``.
    """

    name: str
    fn: Callable
    grid: Sequence = field(repr=False)
    shards: int = 4
    workers: Optional[int] = None
    executor: str = "process"
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.5

    def __post_init__(self):
        if not (isinstance(self.name, str) and self.name):
            raise SweepError(
                f"job name must be a nonempty string, got {self.name!r}")
        if os.sep in self.name or "/" in self.name or self.name in (".",
                                                                    ".."):
            raise SweepError(
                f"job name must be a plain directory name, "
                f"got {self.name!r}")
        if not isinstance(self.shards, int) or isinstance(self.shards,
                                                          bool) \
                or self.shards < 1:
            raise SweepError(
                f"shards must be a positive integer, got {self.shards!r}")
        if not callable(self.fn):
            raise SweepError(f"fn must be callable, got {self.fn!r}")

    @property
    def shard_ranges(self) -> List[range]:
        return chunk_indices(len(self.grid), self.shards)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


class Orchestrator:
    """A durable queue of sharded sweep jobs rooted in one directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._jobs: Dict[str, SweepJob] = {}

    # ------------------------------------------------------------------
    # disk layout helpers
    # ------------------------------------------------------------------
    def job_dir(self, name: str) -> Path:
        return self.jobs_dir / name

    def _state_path(self, name: str) -> Path:
        return self.job_dir(name) / "state.json"

    def _shard_result_path(self, name: str, k: int) -> Path:
        return self.job_dir(name) / "results" / f"shard_{k:05d}.pkl"

    def _shard_checkpoint_dir(self, name: str, k: int) -> Path:
        return self.job_dir(name) / "shards" / f"shard_{k:05d}"

    def _write_state(self, name: str, state: dict) -> None:
        state = dict(state)
        state["schema"] = ORCHESTRATOR_SCHEMA
        _atomic_write_bytes(self._state_path(name),
                            json.dumps(state, indent=1).encode())

    def _read_state(self, name: str) -> Optional[dict]:
        path = self._state_path(name)
        if not path.exists():
            return None
        try:
            state = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(
                f"unreadable job state {path}: {exc!r}") from exc
        if state.get("schema") != ORCHESTRATOR_SCHEMA:
            raise SweepError(
                f"job state {path} has schema {state.get('schema')!r}, "
                f"expected {ORCHESTRATOR_SCHEMA!r}")
        return state

    # ------------------------------------------------------------------
    # queue operations
    # ------------------------------------------------------------------
    def submit(self, job: SweepJob) -> dict:
        """Queue a job (or re-attach to its on-disk state to resume).

        Returns the job's state dict.  Re-submitting a job whose name
        already has on-disk state verifies the grid size and shard
        layout against the pinned values — a mismatch raises
        :class:`~repro.errors.SweepError` rather than silently mixing
        two different grids — and an interrupted ``running`` job drops
        back to ``queued`` so :meth:`run_pending` picks it up again.
        """
        if not isinstance(job, SweepJob):
            raise SweepError(f"expected a SweepJob, got {job!r}")
        shard_sizes = [len(rng) for rng in job.shard_ranges]
        state = self._read_state(job.name)
        if state is None:
            self.job_dir(job.name).mkdir(parents=True, exist_ok=True)
            state = {"name": job.name, "n_items": len(job.grid),
                     "shards": job.shards, "shard_sizes": shard_sizes,
                     "status": "queued", "completed_shards": [],
                     "error": None}
        else:
            if state["n_items"] != len(job.grid) \
                    or state["shard_sizes"] != shard_sizes:
                raise SweepError(
                    f"job {job.name!r}: on-disk state pins "
                    f"{state['n_items']} items in shards "
                    f"{state['shard_sizes']}, resubmitted with "
                    f"{len(job.grid)} items in shards {shard_sizes}")
            if state["status"] in ("running", "failed"):
                # Interrupted or failed: back to the queue for resume.
                state["status"] = "queued"
                state["error"] = None
        self._write_state(job.name, state)
        self._jobs[job.name] = job
        return state

    def status(self, name: str) -> dict:
        """The on-disk state of a job (raises for unknown names)."""
        state = self._read_state(name)
        if state is None:
            raise SweepError(f"no job named {name!r} under {self.root}")
        return state

    def queued(self) -> List[str]:
        """Names of registered jobs still waiting to run, in order."""
        return [name for name, job in self._jobs.items()
                if self.status(name)["status"] == "queued"]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_job(self, name: str) -> List:
        """Run (or resume) one job to completion and return its results.

        Completed shards are skipped (their results come from disk);
        the first incomplete shard resumes from its sweep checkpoint.
        A shard failure marks the job ``failed`` (with the error
        recorded in ``state.json``) and re-raises.
        """
        job = self._jobs.get(name)
        if job is None:
            raise SweepError(
                f"job {name!r} is not registered in this orchestrator; "
                f"submit() it (functions are not persisted on disk)")
        state = self.status(name)
        if state["status"] == "done":
            return self.results(name)
        state["status"] = "running"
        self._write_state(name, state)
        completed = set(state["completed_shards"])
        for k, rng in enumerate(job.shard_ranges):
            if k in completed:
                continue
            shard_grid = [job.grid[i] for i in rng]
            try:
                shard_results = sweep(
                    job.fn, shard_grid, workers=job.workers,
                    executor=job.executor, chunk_size=job.chunk_size,
                    timeout=job.timeout, retries=job.retries,
                    backoff=job.backoff,
                    checkpoint_dir=self._shard_checkpoint_dir(name, k))
            except Exception as exc:
                state["status"] = "failed"
                state["error"] = repr(exc)
                self._write_state(name, state)
                raise
            # Incremental aggregation: persist the shard before moving
            # on, so a later crash never recomputes it.
            path = self._shard_result_path(name, k)
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(path, pickle.dumps(shard_results))
            state["completed_shards"] = sorted(completed | {k})
            completed.add(k)
            self._write_state(name, state)
        state["status"] = "done"
        state["error"] = None
        self._write_state(name, state)
        return self.results(name)

    def run_pending(self) -> Dict[str, str]:
        """Drain the queue in submission order; return final statuses.

        Per-job failures are recorded in that job's state and do not
        stop the queue — inspect the returned mapping (or
        :meth:`status`) and re-submit to retry.
        """
        outcome = {}
        for name in list(self._jobs):
            if self.status(name)["status"] not in ("queued", "running"):
                outcome[name] = self.status(name)["status"]
                continue
            try:
                self.run_job(name)
            except Exception:
                pass
            outcome[name] = self.status(name)["status"]
        return outcome

    def results(self, name: str) -> List:
        """The job's results in grid order, loaded shard by shard."""
        state = self.status(name)
        if state["status"] != "done":
            raise SweepError(
                f"job {name!r} is {state['status']!r}, not done; "
                f"no complete results to load")
        out: List = []
        for k in range(len(state["shard_sizes"])):
            path = self._shard_result_path(name, k)
            try:
                shard = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError) as exc:
                raise SweepError(
                    f"job {name!r}: shard result {path} is "
                    f"unreadable: {exc!r}") from exc
            if len(shard) != state["shard_sizes"][k]:
                raise SweepError(
                    f"job {name!r}: shard {k} holds {len(shard)} "
                    f"results, expected {state['shard_sizes'][k]}")
            out.extend(shard)
        return out
