"""Long-running sharded sweep orchestrator.

:func:`repro.parallel.sweep` evaluates one grid and returns.  The
:class:`Orchestrator` manages a *queue* of such sweeps as durable jobs
rooted in a directory:

* each submitted :class:`SweepJob` gets its own job directory with a
  small ``state.json`` lifecycle record
  (``queued -> running -> done | failed``);
* a job's grid is split into ``shards`` contiguous slices
  (:func:`repro.parallel.chunk_indices`), and each shard runs as its
  own checkpointed :func:`~repro.parallel.sweep` across the worker
  pool;
* every finished shard's results are written to disk immediately
  (atomic ``pickle`` per shard), so aggregation is incremental — a
  million-point grid never has to be held as one in-flight result set;
* a killed or crashed orchestrator resumes mid-job: re-submit the same
  job and completed shards are loaded from disk while the interrupted
  shard resumes from its own sweep checkpoint, chunk by chunk.

Chaos hardening (all crash-consistent, all deterministic in the
results):

* **Leases** — each in-flight shard is protected by a lease file
  naming its owner (pid + nonce) and an expiry.  A second worker
  skips live-leased shards instead of double-computing them, and
  *reclaims* a lease whose owner process is dead or whose TTL has
  lapsed — which is exactly how a SIGKILLed worker's shard gets picked
  up again without waiting out the clock.
* **Poison-shard quarantine** — with ``max_attempts > 1`` a failing
  shard is retried with seeded-jitter exponential backoff
  (``default_rng([seed, shard, attempt])`` — reproducible from the job
  seed), then *quarantined*: recorded in ``state.json`` and skipped so
  the remaining shards still complete before the job fails.  The
  default ``max_attempts=1`` preserves fail-fast semantics: the first
  shard failure marks the job ``failed`` and re-raises.
* **Crashpoints** — the state/shard write paths carry named
  :func:`~repro.chaos.crashpoints.crashpoint` sites (including the
  window between a temp file's write and its atomic rename), which the
  kill-anywhere harness arms to prove resumed jobs are bit-identical
  to uninterrupted ones.

Functions are not persisted (pickling arbitrary callables is not
reliable across processes and code versions): resuming means
re-submitting the same ``(name, fn, grid)``.  ``state.json`` pins the
grid size and shard layout and refuses a mismatched resubmission, the
same contract the sweep checkpoint manifest uses for chunks.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..chaos.crashpoints import crashpoint
from ..errors import SweepError
from . import _retry_backoff, chunk_indices, sweep

__all__ = ["SweepJob", "Orchestrator", "ORCHESTRATOR_SCHEMA"]

#: Schema identifier embedded in every job ``state.json``.
ORCHESTRATOR_SCHEMA = "repro.orchestrator-job/v2"

#: The previous schema; still readable.  v1 states lack the
#: ``quarantined``/``attempts`` maps and are migrated on load.
_ORCHESTRATOR_SCHEMA_V1 = "repro.orchestrator-job/v1"

_STATUSES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class SweepJob:
    """One sweep in the orchestrator queue.

    ``fn``/``grid`` are as in :func:`repro.parallel.sweep`; ``shards``
    is the number of contiguous grid slices the job is split into
    (each shard is one checkpointed sweep call, and the unit of
    incremental aggregation, leasing, and resume).  ``workers`` through
    ``backoff`` are passed through to every shard's ``sweep``.

    Chaos-hardening knobs:

    * ``seed`` drives the job's retry-backoff jitter streams (and
      nothing else) — two runs of the same job sleep the same
      schedule.
    * ``max_attempts`` is the per-shard attempt budget.  ``1`` (the
      default) is fail-fast: the first shard failure fails the job and
      re-raises.  Larger values retry with seeded backoff, then
      quarantine the poison shard and keep going.
    * ``lease_ttl`` is the shard lease's expiry in seconds; a dead
      owner's lease is reclaimed immediately, a live one after the TTL.
    """

    name: str
    fn: Callable
    grid: Sequence = field(repr=False)
    shards: int = 4
    workers: Optional[int] = None
    executor: str = "process"
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.5
    seed: int = 0
    max_attempts: int = 1
    lease_ttl: float = 60.0

    def __post_init__(self):
        if not (isinstance(self.name, str) and self.name):
            raise SweepError(
                f"job name must be a nonempty string, got {self.name!r}")
        if os.sep in self.name or "/" in self.name or self.name in (".",
                                                                    ".."):
            raise SweepError(
                f"job name must be a plain directory name, "
                f"got {self.name!r}")
        if not isinstance(self.shards, int) or isinstance(self.shards,
                                                          bool) \
                or self.shards < 1:
            raise SweepError(
                f"shards must be a positive integer, got {self.shards!r}")
        if not callable(self.fn):
            raise SweepError(f"fn must be callable, got {self.fn!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise SweepError(
                f"job seed must be an int >= 0, got {self.seed!r}")
        if not isinstance(self.max_attempts, int) \
                or isinstance(self.max_attempts, bool) \
                or self.max_attempts < 1:
            raise SweepError(
                f"max_attempts must be an int >= 1, "
                f"got {self.max_attempts!r}")
        if not self.lease_ttl > 0:
            raise SweepError(
                f"lease_ttl must be > 0 seconds, got {self.lease_ttl!r}")

    @property
    def shard_ranges(self) -> List[range]:
        return chunk_indices(len(self.grid), self.shards)


def _atomic_write_bytes(path: Path, payload: bytes,
                        crash_site: Optional[str] = None) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(payload)
    if crash_site is not None:
        crashpoint(crash_site)
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process we can see."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class Orchestrator:
    """A durable queue of sharded sweep jobs rooted in one directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._jobs: Dict[str, SweepJob] = {}
        # Lease identity: pid for liveness probing, nonce so a pid
        # reuse never masquerades as the dead owner.
        self._owner = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"

    # ------------------------------------------------------------------
    # disk layout helpers
    # ------------------------------------------------------------------
    def job_dir(self, name: str) -> Path:
        return self.jobs_dir / name

    def _state_path(self, name: str) -> Path:
        return self.job_dir(name) / "state.json"

    def _shard_result_path(self, name: str, k: int) -> Path:
        return self.job_dir(name) / "results" / f"shard_{k:05d}.pkl"

    def _shard_checkpoint_dir(self, name: str, k: int) -> Path:
        return self.job_dir(name) / "shards" / f"shard_{k:05d}"

    def _lease_path(self, name: str, k: int) -> Path:
        return self.job_dir(name) / "leases" / f"shard_{k:05d}.json"

    def _write_state(self, name: str, state: dict) -> None:
        state = dict(state)
        state["schema"] = ORCHESTRATOR_SCHEMA
        _atomic_write_bytes(self._state_path(name),
                            json.dumps(state, indent=1).encode(),
                            crash_site="orchestrator-state-mid-write")

    def _read_state(self, name: str) -> Optional[dict]:
        path = self._state_path(name)
        if not path.exists():
            return None
        try:
            state = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(
                f"unreadable job state {path}: {exc!r}") from exc
        schema = state.get("schema")
        if schema == _ORCHESTRATOR_SCHEMA_V1:
            # Forward migration: v1 predates quarantine bookkeeping.
            state.setdefault("quarantined", {})
            state.setdefault("attempts", {})
            state["schema"] = ORCHESTRATOR_SCHEMA
        elif schema != ORCHESTRATOR_SCHEMA:
            raise SweepError(
                f"job state {path} has schema {schema!r}, expected "
                f"{ORCHESTRATOR_SCHEMA!r} (or the migratable "
                f"{_ORCHESTRATOR_SCHEMA_V1!r}); refusing to resume "
                f"across an unknown schema version")
        return state

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def _read_lease(self, name: str, k: int) -> Optional[dict]:
        path = self._lease_path(name, k)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # corrupt lease (e.g. crash mid-write): reclaim

    def _acquire_lease(self, name: str, k: int, ttl: float) -> bool:
        """Take (or refresh) the shard lease; False when another live
        worker holds it.  Dead-owner and expired leases are reclaimed."""
        lease = self._read_lease(name, k)
        now = time.time()
        if lease is not None and lease.get("owner") != self._owner:
            expires = float(lease.get("expires_at", 0.0))
            pid = int(lease.get("pid", 0))
            if expires > now and _pid_alive(pid):
                return False
        path = self._lease_path(name, k)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, json.dumps(
            {"owner": self._owner, "pid": os.getpid(),
             "acquired_at": now, "expires_at": now + ttl}).encode())
        return True

    def _release_lease(self, name: str, k: int) -> None:
        try:
            self._lease_path(name, k).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # queue operations
    # ------------------------------------------------------------------
    def submit(self, job: SweepJob) -> dict:
        """Queue a job (or re-attach to its on-disk state to resume).

        Returns the job's state dict.  Re-submitting a job whose name
        already has on-disk state verifies the grid size and shard
        layout against the pinned values — a mismatch raises
        :class:`~repro.errors.SweepError` rather than silently mixing
        two different grids — and an interrupted ``running`` job drops
        back to ``queued`` so :meth:`run_pending` picks it up again.
        Resubmission also clears the quarantine map: a fresh attempt
        budget for every shard.
        """
        if not isinstance(job, SweepJob):
            raise SweepError(f"expected a SweepJob, got {job!r}")
        shard_sizes = [len(rng) for rng in job.shard_ranges]
        state = self._read_state(job.name)
        if state is None:
            self.job_dir(job.name).mkdir(parents=True, exist_ok=True)
            state = {"name": job.name, "n_items": len(job.grid),
                     "shards": job.shards, "shard_sizes": shard_sizes,
                     "status": "queued", "completed_shards": [],
                     "error": None, "quarantined": {}, "attempts": {}}
        else:
            if state["n_items"] != len(job.grid) \
                    or state["shard_sizes"] != shard_sizes:
                raise SweepError(
                    f"job {job.name!r}: on-disk state pins "
                    f"{state['n_items']} items in shards "
                    f"{state['shard_sizes']}, resubmitted with "
                    f"{len(job.grid)} items in shards {shard_sizes}")
            if state["status"] in ("running", "failed"):
                # Interrupted or failed: back to the queue for resume.
                state["status"] = "queued"
                state["error"] = None
                state["quarantined"] = {}
                state["attempts"] = {}
        self._write_state(job.name, state)
        self._jobs[job.name] = job
        return state

    def status(self, name: str) -> dict:
        """The on-disk state of a job (raises for unknown names)."""
        state = self._read_state(name)
        if state is None:
            raise SweepError(f"no job named {name!r} under {self.root}")
        return state

    def queued(self) -> List[str]:
        """Names of registered jobs still waiting to run, in order."""
        return [name for name, job in self._jobs.items()
                if self.status(name)["status"] == "queued"]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_shard(self, job: SweepJob, name: str, k: int,
                   rng: range) -> List:
        """One shard through its attempt budget; raises the last error
        when every attempt failed."""
        shard_grid = [job.grid[i] for i in rng]
        last_exc: Optional[Exception] = None
        for attempt in range(1, job.max_attempts + 1):
            # Heartbeat: refresh our lease so a long shard is not
            # reclaimed mid-run by a patient second worker.
            self._acquire_lease(name, k, job.lease_ttl)
            if attempt > 1:
                time.sleep(_retry_backoff(job.backoff, attempt - 1,
                                          [job.seed, k, attempt]))
            try:
                return sweep(
                    job.fn, shard_grid, workers=job.workers,
                    executor=job.executor, chunk_size=job.chunk_size,
                    timeout=job.timeout, retries=job.retries,
                    backoff=job.backoff,
                    checkpoint_dir=self._shard_checkpoint_dir(name, k))
            except Exception as exc:
                last_exc = exc
        raise last_exc

    def run_job(self, name: str) -> List:
        """Run (or resume) one job to completion and return its results.

        Completed shards are skipped (their results come from disk);
        the first incomplete shard resumes from its sweep checkpoint.
        Shards leased by another *live* worker are skipped and reported
        via :class:`~repro.errors.SweepError` (the job drops back to
        ``queued`` so a later run picks the stragglers up); dead
        owners' leases are reclaimed on the spot.

        With the default ``max_attempts=1`` a shard failure marks the
        job ``failed`` (with the error recorded in ``state.json``) and
        re-raises.  With a larger budget the shard is retried under
        seeded backoff and then quarantined, the remaining shards still
        run, and the job fails at the end naming every poison shard.
        """
        job = self._jobs.get(name)
        if job is None:
            raise SweepError(
                f"job {name!r} is not registered in this orchestrator; "
                f"submit() it (functions are not persisted on disk)")
        state = self.status(name)
        if state["status"] == "done":
            return self.results(name)
        state["status"] = "running"
        self._write_state(name, state)
        completed = set(state["completed_shards"])
        blocked: List[int] = []
        for k, rng in enumerate(job.shard_ranges):
            if k in completed:
                continue
            if not self._acquire_lease(name, k, job.lease_ttl):
                blocked.append(k)
                continue
            try:
                shard_results = self._run_shard(job, name, k, rng)
            except Exception as exc:
                state["attempts"][str(k)] = job.max_attempts
                state["quarantined"][str(k)] = repr(exc)
                if job.max_attempts == 1:
                    # Fail-fast: first failure fails the job.
                    state["status"] = "failed"
                    state["error"] = repr(exc)
                    self._write_state(name, state)
                    self._release_lease(name, k)
                    raise
                self._write_state(name, state)
                self._release_lease(name, k)
                continue
            # Incremental aggregation: persist the shard before moving
            # on, so a later crash never recomputes it.
            crashpoint("orchestrator-pre-shard-result")
            path = self._shard_result_path(name, k)
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(path, pickle.dumps(shard_results),
                                crash_site="orchestrator-shard-mid-write")
            crashpoint("orchestrator-pre-state-update")
            state["completed_shards"] = sorted(completed | {k})
            completed.add(k)
            self._write_state(name, state)
            self._release_lease(name, k)
        quarantined = {k: err for k, err in state["quarantined"].items()
                       if int(k) not in completed}
        if quarantined:
            summary = ", ".join(f"shard {k}: {err}"
                                for k, err in sorted(quarantined.items()))
            state["status"] = "failed"
            state["error"] = (f"{len(quarantined)} shard(s) quarantined "
                              f"after {job.max_attempts} attempts")
            self._write_state(name, state)
            raise SweepError(
                f"job {name!r}: {state['error']} — {summary}; resubmit "
                f"to retry with a fresh attempt budget")
        if blocked:
            state["status"] = "queued"
            self._write_state(name, state)
            raise SweepError(
                f"job {name!r}: shard(s) {blocked} are leased by "
                f"another live worker; run again once they finish or "
                f"their leases expire")
        state["status"] = "done"
        state["error"] = None
        self._write_state(name, state)
        return self.results(name)

    def run_pending(self) -> Dict[str, str]:
        """Drain the queue in submission order; return final statuses.

        Per-job failures are recorded in that job's state and do not
        stop the queue — inspect the returned mapping (or
        :meth:`status`) and re-submit to retry.
        """
        outcome = {}
        for name in list(self._jobs):
            if self.status(name)["status"] not in ("queued", "running"):
                outcome[name] = self.status(name)["status"]
                continue
            try:
                self.run_job(name)
            except Exception:
                pass
            outcome[name] = self.status(name)["status"]
        return outcome

    def results(self, name: str) -> List:
        """The job's results in grid order, loaded shard by shard."""
        state = self.status(name)
        if state["status"] != "done":
            raise SweepError(
                f"job {name!r} is {state['status']!r}, not done; "
                f"no complete results to load")
        out: List = []
        for k in range(len(state["shard_sizes"])):
            path = self._shard_result_path(name, k)
            try:
                shard = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError) as exc:
                raise SweepError(
                    f"job {name!r}: shard result {path} is "
                    f"unreadable: {exc!r}") from exc
            if len(shard) != state["shard_sizes"][k]:
                raise SweepError(
                    f"job {name!r}: shard {k} holds {len(shard)} "
                    f"results, expected {state['shard_sizes'][k]}")
            out.extend(shard)
        return out
