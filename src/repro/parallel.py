"""Deterministic parallel sweep runner for grid-shaped workloads.

Most experiments are embarrassingly parallel sweeps: evaluate one
deterministic function over a parameter grid (gains, connection counts,
design configurations) and collect the results *in grid order*.
:func:`sweep` runs such a grid over a :mod:`concurrent.futures` pool
with deterministic chunking — the grid is split into contiguous chunks,
every chunk is evaluated in order within one worker, and the results
are reassembled in the original grid order, so the output is identical
to ``[fn(p) for p in grid]`` regardless of worker count, executor kind,
or scheduling jitter.

Guidance:

* ``executor="process"`` (the default) gives true CPU parallelism but
  requires ``fn``, the grid items, and the results to be picklable —
  use module-level functions, not lambdas or closures.
* ``executor="thread"`` has no pickling constraints and works well when
  ``fn`` spends its time in numpy (which releases the GIL).
* ``executor="serial"`` (or ``workers<=1``) runs the plain list
  comprehension; it is also the automatic fallback when a pool cannot
  be created (restricted sandboxes, unpicklable work).

The batched trajectory engine (:meth:`FlowControlSystem.run_ensemble
<repro.core.dynamics.FlowControlSystem.run_ensemble>`) is preferred
when the grid points share one system — vectorisation beats process
pools there.  :func:`sweep` is for grids where each point builds a
*different* system or analysis.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
import time
import warnings
from typing import Callable, List, Optional, Sequence

from .errors import RateVectorError
from .observability import SweepRecord, emit_sweep_record, is_collecting

__all__ = ["sweep", "chunk_indices"]


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous
    ranges whose sizes differ by at most one.

    Deterministic: depends only on the two counts.  Used by
    :func:`sweep` so that a given grid always maps to the same chunks.
    """
    if n_items < 0:
        raise RateVectorError(f"item count must be >= 0, got {n_items!r}")
    if n_chunks < 1:
        raise RateVectorError(f"chunk count must be >= 1, got {n_chunks!r}")
    n_chunks = min(n_chunks, max(1, n_items))
    base, extra = divmod(n_items, n_chunks)
    out = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        if size == 0:
            break
        out.append(range(start, start + size))
        start += size
    return out


def _run_chunk(fn: Callable, items: list) -> list:
    """Evaluate one contiguous chunk, in order (module-level so process
    pools can pickle it)."""
    return [fn(item) for item in items]


def _run_chunk_timed(fn: Callable, items: list) -> tuple:
    """Like :func:`_run_chunk`, but also reports the in-worker wall
    time so :class:`~repro.observability.SweepRecord` can derive
    per-chunk cost and worker utilisation."""
    start = time.perf_counter()
    out = [fn(item) for item in items]
    return out, time.perf_counter() - start


def sweep(fn: Callable, grid: Sequence, workers: Optional[int] = None,
          executor: str = "process",
          chunk_size: Optional[int] = None) -> list:
    """Evaluate ``fn`` over ``grid``, in parallel, deterministically.

    Args:
        fn: the per-point function.  With the (default) process
            executor it must be picklable — a module-level function.
        grid: the parameter points; results come back in this order.
        workers: pool size.  ``None`` uses ``os.cpu_count()``; ``0`` or
            ``1`` runs serially.
        executor: ``"process"``, ``"thread"``, or ``"serial"``.
        chunk_size: points per task.  ``None`` splits the grid into
            ``4 * workers`` contiguous chunks (enough slack for uneven
            point costs without drowning in task overhead).

    Returns:
        ``[fn(p) for p in grid]`` — exactly, whatever the parallelism.

    When an :func:`repro.observability.collect` session is active, a
    :class:`~repro.observability.SweepRecord` with per-chunk in-worker
    timing, worker utilisation, and any serial-fallback reason is
    emitted to it; the result list is unaffected.
    """
    items = list(grid)
    if executor not in ("process", "thread", "serial"):
        raise RateVectorError(
            f"executor must be 'process', 'thread', or 'serial', "
            f"got {executor!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise RateVectorError(f"workers must be >= 0, got {workers!r}")
    rec = (SweepRecord(n_items=len(items), executor=executor,
                       workers=workers) if is_collecting() else None)
    wall_start = time.perf_counter()

    def run_serial(fallback_reason: Optional[str] = None) -> list:
        if rec is None:
            return _run_chunk(fn, items)
        out, elapsed = _run_chunk_timed(fn, items)
        rec.serial = True
        rec.fallback_reason = fallback_reason
        rec.n_chunks = 1 if items else 0
        rec.chunk_sizes = [len(items)] if items else []
        rec.chunk_seconds = [elapsed] if items else []
        rec.finalise(time.perf_counter() - wall_start, 1)
        emit_sweep_record(rec)
        return out

    if executor == "serial" or workers <= 1 or len(items) <= 1:
        return run_serial()

    if chunk_size is not None:
        if chunk_size < 1:
            raise RateVectorError(
                f"chunk_size must be >= 1, got {chunk_size!r}")
        n_chunks = math.ceil(len(items) / chunk_size)
    else:
        n_chunks = 4 * workers
    chunks = chunk_indices(len(items), n_chunks)

    pool_cls = (concurrent.futures.ProcessPoolExecutor
                if executor == "process"
                else concurrent.futures.ThreadPoolExecutor)
    try:
        with pool_cls(max_workers=min(workers, len(chunks))) as pool:
            futures = [pool.submit(_run_chunk_timed, fn,
                                   [items[i] for i in r])
                       for r in chunks]
            pieces = [f.result() for f in futures]
    except Exception as exc:  # pool creation / pickling / sandbox limits
        warnings.warn(
            f"parallel sweep fell back to serial execution: {exc!r}",
            RuntimeWarning, stacklevel=2)
        return run_serial(fallback_reason=repr(exc))
    out: list = []
    for piece, _ in pieces:
        out.extend(piece)
    if rec is not None:
        rec.n_chunks = len(chunks)
        rec.chunk_sizes = [len(r) for r in chunks]
        rec.chunk_seconds = [elapsed for _, elapsed in pieces]
        rec.finalise(time.perf_counter() - wall_start,
                     min(workers, len(chunks)))
        emit_sweep_record(rec)
    return out
