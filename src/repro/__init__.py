"""Reproduction of Shenker, *A Theoretical Analysis of Feedback Flow
Control* (SIGCOMM 1990).

The package has five layers:

* :mod:`repro.core` — the paper's analytic model (topologies, FIFO and
  Fair Share queue laws, aggregate/individual congestion signalling,
  TSI rate-adjustment rules, the synchronous dynamics, and the four
  performance goals: time-scale invariance, fairness, stability,
  robustness).
* :mod:`repro.simulation` — a packet-level discrete-event simulator
  (Poisson sources, exponential servers) that validates the analytic
  queue laws and runs the feedback loop with real, delayed signals.
* :mod:`repro.analysis` — iterated-map tooling (orbits, bifurcations,
  Lyapunov exponents) for the Section 3.3 route to chaos.
* :mod:`repro.baselines` — DECbit / Jacobson / Chiu-Jain style
  comparison algorithms and the reservation-based allocation.
* :mod:`repro.experiments` — one harness per paper table/figure
  (T1, F1..F12) plus a registry; see DESIGN.md and EXPERIMENTS.md.
* :mod:`repro.scenarios` — seeded random-scenario fuzzing with
  differential and theorem oracles (``python -m repro fuzz``).

Quickstart::

    import numpy as np
    from repro import (single_gateway, FairShare, LinearSaturating,
                       TargetRule, FlowControlSystem, FeedbackStyle)

    net = single_gateway(4, mu=1.0)
    system = FlowControlSystem(net, FairShare(), LinearSaturating(),
                               TargetRule(eta=0.1, beta=0.5),
                               style=FeedbackStyle.INDIVIDUAL)
    traj = system.run(np.array([0.1, 0.2, 0.3, 0.4]))
    print(traj.outcome, traj.final)

Whole ensembles of initial conditions iterate together through the
batched engine (one vectorised update per step, finished members
masked out)::

    starts = np.random.default_rng(0).uniform(0.0, 0.6, size=(256, 4))
    result = system.run_ensemble(starts, max_steps=20000)
    print(result.outcome_counts(), result.finals.shape)

and grids of *independent* work (one system per point) fan out over
processes with :func:`repro.parallel.sweep`.
"""

from .core import *  # noqa: F401,F403 — the curated public API
from .core import __all__ as _core_all
from .errors import (ArtifactError, CLIError, ConvergenceError,
                     ExperimentError, FaultError, InfeasibleLoadError,
                     NotTimeScaleInvariantError, RateVectorError, ReproError,
                     SimulationError, SweepError, TopologyError,
                     WorkerFunctionError)
from .errors import OracleError, ScenarioError
from .faults import (ExtraDelay, FaultEvent, FaultPlan, FaultState,
                     GatewayOutage, SignalLoss, SignalNoise,
                     SignalQuantisation, parse_fault_spec)
from .parallel import sweep
from .scenarios import ScenarioSpec, fuzz, generate_spec, run_scenario

__version__ = "1.1.0"

__all__ = list(_core_all) + [
    "ReproError", "TopologyError", "RateVectorError", "InfeasibleLoadError",
    "ConvergenceError", "NotTimeScaleInvariantError", "SimulationError",
    "ExperimentError", "FaultError", "SweepError", "WorkerFunctionError",
    "ArtifactError", "CLIError", "ScenarioError", "OracleError",
    "FaultPlan", "FaultState", "FaultEvent", "SignalLoss", "SignalNoise",
    "SignalQuantisation", "ExtraDelay", "GatewayOutage", "parse_fault_spec",
    "sweep", "ScenarioSpec", "generate_spec", "run_scenario", "fuzz",
    "__version__",
]
