"""Runtime-compiled C kernels (the ``cext`` tier).

At first use this module compiles a small C file with the system C
compiler (``cc``/``gcc``/``clang``), caches the shared library under
``src/repro/backends/_build`` (override with ``REPRO_CC_CACHE``; falls
back to a temporary directory when the tree is read-only), and binds
it with :mod:`ctypes`.  Nothing is installed; when no compiler exists
the tier simply reports unavailable and callers fall back to the
pure-python kernels.

Two kernel families live in the library:

* ``fs_queue_batch`` / ``fs_loads_batch`` / ``ind_congestion_batch``
  — the Fair Share sorted prefix-sum laws, loop twins of
  :mod:`repro.backends._fs_python` (see that module's bit-identity
  notes; the C side adds a stable argsort — bottom-up mergesort for
  short rows, LSD radix on order-preserving integer keys for long
  ones — which yields the same permutation as
  ``np.argsort(kind="stable")`` because the stable ascending
  permutation is unique; the key transform collapses ``-0.0`` onto
  ``+0.0`` so the radix tie classes match IEEE comparison ties).
* the FIFO event loop — a C transcription of
  ``FastEngine._run_fifo`` driven through a resume trampoline:
  ``fifo_enter`` copies the event heap, packet pool, and queue chains
  into C-owned growable arrays (fixed-size per-gateway/per-connection
  state stays in caller-owned numpy buffers mutated in place);
  ``fifo_run`` executes events until the horizon, returning
  ``REFILL`` *before* any event whose random draws would exhaust a
  variate block, so Python can refill the
  :class:`~repro.simulation.rng.VariateBuffer` (keeping the generator
  objects — and hence the exact bitstream — on the Python side) and
  resume; ``fifo_extract`` hands the heap/pool/queues back.

Float discipline: compiled with ``-ffp-contract=off -fno-fast-math``
so no FMA contraction or reassociation — every arithmetic operation
maps one-to-one onto the Python/numpy original, which is what makes
the engines bit-identical rather than merely close.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time as _time
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "compiler_available", "load", "load_error", "build_seconds",
    "fs_queue_batch", "fs_loads_batch", "ind_congestion_batch",
    "ST_DONE", "ST_REFILL", "ST_MAX_EVENTS", "ST_IDLE_SERVER",
    "ST_OOM",
]

# Status codes shared with the C side.
ST_DONE = 0
ST_REFILL = 1
ST_MAX_EVENTS = 3
ST_IDLE_SERVER = 4
ST_OOM = 5

_SOURCE = r"""
#include <stdlib.h>
#include <string.h>
#include <stdint.h>
#include <math.h>

typedef int64_t i64;
typedef uint64_t u64;

#define K_EMIT 0
#define K_COMPLETE 1
#define K_HANDOFF 2
#define K_SINK 3

#define ST_DONE 0
#define ST_REFILL 1
#define ST_MAX_EVENTS 3
#define ST_IDLE_SERVER 4
#define ST_OOM 5

/* ------------------------------------------------------------------ */
/* Fair Share sorted prefix-sum kernels                               */
/* ------------------------------------------------------------------ */

/* Stable ascending argsort (bottom-up mergesort on an index array).
 * Stability + ascending order determine the permutation uniquely, so
 * this matches numpy's kind="stable" argsort exactly. */
static void stable_argsort(const double *v, i64 n, i64 *idx, i64 *tmp)
{
    i64 *src = idx, *dst = tmp, width;
    for (i64 i = 0; i < n; i++) idx[i] = i;
    for (width = 1; width < n; width *= 2) {
        for (i64 lo = 0; lo < n; lo += 2 * width) {
            i64 mid = lo + width, hi = lo + 2 * width;
            if (mid > n) mid = n;
            if (hi > n) hi = n;
            i64 i = lo, j = mid, k = lo;
            while (i < mid && j < hi) {
                /* left wins ties: keeps original order (stable) */
                if (v[src[j]] < v[src[i]]) dst[k++] = src[j++];
                else dst[k++] = src[i++];
            }
            while (i < mid) dst[k++] = src[i++];
            while (j < hi) dst[k++] = src[j++];
        }
        i64 *sw = src; src = dst; dst = sw;
    }
    if (src != idx)
        memcpy(idx, src, (size_t)n * sizeof(i64));
}

/* Order-preserving integer key for a non-NaN double: flip the sign
 * bit for nonnegative values, flip every bit for negative ones, and
 * collapse -0.0 onto +0.0 first so the two zeros stay one tie class
 * (IEEE comparison says -0.0 == +0.0, and the radix sort below must
 * reproduce the comparison sort's tie behaviour exactly). */
static inline u64 sort_key(double x)
{
    u64 b;
    memcpy(&b, &x, sizeof b);
    if (b == 0x8000000000000000ULL) b = 0;          /* -0.0 -> +0.0 */
    return (b >> 63) ? ~b : (b | 0x8000000000000000ULL);
}

/* Stable ascending argsort via LSD radix on the 64-bit keys: 8-bit
 * digits, counting passes (stable by construction), single-bucket
 * passes skipped.  Same permutation as the mergesort for any input
 * without NaNs (the dispatch guards keep NaNs out of these kernels);
 * ~4x faster for the row lengths the scale paths use. */
static void radix_argsort(const double *v, i64 n, i64 *idx, i64 *tmp,
                          u64 *keys, u64 *keys_tmp)
{
    i64 count[256];
    i64 *idx0 = idx;
    for (i64 i = 0; i < n; i++) { idx[i] = i; keys[i] = sort_key(v[i]); }
    for (int shift = 0; shift < 64; shift += 8) {
        memset(count, 0, sizeof count);
        for (i64 i = 0; i < n; i++)
            count[(keys[i] >> shift) & 0xff]++;
        if (count[(keys[0] >> shift) & 0xff] == n)
            continue;                     /* whole row in one bucket */
        i64 pos = 0;
        for (int b = 0; b < 256; b++) {
            i64 c = count[b]; count[b] = pos; pos += c;
        }
        for (i64 i = 0; i < n; i++) {
            u64 k = keys[i];
            i64 p = count[(k >> shift) & 0xff]++;
            keys_tmp[p] = k;
            tmp[p] = idx[i];
        }
        u64 *ks = keys; keys = keys_tmp; keys_tmp = ks;
        i64 *is = idx; idx = tmp; tmp = is;
    }
    if (idx != idx0)
        memcpy(idx0, idx, (size_t)n * sizeof(i64));
}

/* Radix wins once the row is long enough to amortise its 8 counting
 * passes; below that the branchy mergesort is cheaper. */
#define RADIX_MIN_N 48

static void sort_row(const double *v, i64 n, i64 *idx, i64 *tmp,
                     u64 *keys, u64 *keys_tmp)
{
    if (n >= RADIX_MIN_N)
        radix_argsort(v, n, idx, tmp, keys, keys_tmp);
    else
        stable_argsort(v, n, idx, tmp);
}

void fs_queue_batch(const double *rates, i64 m, i64 n, double mu,
                    double *out)
{
    i64 *idx = (i64 *)malloc((size_t)n * sizeof(i64));
    i64 *tmp = (i64 *)malloc((size_t)n * sizeof(i64));
    u64 *keys = (u64 *)malloc((size_t)n * sizeof(u64));
    u64 *keys_tmp = (u64 *)malloc((size_t)n * sizeof(u64));
    if (!idx || !tmp || !keys || !keys_tmp) {
        free(idx); free(tmp); free(keys); free(keys_tmp); return;
    }
    for (i64 row = 0; row < m; row++) {
        const double *rr = rates + row * n;
        double *oo = out + row * n;
        sort_row(rr, n, idx, tmp, keys, keys_tmp);
        double prefix = 0.0, g_prev = 0.0, acc = 0.0;
        for (i64 k = 0; k < n; k++) {
            i64 j = idx[k];
            double sr = rr[j];
            prefix += sr;
            double sigma = (prefix + sr * (double)(n - 1 - k)) / mu;
            double gs = (sigma < 1.0) ? (sigma / (1.0 - sigma))
                                      : INFINITY;
            double q;
            if (isfinite(gs)) {
                acc += (gs - g_prev) / (double)(n - k);
                q = acc;
            } else {
                acc += 0.0; /* the masked cumsum adds literal zero */
                q = INFINITY;
            }
            if (sr == 0.0) q = 0.0;
            oo[j] = q;
            g_prev = gs;
        }
    }
    free(idx);
    free(tmp);
    free(keys);
    free(keys_tmp);
}

void fs_loads_batch(const double *sorted_rates, i64 m, i64 n,
                    double mu, double *out)
{
    for (i64 row = 0; row < m; row++) {
        const double *rr = sorted_rates + row * n;
        double *oo = out + row * n;
        double prefix = 0.0;
        for (i64 k = 0; k < n; k++) {
            double sr = rr[k];
            prefix += sr;
            oo[k] = (prefix + sr * (double)(n - 1 - k)) / mu;
        }
    }
}

void ind_congestion_batch(const double *queues, i64 m, i64 n,
                          double *out)
{
    i64 *idx = (i64 *)malloc((size_t)n * sizeof(i64));
    i64 *tmp = (i64 *)malloc((size_t)n * sizeof(i64));
    u64 *keys = (u64 *)malloc((size_t)n * sizeof(u64));
    u64 *keys_tmp = (u64 *)malloc((size_t)n * sizeof(u64));
    if (!idx || !tmp || !keys || !keys_tmp) {
        free(idx); free(tmp); free(keys); free(keys_tmp); return;
    }
    for (i64 row = 0; row < m; row++) {
        const double *qq = queues + row * n;
        double *oo = out + row * n;
        sort_row(qq, n, idx, tmp, keys, keys_tmp);
        double prefix = 0.0;
        for (i64 k = 0; k < n; k++) {
            i64 j = idx[k];
            double v = qq[j];
            prefix += v;
            oo[j] = isinf(v) ? INFINITY
                             : (prefix + v * (double)(n - 1 - k));
        }
    }
    free(idx);
    free(tmp);
    free(keys);
    free(keys_tmp);
}

/* ------------------------------------------------------------------ */
/* FIFO event loop (transcription of FastEngine._run_fifo)            */
/* ------------------------------------------------------------------ */

typedef struct {
    /* dimensions / horizon */
    i64 n_gw, n_conn, block;
    double t_end;
    i64 max_events;
    /* borrowed fixed-size state (numpy-owned, mutated in place) */
    const double *latency, *mu_scale, *scale;
    const i64 *buffer_cap, *pos_flat, *first_hop;
    const i64 *gw_ptr, *path_ptr, *path_arr;
    i64 *serving, *in_sys;
    const i64 *arr_epoch;
    double *st_last, *st_integral;
    i64 *st_count, *st_arrivals, *st_departures, *st_drops;
    i64 *e2e_delivered;
    double *e2e_delay;
    i64 *q_head, *q_tail;
    double *rng_vals;
    i64 *rng_idx;
    /* C-owned growable state */
    double *h_time;
    i64 *h_seq, *h_kind, *h_a, *h_b;
    i64 heap_len, heap_cap;
    i64 *p_conn;
    double *p_created;
    i64 *p_hop;
    double *p_rem;
    i64 pool_len, pool_cap;
    i64 *p_free;
    i64 free_len;
    i64 *q_next;
    /* loop registers */
    double now;
    i64 seq, processed, need_stream;
} FifoState;

static int heap_reserve(FifoState *s, i64 need)
{
    if (need <= s->heap_cap) return 1;
    i64 cap = s->heap_cap > 0 ? s->heap_cap : 16;
    while (cap < need) cap *= 2;
    double *ht = (double *)realloc(s->h_time,
                                   (size_t)cap * sizeof(double));
    if (!ht) return 0;
    s->h_time = ht;
    i64 **cols[4] = {&s->h_seq, &s->h_kind, &s->h_a, &s->h_b};
    for (int c = 0; c < 4; c++) {
        i64 *p = (i64 *)realloc(*cols[c], (size_t)cap * sizeof(i64));
        if (!p) return 0;
        *cols[c] = p;
    }
    s->heap_cap = cap;
    return 1;
}

static int pool_reserve(FifoState *s, i64 need)
{
    if (need <= s->pool_cap) return 1;
    i64 cap = s->pool_cap > 0 ? s->pool_cap : 16;
    while (cap < need) cap *= 2;
    i64 *pc = (i64 *)realloc(s->p_conn, (size_t)cap * sizeof(i64));
    if (!pc) return 0;
    s->p_conn = pc;
    double *pd = (double *)realloc(s->p_created,
                                   (size_t)cap * sizeof(double));
    if (!pd) return 0;
    s->p_created = pd;
    i64 *ph = (i64 *)realloc(s->p_hop, (size_t)cap * sizeof(i64));
    if (!ph) return 0;
    s->p_hop = ph;
    double *pr = (double *)realloc(s->p_rem,
                                   (size_t)cap * sizeof(double));
    if (!pr) return 0;
    s->p_rem = pr;
    i64 *pf = (i64 *)realloc(s->p_free, (size_t)cap * sizeof(i64));
    if (!pf) return 0;
    s->p_free = pf;
    i64 *qn = (i64 *)realloc(s->q_next, (size_t)cap * sizeof(i64));
    if (!qn) return 0;
    s->q_next = qn;
    s->pool_cap = cap;
    return 1;
}

/* Entries are totally ordered by (time, seq): seq is unique, so any
 * valid binary min-heap pops them in the same order python's heapq
 * pops its (time, seq, -1, kind, ...) tuples. */
static int heap_push(FifoState *s, double t, i64 sq, i64 kind,
                     i64 a, i64 b)
{
    if (!heap_reserve(s, s->heap_len + 1)) return 0;
    i64 i = s->heap_len++;
    while (i > 0) {
        i64 up = (i - 1) >> 1;
        if (s->h_time[up] < t ||
            (s->h_time[up] == t && s->h_seq[up] < sq))
            break;
        s->h_time[i] = s->h_time[up];
        s->h_seq[i] = s->h_seq[up];
        s->h_kind[i] = s->h_kind[up];
        s->h_a[i] = s->h_a[up];
        s->h_b[i] = s->h_b[up];
        i = up;
    }
    s->h_time[i] = t;
    s->h_seq[i] = sq;
    s->h_kind[i] = kind;
    s->h_a[i] = a;
    s->h_b[i] = b;
    return 1;
}

static void heap_pop(FifoState *s)
{
    i64 n = --s->heap_len;
    if (n == 0) return;
    double t = s->h_time[n];
    i64 sq = s->h_seq[n], kd = s->h_kind[n];
    i64 a = s->h_a[n], b = s->h_b[n];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1;
        if (l >= n) break;
        i64 c = l, r = l + 1;
        if (r < n && (s->h_time[r] < s->h_time[l] ||
                      (s->h_time[r] == s->h_time[l] &&
                       s->h_seq[r] < s->h_seq[l])))
            c = r;
        if (s->h_time[c] < t ||
            (s->h_time[c] == t && s->h_seq[c] < sq)) {
            s->h_time[i] = s->h_time[c];
            s->h_seq[i] = s->h_seq[c];
            s->h_kind[i] = s->h_kind[c];
            s->h_a[i] = s->h_a[c];
            s->h_b[i] = s->h_b[c];
            i = c;
        } else {
            break;
        }
    }
    s->h_time[i] = t;
    s->h_seq[i] = sq;
    s->h_kind[i] = kd;
    s->h_a[i] = a;
    s->h_b[i] = b;
}

/* A packet reaches gateway g: drop check, service draw, statistics,
 * enqueue-or-serve.  Mirrors the inlined arrive block of _run_fifo
 * statement for statement.  Returns 0 on allocation failure. */
static int arrive(FifoState *s, i64 g, i64 pid, i64 conn, double now)
{
    i64 base = s->gw_ptr[g];
    if (s->in_sys[g] >= s->buffer_cap[g]) {
        double dt = now - s->st_last[g];
        if (dt > 0.0) {
            i64 nloc = s->gw_ptr[g + 1] - base;
            for (i64 j = 0; j < nloc; j++) {
                i64 c = s->st_count[base + j];
                if (c) s->st_integral[base + j] += (double)c * dt;
            }
            s->st_last[g] = now;
        }
        s->st_drops[base + s->pos_flat[g * s->n_conn + conn]] += 1;
        s->p_free[s->free_len++] = pid;
    } else {
        i64 i = s->rng_idx[g]; /* capacity guaranteed by preflight */
        s->rng_idx[g] = i + 1;
        s->p_rem[pid] = s->mu_scale[g] * s->rng_vals[g * s->block + i];
        double dt = now - s->st_last[g];
        if (dt > 0.0) {
            if (s->in_sys[g]) { /* all counts zero when empty */
                i64 nloc = s->gw_ptr[g + 1] - base;
                for (i64 j = 0; j < nloc; j++) {
                    i64 c = s->st_count[base + j];
                    if (c) s->st_integral[base + j] += (double)c * dt;
                }
            }
            s->st_last[g] = now;
        }
        i64 pos = base + s->pos_flat[g * s->n_conn + conn];
        s->st_count[pos] += 1;
        s->st_arrivals[pos] += 1;
        s->in_sys[g] += 1;
        if (s->serving[g] < 0) {
            s->serving[g] = pid;
            if (!heap_push(s, now + s->p_rem[pid], s->seq++,
                           K_COMPLETE, g, -1))
                return 0;
        } else {
            s->q_next[pid] = -1;
            if (s->q_tail[g] < 0) s->q_head[g] = pid;
            else s->q_next[s->q_tail[g]] = pid;
            s->q_tail[g] = pid;
        }
    }
    return 1;
}

i64 fifo_run(void *handle)
{
    FifoState *s = (FifoState *)handle;
    for (;;) {
        if (s->heap_len == 0) return ST_DONE;
        double time = s->h_time[0];
        if (time > s->t_end) return ST_DONE;
        i64 kind = s->h_kind[0];
        i64 a = s->h_a[0];
        i64 b0 = s->h_b[0];

        /* Preflight: yield for a refill *before* popping any event
         * whose draws would exhaust a variate block, and reserve pool
         * growth, so an event never stops half-committed.  An early
         * refill never changes which variate is the k-th draw of a
         * stream, so the bitstream is untouched. */
        if (kind == K_EMIT) {
            if (b0 == s->arr_epoch[a]) {
                i64 g = s->first_hop[a];
                if (s->in_sys[g] < s->buffer_cap[g] &&
                    s->rng_idx[g] >= s->block) {
                    s->need_stream = g;
                    return ST_REFILL;
                }
                if (s->rng_idx[s->n_gw + a] >= s->block) {
                    s->need_stream = s->n_gw + a;
                    return ST_REFILL;
                }
                if (s->free_len == 0 &&
                    !pool_reserve(s, s->pool_len + 1))
                    return ST_OOM;
            }
        } else if (kind == K_HANDOFF) {
            i64 conn = s->p_conn[a];
            i64 g = s->path_arr[s->path_ptr[conn] + b0];
            if (s->in_sys[g] < s->buffer_cap[g] &&
                s->rng_idx[g] >= s->block) {
                s->need_stream = g;
                return ST_REFILL;
            }
        }

        heap_pop(s);

        if (kind == K_EMIT) {
            i64 conn = a;
            if (b0 != s->arr_epoch[conn])
                continue; /* arrival cancelled by a rate change */
            double now = time;
            s->now = now;
            s->processed += 1;
            i64 pid;
            if (s->free_len > 0) {
                pid = s->p_free[--s->free_len];
            } else {
                pid = s->pool_len++;
                s->p_rem[pid] = 0.0;
            }
            s->p_conn[pid] = conn;
            s->p_created[pid] = now;
            s->p_hop[pid] = 0;
            i64 g = s->first_hop[conn];
            if (!arrive(s, g, pid, conn, now)) return ST_OOM;
            /* schedule the next arrival (epoch-validated payload) */
            i64 stream = s->n_gw + conn;
            i64 i = s->rng_idx[stream];
            s->rng_idx[stream] = i + 1;
            double gap = s->scale[conn] *
                         s->rng_vals[stream * s->block + i];
            if (!heap_push(s, now + gap, s->seq++, K_EMIT, conn,
                           s->arr_epoch[conn]))
                return ST_OOM;

        } else if (kind == K_COMPLETE) {
            double now = time;
            s->now = now;
            s->processed += 1;
            i64 g = a;
            i64 base = s->gw_ptr[g];
            i64 nloc = s->gw_ptr[g + 1] - base;
            double lat = s->latency[g];
            for (;;) {
                i64 pid = s->serving[g];
                if (pid < 0) return ST_IDLE_SERVER;
                i64 conn = s->p_conn[pid];
                double dt = now - s->st_last[g];
                if (dt > 0.0) {
                    for (i64 j = 0; j < nloc; j++) {
                        i64 c = s->st_count[base + j];
                        if (c)
                            s->st_integral[base + j] += (double)c * dt;
                    }
                    s->st_last[g] = now;
                }
                i64 pos = base + s->pos_flat[g * s->n_conn + conn];
                s->st_count[pos] -= 1;
                s->st_departures[pos] += 1;
                s->in_sys[g] -= 1;
                i64 h = s->p_hop[pid] + 1;
                double t = now + lat;
                i64 plen = s->path_ptr[conn + 1] - s->path_ptr[conn];
                if (h < plen) {
                    if (!heap_push(s, t, s->seq++, K_HANDOFF, pid, h))
                        return ST_OOM;
                } else if (t <= s->t_end) {
                    /* eager sink delivery */
                    s->e2e_delivered[conn] += 1;
                    s->e2e_delay[conn] += t - s->p_created[pid];
                    s->p_free[s->free_len++] = pid;
                    s->processed += 1;
                } else {
                    if (!heap_push(s, t, s->seq++, K_SINK, pid, -1))
                        return ST_OOM;
                }
                i64 nxt = s->q_head[g];
                if (nxt < 0) {
                    s->serving[g] = -1;
                    break;
                }
                s->q_head[g] = s->q_next[nxt];
                if (s->q_head[g] < 0) s->q_tail[g] = -1;
                s->serving[g] = nxt;
                double t_next = now + s->p_rem[nxt];
                /* burst: absorb the next completion without heap
                 * traffic when it strictly precedes every pending
                 * event */
                if (t_next <= s->t_end &&
                    s->processed < s->max_events) {
                    if (s->heap_len == 0 || t_next < s->h_time[0]) {
                        now = t_next;
                        s->now = now;
                        s->processed += 1;
                        continue;
                    }
                }
                if (!heap_push(s, t_next, s->seq++, K_COMPLETE, g, -1))
                    return ST_OOM;
                break;
            }

        } else if (kind == K_HANDOFF) {
            double now = time;
            s->now = now;
            s->processed += 1;
            i64 pid = a;
            i64 conn = s->p_conn[pid];
            s->p_hop[pid] = b0;
            i64 g = s->path_arr[s->path_ptr[conn] + b0];
            if (!arrive(s, g, pid, conn, now)) return ST_OOM;

        } else { /* K_SINK */
            double now = time;
            s->now = now;
            s->processed += 1;
            i64 pid = a;
            i64 conn = s->p_conn[pid];
            s->e2e_delivered[conn] += 1;
            s->e2e_delay[conn] += now - s->p_created[pid];
            s->p_free[s->free_len++] = pid;
        }

        if (s->processed > s->max_events) return ST_MAX_EVENTS;
    }
}

void *fifo_enter(
    i64 n_gw, i64 n_conn, i64 block, double t_end, i64 max_events,
    double now, i64 seq,
    double *latency, double *mu_scale, i64 *buffer_cap,
    i64 *pos_flat, i64 *first_hop,
    i64 *gw_ptr, i64 *path_ptr, i64 *path_arr,
    i64 *serving, i64 *in_sys, i64 *arr_epoch,
    double *st_last, double *st_integral,
    i64 *st_count, i64 *st_arrivals, i64 *st_departures,
    i64 *st_drops,
    i64 *e2e_delivered, double *e2e_delay,
    i64 *q_head, i64 *q_tail, i64 *q_next_in,
    double *scale, double *rng_vals, i64 *rng_idx,
    double *h_time, i64 *h_seq, i64 *h_kind, i64 *h_a, i64 *h_b,
    i64 heap_len,
    i64 *p_conn, double *p_created, i64 *p_hop, double *p_rem,
    i64 pool_len, i64 *p_free, i64 free_len)
{
    FifoState *s = (FifoState *)calloc(1, sizeof(FifoState));
    if (!s) return NULL;
    s->n_gw = n_gw;
    s->n_conn = n_conn;
    s->block = block;
    s->t_end = t_end;
    s->max_events = max_events;
    s->now = now;
    s->seq = seq;
    s->processed = 0;
    s->need_stream = -1;
    s->latency = latency;
    s->mu_scale = mu_scale;
    s->scale = scale;
    s->buffer_cap = buffer_cap;
    s->pos_flat = pos_flat;
    s->first_hop = first_hop;
    s->gw_ptr = gw_ptr;
    s->path_ptr = path_ptr;
    s->path_arr = path_arr;
    s->serving = serving;
    s->in_sys = in_sys;
    s->arr_epoch = arr_epoch;
    s->st_last = st_last;
    s->st_integral = st_integral;
    s->st_count = st_count;
    s->st_arrivals = st_arrivals;
    s->st_departures = st_departures;
    s->st_drops = st_drops;
    s->e2e_delivered = e2e_delivered;
    s->e2e_delay = e2e_delay;
    s->q_head = q_head;
    s->q_tail = q_tail;
    s->rng_vals = rng_vals;
    s->rng_idx = rng_idx;
    if (!heap_reserve(s, heap_len > 16 ? heap_len : 16) ||
        !pool_reserve(s, pool_len > 16 ? pool_len : 16)) {
        free(s->h_time); free(s->h_seq); free(s->h_kind);
        free(s->h_a); free(s->h_b);
        free(s->p_conn); free(s->p_created); free(s->p_hop);
        free(s->p_rem); free(s->p_free); free(s->q_next);
        free(s);
        return NULL;
    }
    s->heap_len = heap_len;
    memcpy(s->h_time, h_time, (size_t)heap_len * sizeof(double));
    memcpy(s->h_seq, h_seq, (size_t)heap_len * sizeof(i64));
    memcpy(s->h_kind, h_kind, (size_t)heap_len * sizeof(i64));
    memcpy(s->h_a, h_a, (size_t)heap_len * sizeof(i64));
    memcpy(s->h_b, h_b, (size_t)heap_len * sizeof(i64));
    s->pool_len = pool_len;
    memcpy(s->p_conn, p_conn, (size_t)pool_len * sizeof(i64));
    memcpy(s->p_created, p_created, (size_t)pool_len * sizeof(double));
    memcpy(s->p_hop, p_hop, (size_t)pool_len * sizeof(i64));
    memcpy(s->p_rem, p_rem, (size_t)pool_len * sizeof(double));
    memcpy(s->q_next, q_next_in, (size_t)pool_len * sizeof(i64));
    s->free_len = free_len;
    memcpy(s->p_free, p_free, (size_t)free_len * sizeof(i64));
    return s;
}

i64 fifo_need_stream(void *handle)
{
    return ((FifoState *)handle)->need_stream;
}

double fifo_now(void *handle) { return ((FifoState *)handle)->now; }
i64 fifo_seq(void *handle) { return ((FifoState *)handle)->seq; }
i64 fifo_processed(void *handle)
{
    return ((FifoState *)handle)->processed;
}
i64 fifo_heap_len(void *handle)
{
    return ((FifoState *)handle)->heap_len;
}
i64 fifo_pool_len(void *handle)
{
    return ((FifoState *)handle)->pool_len;
}
i64 fifo_free_len(void *handle)
{
    return ((FifoState *)handle)->free_len;
}

void fifo_extract(void *handle,
                  double *h_time, i64 *h_seq, i64 *h_kind, i64 *h_a,
                  i64 *h_b,
                  i64 *p_conn, double *p_created, i64 *p_hop,
                  double *p_rem, i64 *p_free, i64 *q_next)
{
    FifoState *s = (FifoState *)handle;
    memcpy(h_time, s->h_time, (size_t)s->heap_len * sizeof(double));
    memcpy(h_seq, s->h_seq, (size_t)s->heap_len * sizeof(i64));
    memcpy(h_kind, s->h_kind, (size_t)s->heap_len * sizeof(i64));
    memcpy(h_a, s->h_a, (size_t)s->heap_len * sizeof(i64));
    memcpy(h_b, s->h_b, (size_t)s->heap_len * sizeof(i64));
    memcpy(p_conn, s->p_conn, (size_t)s->pool_len * sizeof(i64));
    memcpy(p_created, s->p_created,
           (size_t)s->pool_len * sizeof(double));
    memcpy(p_hop, s->p_hop, (size_t)s->pool_len * sizeof(i64));
    memcpy(p_rem, s->p_rem, (size_t)s->pool_len * sizeof(double));
    memcpy(p_free, s->p_free, (size_t)s->free_len * sizeof(i64));
    memcpy(q_next, s->q_next, (size_t)s->pool_len * sizeof(i64));
}

void fifo_release(void *handle)
{
    FifoState *s = (FifoState *)handle;
    if (!s) return;
    free(s->h_time); free(s->h_seq); free(s->h_kind);
    free(s->h_a); free(s->h_b);
    free(s->p_conn); free(s->p_created); free(s->p_hop);
    free(s->p_rem); free(s->p_free); free(s->q_next);
    free(s);
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off",
           "-fno-fast-math"]

_LOADED = False
_LIB: Optional[ctypes.CDLL] = None
_ERR: Optional[str] = None
_BUILD_SECONDS = 0.0
_FROM_CACHE = False


def _find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def compiler_available() -> bool:
    """A C compiler exists on PATH (cheap; does not build)."""
    return _find_compiler() is not None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CC_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parent / "_build"


def _ensure_built(cc: str) -> Path:
    """Compile (or reuse) the shared library; returns its path."""
    global _BUILD_SECONDS, _FROM_CACHE
    digest = hashlib.sha256(
        (_SOURCE + "\0" + cc + "\0" + " ".join(_CFLAGS))
        .encode()).hexdigest()[:16]
    name = f"repro_cext_{digest}.so"
    try:
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        probe = cache / f".probe-{os.getpid()}"
        probe.write_text("")
        probe.unlink()
    except OSError:
        cache = Path(tempfile.mkdtemp(prefix="repro-cext-"))
    target = cache / name
    if target.exists():
        _FROM_CACHE = True
        return target
    src = cache / f"repro_cext_{digest}.c"
    src.write_text(_SOURCE)
    tmp = cache / f".{name}.{os.getpid()}.tmp"
    t0 = _time.perf_counter()
    proc = subprocess.run([cc, *_CFLAGS, "-o", str(tmp), str(src),
                           "-lm"], capture_output=True, text=True)
    _BUILD_SECONDS = _time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"{cc} failed ({proc.returncode}): "
            f"{(proc.stderr or proc.stdout).strip()[:500]}")
    os.replace(tmp, target)  # atomic under concurrent builders
    return target


_I = ctypes.c_longlong
_D = ctypes.c_double
_P = ctypes.c_void_p


def _configure(lib: ctypes.CDLL) -> None:
    lib.fs_queue_batch.argtypes = [_P, _I, _I, _D, _P]
    lib.fs_queue_batch.restype = None
    lib.fs_loads_batch.argtypes = [_P, _I, _I, _D, _P]
    lib.fs_loads_batch.restype = None
    lib.ind_congestion_batch.argtypes = [_P, _I, _I, _P]
    lib.ind_congestion_batch.restype = None
    lib.fifo_enter.argtypes = (
        [_I, _I, _I, _D, _I, _D, _I]          # dims, horizon, now, seq
        + [_P] * 3                            # latency, mu_scale, cap
        + [_P] * 2                            # pos_flat, first_hop
        + [_P] * 3                            # gw_ptr, path_ptr/arr
        + [_P] * 3                            # serving, in_sys, epoch
        + [_P] * 2                            # st_last, st_integral
        + [_P] * 4                            # counts/arr/dep/drops
        + [_P] * 2                            # e2e delivered/delay
        + [_P] * 3                            # q_head, q_tail, q_next
        + [_P] * 3                            # scale, rng_vals, rng_idx
        + [_P] * 5 + [_I]                     # heap columns + len
        + [_P] * 4 + [_I]                     # pool columns + len
        + [_P, _I])                           # free stack + len
    lib.fifo_enter.restype = _P
    for fn in ("fifo_run", "fifo_need_stream", "fifo_seq",
               "fifo_processed", "fifo_heap_len", "fifo_pool_len",
               "fifo_free_len"):
        getattr(lib, fn).argtypes = [_P]
        getattr(lib, fn).restype = _I
    lib.fifo_now.argtypes = [_P]
    lib.fifo_now.restype = _D
    lib.fifo_extract.argtypes = [_P] + [_P] * 11
    lib.fifo_extract.restype = None
    lib.fifo_release.argtypes = [_P]
    lib.fifo_release.restype = None


def load() -> Optional[ctypes.CDLL]:
    """The compiled library, building it on first call; None when no
    compiler exists or the build failed (see :func:`load_error`)."""
    global _LOADED, _LIB, _ERR
    if _LOADED:
        return _LIB
    _LOADED = True
    cc = _find_compiler()
    if cc is None:
        _ERR = "no C compiler (cc/gcc/clang) on PATH"
        return None
    try:
        lib = ctypes.CDLL(str(_ensure_built(cc)))
        _configure(lib)
        _LIB = lib
    except Exception as exc:  # loud via load_error(), never raises
        _ERR = f"{type(exc).__name__}: {exc}"
    return _LIB


def load_error() -> Optional[str]:
    """Why :func:`load` returned None (None when it succeeded)."""
    return _ERR


def build_seconds() -> float:
    """Wall time of the actual C compilation (0.0 on a cache hit)."""
    return _BUILD_SECONDS


def built_from_cache() -> bool:
    return _FROM_CACHE


# ------------------------------------------------------------------
# Fair Share kernel wrappers (validated, numpy in / numpy out)
# ------------------------------------------------------------------
def fs_queue_batch(rates: np.ndarray, mu: float,
                   out: np.ndarray) -> Optional[np.ndarray]:
    lib = load()
    if lib is None:
        return None
    r = np.ascontiguousarray(rates, dtype=np.float64)
    m, n = r.shape
    lib.fs_queue_batch(r.ctypes.data, m, n, float(mu),
                       out.ctypes.data)
    return out


def fs_loads_batch(sorted_rates: np.ndarray, mu: float,
                   out: np.ndarray) -> Optional[np.ndarray]:
    lib = load()
    if lib is None:
        return None
    r = np.ascontiguousarray(sorted_rates, dtype=np.float64)
    m, n = r.shape
    lib.fs_loads_batch(r.ctypes.data, m, n, float(mu),
                       out.ctypes.data)
    return out


def ind_congestion_batch(queues: np.ndarray,
                         out: np.ndarray) -> Optional[np.ndarray]:
    lib = load()
    if lib is None:
        return None
    q = np.ascontiguousarray(queues, dtype=np.float64)
    m, n = q.shape
    lib.ind_congestion_batch(q.ctypes.data, m, n, out.ctypes.data)
    return out
