"""Pluggable array backends and compiled hot-path kernels.

The batch engine is written against an array *namespace* ``xp`` —
numpy by default — plus an optional compiled-kernel tier for the two
hot paths that dominate profiles: the FIFO event loop in
:mod:`repro.simulation.kernel` and the Fair Share sorted prefix-sum
queue laws in :mod:`repro.core.fairshare` / :mod:`repro.core.signals`.
This package is the single place both axes are resolved:

* :func:`resolve` — map a backend name (or the ``REPRO_BACKEND``
  environment variable) to a :class:`Backend`.  Unknown or unavailable
  names raise a loud :class:`~repro.errors.CLIError` listing what *is*
  available, never a silent numpy fallback.
* :func:`use` / :func:`using` / :func:`active` — process-wide backend
  activation (``using`` is the scoped context-manager form).  The
  default is the plain numpy backend, under which every code path is
  bit-identical to the pre-backend engine.
* :func:`fs_kernels_active` — the switch :func:`~repro.core.math_utils.
  pick_kernel` consults before routing ``method="auto"`` to the
  compiled Fair Share kernels.
* :func:`stub_namespace` — a numpy-masquerading namespace that counts
  attribute traffic, so the test suite can prove the ``xp`` seam is
  really threaded through without needing a GPU.

Backend names
-------------

=============  ============================================================
``numpy``      plain numpy, pure-python kernels (always available; default)
``compiled``   best compiled tier with graceful fallback:
               numba ``@njit`` > runtime-compiled C extension > pure python
``numba``      force the numba tier (loud error when numba is absent)
``cext``       force the C-extension tier (loud error when no C compiler)
``cupy``       cupy array namespace (probed; loud error when absent)
``jax``        ``jax.numpy`` namespace (probed; loud error when absent)
``stub``       numpy-masquerade test namespace (always available)
=============  ============================================================

The compiled tiers never change results: every kernel is proven
bit-identical (same RNG bitstream, same float operation order) to the
pure-python/numpy engines by ``tests/integration/
test_kernel_equivalence.py`` and the ``compiled-equivalence`` fuzz
oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..errors import CLIError

__all__ = [
    "Backend", "BACKEND_NAMES", "available_backends", "resolve",
    "use", "using", "active", "reset", "fs_kernels_active",
    "stub_namespace", "StubNamespace",
]

#: Every backend name :func:`resolve` understands, in listing order.
BACKEND_NAMES = ("numpy", "compiled", "numba", "cext", "cupy", "jax",
                 "stub")

#: Install hint appended to unavailable-backend errors.
_INSTALL_HINT = ("install the optional JIT tier with "
                 "'pip install repro[numba]' for the numba backend, "
                 "or ensure a C compiler (cc/gcc/clang) is on PATH "
                 "for the cext backend")


@dataclass(frozen=True)
class Backend:
    """One resolved backend: an array namespace plus a kernel tier.

    Attributes:
        name: the resolved backend name (one of :data:`BACKEND_NAMES`).
        xp: the array namespace (numpy, cupy, ``jax.numpy``, or the
            stub masquerade).  Everything threaded through the ``xp``
            seam calls into this object.
        kernel_tier: which compiled-kernel implementation serves the
            hot paths — ``"numba"``, ``"cext"``, or ``"python"``
            (meaning: the existing pure-python/numpy kernels).
        description: one-line summary for ``selftest`` / ``--backend``
            listings.
    """

    name: str
    xp: Any
    kernel_tier: str = "python"
    description: str = ""

    @property
    def is_numpy(self) -> bool:
        """True when ``xp`` is the real numpy module (the compiled
        kernel tiers require host numpy arrays)."""
        return self.xp is np

    @property
    def compiled(self) -> bool:
        """True when a compiled kernel tier (numba or cext) is live."""
        return self.kernel_tier in ("numba", "cext")


class StubNamespace:
    """A numpy masquerade for exercising the ``xp`` seam without a GPU.

    Every attribute lookup is delegated to numpy and counted, so a
    test can assert both that results are bit-identical to the numpy
    path *and* that the pipeline really routed its array calls through
    the namespace object it was handed (``calls`` > 0) rather than a
    hard-coded ``np``.
    """

    def __init__(self):
        self.calls = 0
        self.attributes_used: set = set()

    def __getattr__(self, name: str):
        value = getattr(np, name)
        # Plain instance-dict writes; __getattr__ only fires on misses.
        self.calls += 1
        self.attributes_used.add(name)
        return value

    def __repr__(self):
        return f"StubNamespace(calls={self.calls})"


def stub_namespace() -> StubNamespace:
    """A fresh counting numpy-masquerade namespace."""
    return StubNamespace()


def _probe_module(name: str):
    """Import ``name`` if present; None when absent or broken."""
    try:
        import importlib
        return importlib.import_module(name)
    except Exception:
        return None


def _numba_available() -> bool:
    import importlib.util
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def _cext_possible() -> bool:
    """Cheap probe: a C compiler on PATH (the build itself is lazy)."""
    from . import _cext
    return _cext.compiler_available()


def available_backends() -> list:
    """Names from :data:`BACKEND_NAMES` usable in this environment."""
    names = ["numpy", "compiled", "stub"]  # never unavailable
    if _numba_available():
        names.insert(2, "numba")
    if _cext_possible():
        names.insert(names.index("stub"), "cext")
    if _probe_module("cupy") is not None:
        names.insert(names.index("stub"), "cupy")
    if _probe_module("jax") is not None:
        names.insert(names.index("stub"), "jax")
    return names


def _unavailable(name: str, why: str) -> CLIError:
    return CLIError(
        f"backend {name!r} is not available in this environment "
        f"({why}); available backends: "
        f"{', '.join(available_backends())} — {_INSTALL_HINT}")


def resolve(name: Optional[str] = None) -> Backend:
    """Resolve a backend name (or ``REPRO_BACKEND``) to a :class:`Backend`.

    Args:
        name: one of :data:`BACKEND_NAMES`, or None to consult the
            ``REPRO_BACKEND`` environment variable (default
            ``"numpy"`` when that is unset or empty).

    Raises:
        CLIError: unknown name, or a real dependency gap — ``numba``
            without numba installed, ``cext`` without a C compiler,
            ``cupy``/``jax`` without the module.  The message lists
            the backends that *are* available plus the install hint;
            nothing ever silently degrades to numpy.

    ``"compiled"`` is the one gracefully-degrading name: it resolves
    to the best tier present (numba > cext > pure python) because its
    contract is "same bits, faster when possible", not "a specific
    dependency".
    """
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
    name = str(name).strip().lower()
    if name not in BACKEND_NAMES:
        raise CLIError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends())} — {_INSTALL_HINT}")

    if name == "numpy":
        return Backend("numpy", np, "python",
                       "plain numpy (pure-python kernels)")
    if name == "stub":
        return Backend("stub", stub_namespace(), "python",
                       "numpy-masquerade test namespace")
    if name == "compiled":
        from . import compiled
        tier = compiled.tier()
        return Backend("compiled", np, tier,
                       f"best compiled tier ({tier})")
    if name == "numba":
        if not _numba_available():
            raise _unavailable("numba", "the numba package is not "
                               "installed")
        from . import compiled
        if not compiled.numba_tier_ready():
            raise _unavailable("numba", "numba is installed but its "
                               "kernels failed to compile")
        return Backend("numba", np, "numba", "numba @njit kernels")
    if name == "cext":
        from . import _cext
        if not _cext.compiler_available():
            raise _unavailable("cext", "no C compiler (cc/gcc/clang) "
                               "on PATH")
        if _cext.load() is None:
            raise _unavailable("cext",
                               f"C build failed: {_cext.load_error()}")
        return Backend("cext", np, "cext",
                       "runtime-compiled C kernels")
    if name == "cupy":
        mod = _probe_module("cupy")
        if mod is None:
            raise _unavailable("cupy", "the cupy package is not "
                               "installed")
        return Backend("cupy", mod, "python", "cupy array namespace")
    # name == "jax"
    mod = _probe_module("jax")
    if mod is None:
        raise _unavailable("jax", "the jax package is not installed")
    import jax.numpy as jnp
    return Backend("jax", jnp, "python", "jax.numpy array namespace")


# ---------------------------------------------------------------------
# process-wide activation
# ---------------------------------------------------------------------
_ACTIVE: Optional[Backend] = None
_ENV_DEFAULT: Optional[Backend] = None
_ENV_SEEN: Optional[str] = None


def _default() -> Backend:
    """The ambient backend when none was activated explicitly:
    ``REPRO_BACKEND`` if set (resolved once, loudly), else numpy."""
    global _ENV_DEFAULT, _ENV_SEEN
    env = os.environ.get("REPRO_BACKEND", "").strip()
    if _ENV_DEFAULT is None or env != _ENV_SEEN:
        _ENV_SEEN = env
        _ENV_DEFAULT = resolve(env or "numpy")
    return _ENV_DEFAULT


def active() -> Backend:
    """The backend currently in force (explicit > env > numpy)."""
    return _ACTIVE if _ACTIVE is not None else _default()


def use(backend) -> Backend:
    """Activate a backend process-wide; returns the resolved backend.

    Accepts a :class:`Backend` or a name (``None`` re-reads the
    environment).  ``use("numpy")`` restores the default behaviour.
    """
    global _ACTIVE
    _ACTIVE = backend if isinstance(backend, Backend) else resolve(backend)
    return _ACTIVE


def reset() -> None:
    """Drop any explicit activation and forget the cached env default."""
    global _ACTIVE, _ENV_DEFAULT, _ENV_SEEN
    _ACTIVE = None
    _ENV_DEFAULT = None
    _ENV_SEEN = None


@contextmanager
def using(backend):
    """Scoped :func:`use`: activate for the ``with`` block, restore
    the previous activation after."""
    global _ACTIVE
    previous = _ACTIVE
    use(backend)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def fs_kernels_active() -> bool:
    """Should ``pick_kernel(method="auto")`` route the large-``n``
    Fair Share paths to the compiled kernels?

    True only when the active backend both carries a live compiled
    tier *and* uses real numpy arrays (the C/numba kernels read host
    memory).  Under the default numpy backend this is False, so the
    pre-backend behaviour is untouched.
    """
    backend = active()
    if not (backend.compiled and backend.is_numpy):
        return False
    from . import compiled
    return compiled.fs_available()
