"""Compiled-kernel tier selection and dispatch.

One question, answered once per process: which implementation serves
the compiled hot paths?  ``numba`` (``@njit``-wrapped loop twins from
:mod:`repro.backends._fs_python`) when numba is importable and its
kernels compile; otherwise the runtime-built C extension
(:mod:`repro.backends._cext`) when a C compiler exists; otherwise
``python``, meaning callers keep using the existing pure-python/numpy
kernels unchanged.  The FIFO event loop is served by the C extension
only — numba cannot drive the heap/pool/RNG trampoline — so
:func:`fifo_lib` is independent of the Fair Share tier.

Observability: :data:`METRICS` carries per-phase
:class:`~repro.observability.metrics.Timer` spans — ``compile.cext``
(actual C build time, zero on a cache hit), ``compile.numba`` (JIT
warmup of the Fair Share twins), and ``run.fifo`` (steady-state time
inside the compiled event loop) — so ``BENCH_compiled.json`` can
separate warmup from throughput.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import _cext, _fs_python

__all__ = ["tier", "fs_available", "fifo_lib", "metrics",
           "numba_tier_ready", "fs_queue_batch", "fs_loads_batch",
           "ind_congestion_batch", "warmup"]

_TIER: Optional[str] = None
_NUMBA_KERNELS = None
_METRICS = None


def metrics():
    """The module's :class:`~repro.observability.metrics.
    MetricsRegistry` (created lazily to keep imports cycle-free)."""
    global _METRICS
    if _METRICS is None:
        from ..observability.metrics import MetricsRegistry
        _METRICS = MetricsRegistry()
    return _METRICS


def _try_numba():
    """Compile the numba tier; returns the jitted kernels or None."""
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS
    try:
        import numba
    except Exception:
        return None
    try:
        with metrics().timer("compile.numba").time():
            jit = numba.njit(cache=False, fastmath=False)
            kernels = {
                "fs_queue_batch": jit(_fs_python.fs_queue_batch),
                "fs_loads_batch": jit(_fs_python.fs_loads_batch),
                "ind_congestion_batch":
                    jit(_fs_python.ind_congestion_batch),
            }
            # Force compilation now so "compile" time is not smeared
            # into the first measured run.
            probe = np.array([[0.25, 0.5, 0.125]])
            out = np.empty_like(probe)
            kernels["fs_queue_batch"](probe, 1.0, out)
            kernels["fs_loads_batch"](np.sort(probe, axis=1), 1.0, out)
            kernels["ind_congestion_batch"](probe, out)
    except Exception:
        return None
    _NUMBA_KERNELS = kernels
    return kernels


def numba_tier_ready() -> bool:
    """numba is importable *and* the kernels actually compiled."""
    return _try_numba() is not None


def tier() -> str:
    """The best live tier: ``"numba"`` > ``"cext"`` > ``"python"``."""
    global _TIER
    if _TIER is None:
        if _try_numba() is not None:
            _TIER = "numba"
        elif _cext.load() is not None:
            _TIER = "cext"
        else:
            _TIER = "python"
    return _TIER


def fs_available() -> bool:
    """A compiled Fair Share kernel tier is live."""
    return tier() != "python"


def fifo_lib():
    """The C library serving the FIFO event loop, or None.

    Independent of :func:`tier`: even under the numba tier the event
    loop runs through the C extension (numba has no story for the
    heap/pool/RNG resume trampoline), so this is simply "the cext
    built" — with the pure-python ``_run_fifo`` as the graceful
    fallback when it did not.
    """
    return _cext.load()


def warmup() -> str:
    """Force tier resolution (and any compilation); returns the tier."""
    t = tier()
    if _cext.load() is not None and not _cext.built_from_cache():
        reg = metrics()
        timer = reg.timer("compile.cext")
        if timer.count == 0:
            timer.add(_cext.build_seconds())
    return t


# ------------------------------------------------------------------
# Fair Share kernel dispatch (numpy in / numpy out; None = no tier)
# ------------------------------------------------------------------
def fs_queue_batch(rates: np.ndarray,
                   mu: float) -> Optional[np.ndarray]:
    """Compiled Fair Share queue lengths, or None when no tier is
    live (caller falls back to the numpy ``sorted`` pipeline)."""
    r = np.ascontiguousarray(rates, dtype=np.float64)
    out = np.empty_like(r)
    kernels = _try_numba()
    if kernels is not None:
        return kernels["fs_queue_batch"](r, float(mu), out)
    return _cext.fs_queue_batch(r, float(mu), out)


def fs_loads_batch(sorted_rates: np.ndarray,
                   mu: float) -> Optional[np.ndarray]:
    """Compiled cumulative loads over pre-sorted rows, or None."""
    r = np.ascontiguousarray(sorted_rates, dtype=np.float64)
    out = np.empty_like(r)
    kernels = _try_numba()
    if kernels is not None:
        return kernels["fs_loads_batch"](r, float(mu), out)
    return _cext.fs_loads_batch(r, float(mu), out)


def ind_congestion_batch(queues: np.ndarray) -> Optional[np.ndarray]:
    """Compiled individual-congestion prefix sums, or None."""
    q = np.ascontiguousarray(queues, dtype=np.float64)
    out = np.empty_like(q)
    kernels = _try_numba()
    if kernels is not None:
        return kernels["ind_congestion_batch"](q, out)
    return _cext.ind_congestion_batch(q, out)
