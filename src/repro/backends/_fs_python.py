"""Loop-form twins of the Fair Share sorted prefix-sum kernels.

These functions replicate, scalar operation for scalar operation, the
numpy ``method="sorted"`` pipelines in :mod:`repro.core.fairshare`
(:func:`~repro.core.fairshare.FairShare.queue_lengths_batch` and
:func:`~repro.core.fairshare.cumulative_loads_batch`) and
:mod:`repro.core.signals` (:func:`~repro.core.signals.
individual_congestion_batch`).  They exist for two reasons:

* they are written in the numba-``@njit``-compatible subset (plain
  loops, ``np.argsort(kind="mergesort")``, no fancy indexing), so
  :mod:`repro.backends.compiled` can wrap them with ``numba.njit``
  when numba is installed — that wrapped object *is* the numba kernel
  tier; and
* un-jitted they are executable reference implementations the unit
  tests can diff against both the numpy pipeline and the C extension
  without any optional dependency installed.

Bit-identity notes (shared with the C twin in ``_cext.py``):

* ``np.argsort(kind="mergesort")`` and ``kind="stable"`` produce the
  same permutation — both are stable, and the permutation of a stable
  ascending sort is unique.
* the numpy pipeline's ``np.cumsum`` is a sequential left-to-right
  accumulation, so a running-scalar ``prefix += x`` reproduces it
  exactly (numpy's *pairwise* ``.sum()`` is never used on these
  paths).
* masked accumulation (``np.where(finite, shares, 0.0)`` feeding
  ``cumsum``) is mirrored by adding literal ``0.0`` in the masked
  branch; the accumulator is never ``-0.0`` (shares are quotients of
  a nonnegative difference by a positive count), so ``acc + 0.0``
  is bitwise ``acc``.

Every function takes a preallocated ``out`` and returns it, so the
jitted and plain versions share a calling convention with the C tier.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fs_queue_batch", "fs_loads_batch", "ind_congestion_batch"]


def fs_queue_batch(rates, mu, out):
    """Fair Share queue lengths, row by row, original order.

    Twin of ``FairShare.queue_lengths_batch(..., method="sorted")``:
    stable-sort each row, accumulate cumulative loads and marginal
    queue shares along the sorted ranks, scatter back through the
    sort permutation.  Rates must be nonnegative (the caller
    validates, matching the numpy path's ``g()`` domain check).
    """
    m, n = rates.shape
    for row in range(m):
        rr = rates[row]
        order = np.argsort(rr, kind="mergesort")
        prefix = 0.0
        g_prev = 0.0
        acc = 0.0
        for k in range(n):
            j = order[k]
            sr = rr[j]
            prefix += sr
            sigma = (prefix + sr * float(n - 1 - k)) / mu
            if sigma < 1.0:
                gs = sigma / (1.0 - sigma)
            else:
                gs = np.inf
            if np.isfinite(gs):
                acc += (gs - g_prev) / float(n - k)
                q = acc
            else:
                acc += 0.0  # the masked cumsum adds literal zero here
                q = np.inf
            if sr == 0.0:
                q = 0.0
            out[row, j] = q
            g_prev = gs
    return out


def fs_loads_batch(sorted_rates, mu, out):
    """Cumulative loads over rows already sorted ascending.

    Twin of ``cumulative_loads_batch(..., method="sorted")``'s
    ``_sorted_loads``: ``(cumsum + r_(k) * (n - 1 - k)) / mu`` along
    each row, returned in sorted-rank order (not scattered back).
    """
    m, n = sorted_rates.shape
    for row in range(m):
        prefix = 0.0
        for k in range(n):
            sr = sorted_rates[row, k]
            prefix += sr
            out[row, k] = (prefix + sr * float(n - 1 - k)) / mu
    return out


def ind_congestion_batch(queues, out):
    """Individual congestion via the sorted prefix-sum identity.

    Twin of ``individual_congestion_batch(..., method="sorted")``:
    ``c_i = sum_j min(q_i, q_j)`` evaluated as ``prefix + q_(k) *
    (n - 1 - k)`` over stable-sorted queues, with infinite queues
    pinned to ``inf`` and results scattered back to original order.
    """
    m, n = queues.shape
    for row in range(m):
        qq = queues[row]
        order = np.argsort(qq, kind="mergesort")
        prefix = 0.0
        for k in range(n):
            j = order[k]
            v = qq[j]
            prefix += v
            if np.isinf(v):
                c = np.inf
            else:
                c = prefix + v * float(n - 1 - k)
            out[row, j] = c
    return out
