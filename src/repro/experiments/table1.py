"""T1 — the paper's Table 1: Fair Share priority decomposition.

Regenerates the substream table for four connections with increasing
rates, checks the structural facts the table illustrates (rows sum to
the rates, column entries are the sorted-rate increments, triangular
support), and appends the Fair Share queue lengths those substreams
induce.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.fairshare import FairShare, priority_decomposition
from ..core.math_utils import sorted_order
from .base import ExperimentResult

__all__ = ["run_table1"]

_CLASS_LABELS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def run_table1(rates: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
               mu: float = 1.5) -> ExperimentResult:
    """Reproduce Table 1 for ``rates`` (any length up to 26)."""
    r = np.asarray(rates, dtype=float)
    n = r.shape[0]
    decomp = priority_decomposition(r)
    order = sorted_order(r)
    sorted_rates = r[order]
    labels = [_CLASS_LABELS[k] for k in range(n)]

    columns = ("connection", "rate") + tuple(labels) + ("queue_Q_i",)
    queues = FairShare().queue_lengths(r, mu)
    rows = []
    for i in range(n):
        rows.append((f"c{i + 1}", float(r[i]))
                    + tuple(float(decomp[i, k]) for k in range(n))
                    + (float(queues[i]),))

    increments = np.concatenate(([sorted_rates[0]],
                                 np.diff(sorted_rates)))
    row_sums_ok = bool(np.allclose(decomp.sum(axis=1), r))
    support_ok = True
    rank = np.empty(n, dtype=int)
    rank[order] = np.arange(n)
    for i in range(n):
        for k in range(n):
            inside = k <= rank[i]
            if inside and not np.isclose(decomp[i, k], increments[k]):
                support_ok = False
            if not inside and decomp[i, k] > 1e-12:
                support_ok = False
    conservation_ok = bool(np.isclose(
        float(np.sum(queues)),
        float(np.sum(r)) / mu / (1.0 - float(np.sum(r)) / mu)))

    return ExperimentResult(
        experiment_id="T1",
        title="Fair Share priority decomposition (paper Table 1)",
        columns=columns,
        rows=rows,
        checks={
            "rows_sum_to_rates": row_sums_ok,
            "entries_are_sorted_rate_increments_on_triangle": support_ok,
            "queues_conserve_total": conservation_ok,
        },
        notes=[
            "class A is the highest priority; connection with the k-th "
            "smallest rate participates in classes A..k only",
        ],
    )
