"""F1 — Theorem 1: time-scale invariance of the steady state.

A TSI rate-adjustment rule must produce steady states that (a) scale
linearly with the server rates, ``r_ss(c mu) = c r_ss(mu)``, and (b) do
not depend on line latencies.  We verify both by running the dynamics
to convergence on scaled / re-latencied copies of two topologies, and
contrast with a *non*-TSI rule (``f = (1-b) eta - beta b r``), whose
steady state fails the scaling test exactly as the paper predicts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dynamics import FlowControlSystem
from ..core.fairshare import FairShare
from ..core.math_utils import sup_norm
from ..core.ratecontrol import DecbitRateRule, ProportionalTargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import Network, parking_lot, single_gateway
from .base import ExperimentResult

__all__ = ["run_f1_tsi"]


def _steady(network: Network, rule, style=FeedbackStyle.INDIVIDUAL,
            max_steps: int = 60000) -> np.ndarray:
    system = FlowControlSystem(network, FairShare(), LinearSaturating(),
                               rule, style=style)
    start = np.full(network.num_connections,
                    0.05 * min(network.mu(g)
                               for g in network.gateway_names))
    return system.solve(start, max_steps=max_steps, tol=1e-11)


def run_f1_tsi(scales: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
               latencies: Sequence[float] = (0.0, 1.0, 25.0),
               eta: float = 0.5, beta: float = 0.5) -> ExperimentResult:
    """Scale and latency sweeps on two topologies; see module doc.

    The probe rule is ``f = eta r (beta - b)``: its *gain* is
    dimensionless (unlike ``f = eta (beta - b)``, whose absolute step
    makes convergence scale-dependent even though the steady state is
    TSI either way).
    """
    rule = ProportionalTargetRule(eta=eta, beta=beta)
    non_tsi = DecbitRateRule(eta=0.05, beta=0.5)
    topologies = {
        "single-gateway(3)": single_gateway(3, mu=1.0),
        "parking-lot(3)": parking_lot(3, mu=1.0),
    }
    rows = []
    worst_scale_dev = 0.0
    worst_latency_dev = 0.0
    for name, base_net in topologies.items():
        reference = _steady(base_net, rule)
        for c in scales:
            scaled = _steady(base_net.scaled(c), rule)
            deviation = sup_norm(scaled / c, reference) / max(
                1e-12, float(np.max(reference)))
            worst_scale_dev = max(worst_scale_dev, deviation)
            rows.append((name, "scale", float(c), deviation))
        for lat in latencies:
            lat_net = base_net.with_latencies(
                {g: lat for g in base_net.gateway_names})
            shifted = _steady(lat_net, rule)
            deviation = sup_norm(shifted, reference) / max(
                1e-12, float(np.max(reference)))
            worst_latency_dev = max(worst_latency_dev, deviation)
            rows.append((name, "latency", float(lat), deviation))

    # The non-TSI contrast: scaling mu by 10 should NOT scale the rates.
    contrast_net = single_gateway(3, mu=1.0)
    base_rates = _steady(contrast_net, non_tsi)
    scaled_rates = _steady(contrast_net.scaled(10.0), non_tsi)
    non_tsi_deviation = sup_norm(scaled_rates / 10.0, base_rates) / max(
        1e-12, float(np.max(base_rates)))
    rows.append(("single-gateway(3) [non-TSI rule]", "scale", 10.0,
                 non_tsi_deviation))

    return ExperimentResult(
        experiment_id="F1",
        title="Theorem 1: time-scale invariance of steady states",
        columns=("topology", "sweep", "value", "relative_deviation"),
        rows=rows,
        checks={
            "steady_state_scales_with_mu": worst_scale_dev < 1e-5,
            "steady_state_ignores_latency": worst_latency_dev < 1e-5,
            "non_tsi_rule_fails_scaling": non_tsi_deviation > 0.1,
        },
        notes=[
            "deviation is sup-norm distance to the unscaled reference, "
            "relative to the largest reference rate",
        ],
    )
