"""F12 — substrate validation: the packet simulator vs the analytic
model, open- and closed-loop.

The analytic queue laws (FIFO's ``rho_i/(1-rho)``, Fair Share's
substream recursion, preemptive priority's ``g(sigma_k)`` differences)
must match time-averaged occupancies of the event-driven M/M/1
simulation; and the closed feedback loop — rate rules fed *measured*,
windowed, delayed signals — must still settle near the model's fair
point, supporting the paper's "instant equilibration" idealisation.
"""

from __future__ import annotations

import numpy as np

from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.ratecontrol import TargetRule
from ..core.steadystate import fair_steady_state
from ..core.topology import single_gateway
from ..simulation.closed_loop import run_closed_loop
from ..simulation.validation import validate_single_gateway
from .base import ExperimentResult

__all__ = ["run_f12_sim_validation"]


def run_f12_sim_validation(rates=(0.1, 0.2, 0.25, 0.15), mu: float = 1.0,
                           horizon: float = 30000.0,
                           warmup: float = 3000.0,
                           loop_steps: int = 50,
                           loop_interval: float = 400.0,
                           seed: int = 29,
                           tolerance: float = 0.12,
                           loop_tolerance: float = 0.15,
                           engine: str = "auto") -> ExperimentResult:
    """Open-loop queue-law validation + closed-loop convergence.

    ``tolerance`` bounds the worst per-connection relative error of the
    open-loop queue-law comparison and should be widened when running
    with a reduced ``horizon`` (the estimator error shrinks like
    ``1/sqrt(horizon)``).

    ``engine`` selects the simulation engine for both the open-loop
    validations and the closed loop (``"auto"``/``"fast"``/``"legacy"``
    — trajectories are bit-identical either way, only the wall time
    differs; the kernel benchmark times this experiment end to end).
    """
    rows = []
    worst = {}
    for kind in ("fifo", "fair-share", "fixed-priority"):
        result = validate_single_gateway(rates, mu, kind, horizon=horizon,
                                         warmup=warmup, seed=seed,
                                         engine=engine)
        worst[kind] = result.worst_relative_error
        for i in range(len(rates)):
            rows.append((kind, i, float(result.rates[i]),
                         float(result.expected[i]),
                         float(result.measured[i]),
                         float(result.relative_errors[i])))

    # Closed loop: 3 connections, individual feedback, Fair Share.
    beta, eta = 0.5, 0.05
    signal = LinearSaturating()
    network = single_gateway(3, mu=mu)
    fair = fair_steady_state(network, signal.steady_state_utilisation(beta))
    loop = run_closed_loop(network, TargetRule(eta=eta, beta=beta), signal,
                           style=FeedbackStyle.INDIVIDUAL,
                           discipline_kind="fair-share",
                           initial_rates=[0.05, 0.2, 0.4],
                           control_interval=loop_interval,
                           n_steps=loop_steps, seed=seed, engine=engine)
    settled = loop.tail_mean_rates(max(5, loop_steps // 5))
    loop_gap = float(np.max(np.abs(settled - fair))) / float(np.max(fair))
    rows.append(("closed-loop", -1, float("nan"), float(fair[0]),
                 float(np.mean(settled)), loop_gap))

    return ExperimentResult(
        experiment_id="F12",
        title="Substrate validation: packet DES vs analytic queue laws; "
              "closed loop reaches the fair point",
        columns=("discipline", "connection", "rate", "expected_Q",
                 "measured_Q", "relative_error"),
        rows=rows,
        checks={
            "fifo_law_within_tolerance": worst["fifo"] < tolerance,
            "fair_share_law_within_tolerance":
                worst["fair-share"] < tolerance,
            "priority_law_within_tolerance":
                worst["fixed-priority"] < tolerance,
            "closed_loop_settles_near_fair_point":
                loop_gap < loop_tolerance,
        },
        notes=[
            f"worst open-loop relative errors: { {k: round(v, 4) for k, v in worst.items()} }",
            "closed-loop row: expected_Q column holds the fair rate, "
            "measured_Q the mean settled rate",
        ],
    )
