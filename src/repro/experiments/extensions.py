"""Extension experiments (X1-X4): beyond the paper's published results.

The paper closes Section 2.5 with *"the lack of asynchrony in our model
certainly affects the stability results, and we are currently
investigating the extent of this effect"* — X1 and X2 carry out that
investigation.  X3 exercises the weighted generalisation of Fair Share,
and X4 ablates the Fair Share gateway's rate-knowledge assumption in
the packet simulator (oracle rates vs. rates the gateway measures
itself).

These are *extensions*: they are not artifacts of the 1990 paper, and
EXPERIMENTS.md lists them separately.
"""

from __future__ import annotations

import numpy as np

from ..core.asynchronous import (AsynchronousRunner, BernoulliSchedule,
                                 RoundRobinSchedule)
from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairness import max_min_allocation
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.fairness import jain_index
from ..core.ratecontrol import BinaryAimdRule, TargetRule
from ..simulation.closed_loop import run_closed_loop
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.steadystate import fair_steady_state
from ..core.topology import single_gateway
from ..core.weighted import (WeightedFairShare,
                             weighted_max_min_allocation,
                             weighted_reservation_floor)
from ..simulation.validation import validate_single_gateway
from ..simulation.network_sim import NetworkSimulation
from .base import ExperimentResult

__all__ = ["run_x1_asynchrony", "run_x2_feedback_delay",
           "run_x3_weighted_fairness", "run_x4_thinning_ablation",
           "run_x5_implicit_feedback"]


def run_x1_asynchrony(eta: float = 0.3, beta: float = 0.5,
                      n_values=(4, 8, 12, 20),
                      seed: int = 31) -> ExperimentResult:
    """X1 — does asynchrony help or hurt the aggregate instability?

    The synchronous aggregate example loses stability at
    ``N = 2 / eta`` (F5).  Re-run the same systems under sequential
    (round-robin) and Bernoulli(1/2) schedules: Gauss–Seidel-style
    updating sees the others' corrections immediately and converges
    far beyond the synchronous threshold — the model's synchrony
    assumption is *pessimistic* here.
    """
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    rule = TargetRule(eta=eta, beta=beta)
    rng = np.random.default_rng(seed)
    threshold = 2.0 / eta

    rows = []
    round_robin_all_stable = True
    sync_matches_f5 = True
    for n in n_values:
        network = single_gateway(n, mu=1.0)
        system = FlowControlSystem(network, Fifo(), signal, rule,
                                   style=FeedbackStyle.AGGREGATE)
        fair = fair_steady_state(network, rho_ss)
        start = np.clip(fair * (1 + 1e-3 * rng.standard_normal(n)),
                        0.0, None)
        outcomes = {}
        sync = system.run(start, max_steps=6000, tol=1e-10)
        outcomes["synchronous"] = sync.outcome
        budget = 6000 * n  # same number of sweeps as the sync run
        rr = AsynchronousRunner(system, RoundRobinSchedule()).run(
            start, max_steps=budget, tol=1e-10)
        outcomes["round-robin"] = rr.outcome
        bern = AsynchronousRunner(
            system, BernoulliSchedule(0.5, seed=seed + n)).run(
            start, max_steps=12000, tol=1e-10)
        outcomes["bernoulli(1/2)"] = bern.outcome
        for name, outcome in outcomes.items():
            rows.append((n, name, outcome.value,
                         outcome is Outcome.CONVERGED))
        round_robin_all_stable &= rr.outcome is Outcome.CONVERGED
        sync_stable = sync.outcome is Outcome.CONVERGED
        sync_matches_f5 &= (sync_stable == (n < threshold))

    return ExperimentResult(
        experiment_id="X1",
        title="Extension: asynchronous schedules vs the synchronous "
              "instability (Section 2.5's open question)",
        columns=("N", "schedule", "outcome", "converged"),
        rows=rows,
        checks={
            "synchronous_threshold_as_in_F5": sync_matches_f5,
            "round_robin_converges_beyond_threshold":
                round_robin_all_stable,
        },
        notes=[f"synchronous theory: unstable for N > {threshold:.1f}; "
               f"sequential updating removes the overshoot entirely"],
    )


def run_x2_feedback_delay(beta: float = 0.5, n: int = 4,
                          gains=(0.05, 0.15, 0.3, 0.6),
                          delays=(0, 1, 2, 4, 8),
                          seed: int = 37) -> ExperimentResult:
    """X2 — stale congestion signals shrink the stable gain.

    Sources react to signals computed from rates ``tau`` steps old.
    Linearising the shared-gateway aggregate loop gives
    ``S_{t+1} = S_t - a (S_{t-tau} - S*)`` with loop gain
    ``a = eta N``; the classical delay criterion is stability iff
    ``a < 2 sin(pi / (2 (2 tau + 1)))`` — so the tolerable gain falls
    roughly like ``1/tau``.  The model's delay-free assumption is
    *optimistic* here (the mirror image of X1).
    """
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    rng = np.random.default_rng(seed)
    network = single_gateway(n, mu=1.0)
    fair = fair_steady_state(network, rho_ss)

    rows = []
    matches = 0
    total = 0
    monotone_ok = True
    prev_stable_count = None
    for tau in delays:
        stable_count = 0
        for eta in gains:
            system = FlowControlSystem(network, Fifo(), signal,
                                       TargetRule(eta=eta, beta=beta),
                                       style=FeedbackStyle.AGGREGATE)
            start = np.clip(
                fair * (1 + 1e-3 * rng.standard_normal(n)), 0.0, None)
            runner = AsynchronousRunner(system, signal_delay=tau)
            traj = runner.run(start, max_steps=20000, tol=1e-9)
            converged = traj.outcome is Outcome.CONVERGED
            gain = eta * n
            predicted = gain < 2.0 * np.sin(
                np.pi / (2.0 * (2.0 * tau + 1.0)))
            total += 1
            matches += int(converged == predicted)
            stable_count += int(converged)
            rows.append((tau, eta, gain, predicted, traj.outcome.value))
        if prev_stable_count is not None:
            monotone_ok &= stable_count <= prev_stable_count
        prev_stable_count = stable_count

    return ExperimentResult(
        experiment_id="X2",
        title="Extension: feedback delay shrinks the stable gain "
              "(a < 2 sin(pi / (2(2 tau + 1))))",
        columns=("signal_delay", "eta", "loop_gain_etaN",
                 "theory_stable", "outcome"),
        rows=rows,
        checks={
            "delay_criterion_predicts_most_outcomes":
                matches >= int(0.85 * total),
            "stable_region_shrinks_with_delay": monotone_ok,
        },
        notes=[f"classical linear-delay criterion matched {matches}/"
               f"{total} (gain, delay) cells"],
    )


def run_x3_weighted_fairness(weights=(1.0, 2.0, 4.0),
                             beta: float = 0.5,
                             eta: float = 0.04) -> ExperimentResult:
    """X3 — weighted Fair Share delivers weight-proportional shares.

    Three connections with weights 1:2:4 share a unit gateway.  The
    weighted water-filling allocation is ``rho_ss * mu * phi_i / Phi``;
    TSI individual feedback over a WeightedFairShare gateway converges
    to it, and the weighted robustness floor holds under a
    heterogeneous greed mix.
    """
    phi = np.asarray(weights, dtype=float)
    n = phi.shape[0]
    network = single_gateway(n, mu=1.0)
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)

    expected = weighted_max_min_allocation(
        network, {"g0": rho_ss * 1.0}, phi)
    rows = [("allocation", i, float(phi[i]), float(expected[i]))
            for i in range(n)]

    proportional = np.allclose(expected / phi, expected[0] / phi[0])
    conserves = np.isclose(float(expected.sum()), rho_ss)

    # Heterogeneous greed over the weighted gateway: floors hold.
    betas = (0.65, 0.5, 0.35)
    rules = [TargetRule(eta=eta, beta=b) for b in betas]
    system = FlowControlSystem(network, WeightedFairShare(phi), signal,
                               rules, style=FeedbackStyle.INDIVIDUAL,
                               weights=phi)
    traj = system.run(np.full(n, 0.05), max_steps=80000, tol=1e-11)
    final = (traj.final if traj.outcome is Outcome.CONVERGED
             else traj.tail(200).mean(axis=0))
    floors = np.array([
        weighted_reservation_floor(
            network, signal.steady_state_utilisation(betas[i]), phi)[i]
        for i in range(n)])
    ratios = final / floors
    for i in range(n):
        rows.append(("heterogeneous", i, float(final[i]),
                     float(ratios[i])))

    # Equal weights reduce to the paper's construction.
    equal = weighted_max_min_allocation(network, {"g0": rho_ss},
                                        np.ones(n))
    classic = max_min_allocation(network, {"g0": rho_ss})
    reduction_ok = np.allclose(equal, classic)

    return ExperimentResult(
        experiment_id="X3",
        title="Extension: weighted Fair Share — weight-proportional "
              "allocation and weighted robustness floors",
        columns=("part", "connection", "value", "detail"),
        rows=rows,
        checks={
            "allocation_proportional_to_weights": bool(proportional),
            "allocation_saturates_capacity": bool(conserves),
            "weighted_floors_hold_under_heterogeneity":
                bool(np.all(ratios >= 1.0 - 1e-3)),
            "equal_weights_reduce_to_paper_construction":
                bool(reduction_ok),
        },
    )


def run_x4_thinning_ablation(rates=(0.08, 0.22, 0.3),
                             mu: float = 1.0,
                             horizon: float = 15000.0,
                             warmup: float = 1500.0,
                             seed: int = 41) -> ExperimentResult:
    """X4 — must Fair Share gateways *know* the sending rates?

    The discipline's substream classes are defined by the connection
    rates, which a 1990 gateway would not know.  Compare the simulated
    per-connection queues when the classifier uses (a) oracle rates and
    (b) rates the gateway estimates from its own arrival counts — the
    measured variant should track the analytic law almost as well,
    supporting deployability.
    """
    r = np.asarray(rates, dtype=float)
    expected = FairShare().queue_lengths(r, mu)
    rows = []
    worst = {}
    for mode in ("oracle", "measured"):
        sim = NetworkSimulation(single_gateway(r.shape[0], mu=mu),
                                discipline_kind="fair-share", seed=seed,
                                initial_rates=r, rate_mode=mode)
        sim.run_for(warmup)
        if mode == "measured":
            # Bootstrap the estimator from the warm-up window.
            sim.refresh_measured_rates()
        sim.reset_statistics()
        sim.run_for(horizon)
        if mode == "measured":
            sim.refresh_measured_rates()
        measured = sim.mean_queue_lengths()["g0"]
        errors = np.abs(measured - expected) / np.maximum(expected, 0.05)
        worst[mode] = float(np.max(errors))
        for i in range(r.shape[0]):
            rows.append((mode, i, float(expected[i]),
                         float(measured[i]), float(errors[i])))

    return ExperimentResult(
        experiment_id="X4",
        title="Extension: Fair Share with measured instead of oracle "
              "rates",
        columns=("rate_mode", "connection", "expected_Q", "measured_Q",
                 "relative_error"),
        rows=rows,
        checks={
            "oracle_matches_analytic_law": worst["oracle"] < 0.15,
            "measured_rates_nearly_as_good": worst["measured"] < 0.25,
        },
        notes=[f"worst relative errors: oracle {worst['oracle']:.3f}, "
               f"measured {worst['measured']:.3f}"],
    )


def run_x5_implicit_feedback(n_sources: int = 3, mu: float = 1.0,
                             buffer_size: int = 20,
                             control_interval: float = 150.0,
                             n_steps: int = 120,
                             seed: int = 43) -> ExperimentResult:
    """X5 — implicit feedback: AIMD over drop-tail gateways.

    Jacobson's scheme uses packet drops as the congestion signal.  We
    run additive-increase multiplicative-decrease sources against a
    finite-buffer (drop-tail) gateway in the packet simulator, with the
    measured drop fraction as the (aggregate, implicit) signal:

    * the loop never reaches a steady state — it oscillates in the
      AIMD sawtooth (the paper: binary-feedback schemes have no fixed
      point);
    * the *time-averaged* rates are nevertheless fair and keep the
      gateway busy;
    * with heterogeneous AIMD aggressiveness, the *buffer policy*
      matters: plain drop-tail punishes everyone for the aggressive
      source's overflow, while Nagle's drop-from-longest-queue policy
      [Nag87] concentrates the drops on the hog and pulls its share
      back toward the fair split — the implicit-feedback analogue of
      the paper's service-discipline story.
    """
    network = single_gateway(n_sources, mu=mu)
    rule = BinaryAimdRule(increase=0.01, decrease=0.5, threshold=0.02)
    homogeneous = run_closed_loop(
        network, rule, LinearSaturating(),
        style=FeedbackStyle.AGGREGATE, discipline_kind="fifo",
        initial_rates=np.full(n_sources, 0.05),
        control_interval=control_interval, n_steps=n_steps, seed=seed,
        signal_source="drops", buffer_sizes=buffer_size)
    tail = homogeneous.rate_history[-n_steps // 2:]
    mean_rates = tail.mean(axis=0)
    swing = float(tail.sum(axis=1).max() - tail.sum(axis=1).min())
    fairness = jain_index(mean_rates)
    utilisation = float(mean_rates.sum()) / mu

    rows = [("homogeneous-fifo", "mean rate", float(r))
            for r in mean_rates]
    rows.append(("homogeneous-fifo", "jain index of mean rates",
                 fairness))
    rows.append(("homogeneous-fifo", "total-rate swing", swing))
    rows.append(("homogeneous-fifo", "mean utilisation", utilisation))

    # Heterogeneous aggressiveness: source 0 probes harder and backs
    # off less (keeps 7/8 of its rate on a drop vs the others' 1/2).
    rules = ([BinaryAimdRule(increase=0.02, decrease=0.125,
                             threshold=0.02)]
             + [BinaryAimdRule(increase=0.01, decrease=0.5,
                               threshold=0.02)] * (n_sources - 1))
    shares = {}
    for policy in ("tail", "longest"):
        res = run_closed_loop(
            network, rules, LinearSaturating(),
            style=FeedbackStyle.INDIVIDUAL, discipline_kind="fifo",
            initial_rates=np.full(n_sources, 0.05),
            control_interval=control_interval, n_steps=n_steps,
            seed=seed + 1, signal_source="drops",
            buffer_sizes=buffer_size, drop_policy=policy)
        mean = res.rate_history[-n_steps // 2:].mean(axis=0)
        shares[policy] = float(mean[0] / mean.sum())
        rows.append((f"heterogeneous-drop-{policy}",
                     "aggressive source's share", shares[policy]))

    equal_share = 1.0 / n_sources
    return ExperimentResult(
        experiment_id="X5",
        title="Extension: implicit (drop-based) feedback — AIMD with "
              "drop-tail vs drop-from-longest-queue",
        columns=("configuration", "metric", "value"),
        rows=rows,
        checks={
            "aimd_oscillates_not_steady": swing > 0.01,
            "time_average_is_fair": fairness > 0.95,
            "gateway_kept_busy": utilisation > 0.55,
            "aggressive_source_wins_under_drop_tail":
                shares["tail"] > equal_share + 0.05,
            "longest_queue_drop_restores_fairness":
                shares["longest"] < shares["tail"] - 0.05,
        },
        notes=[f"aggressive source's share: drop-tail "
               f"{shares['tail']:.3f} vs drop-longest "
               f"{shares['longest']:.3f} (equal share "
               f"{equal_share:.3f})"],
    )
