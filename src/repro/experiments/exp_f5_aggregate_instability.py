"""F5 — Section 3.3: unilateral stability does not imply systemic
stability under aggregate feedback.

The paper's example: one unit-rate gateway, ``B(C) = C/(C+1)`` (so the
aggregate signal equals the utilisation), ``f = eta (beta - b)``.  Each
connection measures ``DF_ii = 1 - eta`` (unilaterally stable for
``eta < 2``), but the stability matrix is ``I - eta 11^T/mu`` whose
eigenvalue transverse to the steady-state manifold is ``1 - eta N``:
for ``N > 2/eta`` the steady states are systemically unstable and the
dynamics leave the manifold (ending in a truncation-bounded limit
cycle).  The remaining ``N - 1`` eigenvalues are exactly 1 — neutral
motion *along* the manifold, which Section 2.4.3 explicitly exempts —
so the meaningful measure is the transverse spectral radius.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.stability import (jacobian, transverse_spectral_radius,
                              unilateral_margins, zero_sum_tangent_basis)
from ..core.steadystate import fair_steady_state
from ..core.topology import single_gateway
from ..parallel import sweep
from .base import ExperimentResult

__all__ = ["run_f5_aggregate_instability"]


def _f5_point(args):
    """One sweep point: stability analysis + perturbed run at one N.

    Module-level (not a closure) so :func:`repro.parallel.sweep` can
    ship it to a process pool; the perturbation noise is drawn by the
    caller so results do not depend on worker scheduling.
    """
    n, eta, beta, rho_ss, noise, perturbation, threshold = args
    signal = LinearSaturating()
    rule = TargetRule(eta=eta, beta=beta)
    network = single_gateway(n, mu=1.0)
    system = FlowControlSystem(network, Fifo(), signal, rule,
                               style=FeedbackStyle.AGGREGATE)
    fair = fair_steady_state(network, rho_ss)
    df = jacobian(system, fair)
    margins = unilateral_margins(df)
    transverse = transverse_spectral_radius(df, zero_sum_tangent_basis(n))
    predicted = abs(1.0 - eta * n)

    start = np.clip(fair * (1.0 + perturbation * noise), 0.0, None)
    traj = system.run(start, max_steps=8000, tol=1e-10)
    # Instability manifests as leaving the manifold: either a
    # non-converged outcome or a final total rate away from
    # rho_ss * mu.  Motion *along* the manifold is neutral and fine.
    total_ok = abs(float(np.sum(traj.final)) - rho_ss) < 1e-4
    stayed = traj.outcome is Outcome.CONVERGED and total_ok
    theory_stable = n < threshold
    return {
        "row": (n, float(margins[0]), transverse, predicted,
                theory_stable, traj.outcome.value, stayed),
        "radius_ok": abs(transverse - predicted) < 1e-3,
        "unilateral_ok": bool(np.all(margins < 1.0)),
        "verdict_ok": stayed == theory_stable,
    }


def run_f5_aggregate_instability(eta: float = 0.3, beta: float = 0.5,
                                 n_values=(2, 4, 6, 8, 12, 20),
                                 perturbation: float = 1e-3,
                                 seed: int = 3,
                                 workers: int = None) -> ExperimentResult:
    """Sweep the number of connections at a shared gateway.

    The per-N points are independent, so the sweep runs through
    :func:`repro.parallel.sweep` (``workers=1`` forces serial).
    """
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    threshold = 2.0 / eta
    rng = np.random.default_rng(seed)
    grid = [(n, eta, beta, rho_ss, rng.standard_normal(n),
             perturbation, threshold) for n in n_values]
    points = sweep(_f5_point, grid, workers=workers)

    rows = [p["row"] for p in points]
    radius_matches = all(p["radius_ok"] for p in points)
    unilateral_all_stable = all(p["unilateral_ok"] for p in points)
    verdict_matches_theory = all(p["verdict_ok"] for p in points)

    return ExperimentResult(
        experiment_id="F5",
        title="Section 3.3: aggregate feedback — unilateral stability "
              "without systemic stability (eigenvalue 1 - eta N)",
        columns=("N", "unilateral_margin", "transverse_radius",
                 "predicted_|1-etaN|", "theory_stable", "outcome",
                 "stayed_on_manifold"),
        rows=rows,
        checks={
            "transverse_radius_matches_1_minus_etaN": radius_matches,
            "every_N_is_unilaterally_stable": unilateral_all_stable,
            "instability_onsets_at_N_equals_2_over_eta":
                verdict_matches_theory,
        },
        notes=[f"eta = {eta}: theory predicts loss of stability for "
               f"N > {threshold:.1f}; the N-1 on-manifold eigenvalues "
               f"are exactly 1 (neutral) by design"],
    )
