"""F2 — Theorem 2(1): the aggregate steady-state manifold.

At a single gateway with ``N`` connections, TSI aggregate feedback only
pins the *total* rate (``sum r = rho_ss mu``); the individual split is
an ``(N-1)``-dimensional manifold of steady states, so the outcome
depends on the initial condition and is generically unfair.  We launch
the dynamics from many random starts, confirm every endpoint lies on
the manifold, that the endpoints genuinely differ, and that exactly the
symmetric point is fair.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairness import is_fair, jain_index
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.steadystate import (fair_steady_state,
                                is_aggregate_steady_state)
from ..core.topology import single_gateway
from .base import ExperimentResult

__all__ = ["run_f2_manifold"]


def run_f2_manifold(n_connections: int = 5, n_starts: int = 24,
                    eta: float = 0.08, beta: float = 0.5,
                    seed: int = 7) -> ExperimentResult:
    """Random-start ensemble on one shared gateway; see module doc."""
    network = single_gateway(n_connections, mu=1.0)
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    system = FlowControlSystem(network, Fifo(), signal,
                               TargetRule(eta=eta, beta=beta),
                               style=FeedbackStyle.AGGREGATE)
    rng = np.random.default_rng(seed)

    # One batched run covers every random start plus the symmetric
    # probe (last row); the engine iterates them all simultaneously.
    starts = np.empty((n_starts + 1, n_connections))
    starts[:n_starts] = rng.uniform(0.0, 0.6,
                                    size=(n_starts, n_connections))
    starts[n_starts] = 0.01
    ensemble = system.run_ensemble(starts, max_steps=40000, tol=1e-11)

    rows = []
    all_on_manifold = True
    all_converged = True
    any_unfair = False
    for k in range(n_starts):
        final = ensemble.finals[k]
        converged = ensemble.outcomes[k] is Outcome.CONVERGED
        on_manifold = is_aggregate_steady_state(network, rho_ss, final,
                                                tol=1e-6)
        fair = is_fair(system.scheme, final, tol=1e-6)
        all_converged &= converged
        all_on_manifold &= on_manifold
        any_unfair |= not fair
        rows.append((k, float(np.sum(final)), jain_index(final),
                     on_manifold, fair))

    endpoints = ensemble.finals[:n_starts]
    spread = float(np.max(endpoints.std(axis=0)))
    fair_point = fair_steady_state(network, rho_ss)
    symmetric_final = ensemble.finals[n_starts]
    fair_reached = bool(np.allclose(symmetric_final, fair_point,
                                    atol=1e-6))

    return ExperimentResult(
        experiment_id="F2",
        title="Theorem 2(1): aggregate feedback has a manifold of "
              "(mostly unfair) steady states",
        columns=("start", "total_rate", "jain_index", "on_manifold",
                 "fair"),
        rows=rows,
        checks={
            "all_starts_converge": all_converged,
            "all_endpoints_on_manifold": all_on_manifold,
            "endpoints_differ_across_starts": spread > 0.02,
            "unfair_endpoints_exist": any_unfair,
            "symmetric_start_reaches_the_unique_fair_point": fair_reached,
        },
        notes=[
            f"rho_ss = {rho_ss}; manifold constraint: total rate = "
            f"{rho_ss} with every connection bottlenecked",
            f"std of endpoint coordinates across starts: {spread:.4f}",
        ],
    )
