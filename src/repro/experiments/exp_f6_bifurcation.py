"""F6 — Section 3.3 aside: stable → oscillatory → chaotic dynamics.

With the signalling function changed so that the aggregate signal at a
unit gateway is ``rho**2`` (``B(C) = (C/(C+1))**2``), the symmetric
N-connection dynamics reduce to the scalar quadratic map
``x <- x + eta N (beta - x**2)``.  Sweeping ``eta N`` reproduces the
Collet–Eckmann cascade the paper cites: a stable fixed point below
``eta N sqrt(beta) = 1``, then period doubling, then chaos (positive
Lyapunov exponent).  We also check the reduction itself: the full
N-dimensional :class:`~repro.core.dynamics.FlowControlSystem` started
symmetrically tracks the scalar map exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.bifurcation import quadratic_map_sweep
from ..analysis.classify import Regime
from ..analysis.maps import QuadraticRateMap
from ..core.dynamics import FlowControlSystem
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, PowerSaturating
from ..core.topology import single_gateway
from .base import ExperimentResult

__all__ = ["run_f6_bifurcation"]


def _system_tracks_map(n: int, eta: float, beta: float, steps: int = 60,
                       start_levels=(0.01, 0.02, 0.04)) -> bool:
    """Does the full system's symmetric orbit equal the scalar map's?

    Checks a whole batch of symmetric starts at once: the full system
    advances through :meth:`~repro.core.dynamics.FlowControlSystem.step_batch`
    and the scalar map through
    :meth:`~repro.analysis.maps.QuadraticRateMap.apply_batch`, and the
    per-row total rates must agree while the orbit stays below
    capacity (beyond it the B(inf)=1 saturation differs from the map).
    """
    network = single_gateway(n, mu=1.0)
    system = FlowControlSystem(network, Fifo(), PowerSaturating(p=2.0),
                               TargetRule(eta=eta, beta=beta),
                               style=FeedbackStyle.AGGREGATE)
    the_map = QuadraticRateMap.from_system(n, eta, beta)
    levels = np.asarray(start_levels, dtype=float)
    r = np.repeat(levels[:, None], n, axis=1)
    x = n * levels
    active = np.ones(levels.size, dtype=bool)
    for _ in range(steps):
        r = system.step_batch(r)
        x = the_map.apply_batch(x)
        active &= x < 1.0
        mismatch = np.abs(r.sum(axis=1) - x) > 1e-9 * np.maximum(1.0, x)
        if np.any(active & mismatch):
            return False
        if not np.any(active):
            break
    return True


def run_f6_bifurcation(beta: float = 0.25,
                       gains=(0.5, 1.0, 1.5, 1.9, 2.1, 2.3, 2.45, 2.52,
                              2.58, 2.62),
                       n_for_reduction: int = 8,
                       transient: int = 3000,
                       keep: int = 256) -> ExperimentResult:
    """Sweep ``a = eta N``; classify each attractor; see module doc."""
    doubling = 1.0 / math.sqrt(beta)
    truncated = quadratic_map_sweep(gains, beta=beta, x0=0.4,
                                    transient=transient, keep=keep,
                                    truncate=True)
    untruncated = quadratic_map_sweep(gains, beta=beta, x0=0.4,
                                      transient=transient, keep=keep,
                                      truncate=False)
    rows = []
    stable_below_threshold = True
    periodic_band_found = False
    chaos_found = False
    for trunc_pt, free_pt in zip(truncated, untruncated):
        a = trunc_pt.parameter
        regime = free_pt.classification.regime
        rows.append((a, a * math.sqrt(beta),
                     str(trunc_pt.classification),
                     str(free_pt.classification),
                     free_pt.lyapunov))
        if a * math.sqrt(beta) < 0.999:
            stable_below_threshold &= (regime is Regime.FIXED_POINT)
        if regime is Regime.PERIODIC:
            periodic_band_found = True
        if regime is Regime.APERIODIC and free_pt.lyapunov > 0.05:
            chaos_found = True

    reduction_ok = _system_tracks_map(n_for_reduction,
                                      eta=1.8 / n_for_reduction, beta=beta)

    return ExperimentResult(
        experiment_id="F6",
        title="Section 3.3: the quadratic rate map — stable, oscillatory,"
              " chaotic regimes as eta*N grows",
        columns=("a=eta*N", "a*sqrt(beta)", "regime_truncated",
                 "regime_untruncated", "lyapunov_untruncated"),
        rows=rows,
        checks={
            "fixed_point_below_doubling_threshold": stable_below_threshold,
            "periodic_band_above_threshold": periodic_band_found,
            "chaotic_band_with_positive_lyapunov": chaos_found,
            "full_system_reduces_to_scalar_map": reduction_ok,
        },
        notes=[
            f"first period doubling predicted at a = 1/sqrt(beta) = "
            f"{doubling:.4g}",
            "under the model's rate truncation at 0 the deepest chaos "
            "collapses onto cycles through 0; the untruncated column "
            "shows the underlying cascade",
        ],
    )
