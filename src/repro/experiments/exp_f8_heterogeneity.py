"""F8 — Section 3.4: aggregate feedback shuts out less greedy sources.

Two connections share one gateway under TSI aggregate feedback, but run
rules with different target signals ``b1_ss > b2_ss`` (connection 1 is
"greedier": it tolerates more congestion before backing off).  The
iteration drives ``r2 -> 0`` and ``r1 -> r_ss`` where the gateway sits
at connection 1's target — the truncated state is steady because
``f2 < 0`` is pinned by the nonnegativity clamp.  "Appallingly bad":
the meek connection gets *nothing*, which is what makes aggregate
feedback non-robust.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import single_gateway
from .base import ExperimentResult

__all__ = ["run_f8_heterogeneity"]


def run_f8_heterogeneity(beta_greedy: float = 0.6,
                         beta_meek: float = 0.4,
                         eta: float = 0.05,
                         steps: int = 6000,
                         sample_every: int = 500) -> ExperimentResult:
    """Two heterogeneous targets at one gateway; see module doc."""
    if not beta_greedy > beta_meek:
        raise ValueError("the greedy target must exceed the meek target")
    network = single_gateway(2, mu=1.0)
    signal = LinearSaturating()
    system = FlowControlSystem(
        network, Fifo(), signal,
        rules=[TargetRule(eta=eta, beta=beta_greedy),
               TargetRule(eta=eta, beta=beta_meek)],
        style=FeedbackStyle.AGGREGATE)

    r = np.array([0.2, 0.2])
    rows = [(0, float(r[0]), float(r[1]))]
    for step in range(1, steps + 1):
        r = system.step(r)
        if step % sample_every == 0:
            rows.append((step, float(r[0]), float(r[1])))

    # The greedy connection alone should sit at its own target load.
    expected_greedy = signal.steady_state_utilisation(beta_greedy)
    meek_shut_out = float(r[1]) < 1e-6
    greedy_takes_all = abs(float(r[0]) - expected_greedy) < 1e-4
    pinned_steady = system.is_steady_state(r, tol=1e-8)

    return ExperimentResult(
        experiment_id="F8",
        title="Section 3.4: heterogeneous aggregate feedback drives the "
              "less greedy connection to zero",
        columns=("step", "rate_greedy(b_ss=%.2f)" % beta_greedy,
                 "rate_meek(b_ss=%.2f)" % beta_meek),
        rows=rows,
        checks={
            "meek_connection_shut_out": meek_shut_out,
            "greedy_connection_reaches_own_target": greedy_takes_all,
            "truncated_state_is_steady": pinned_steady,
        },
        notes=[
            f"greedy steady rate = rho_ss(beta={beta_greedy}) * mu = "
            f"{expected_greedy:.4f}; the meek rule still wants to "
            f"decrease (f2 < 0) but is pinned at zero",
        ],
    )
