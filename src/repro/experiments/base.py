"""Common result type and utilities for the experiment harnesses.

Every experiment function returns an :class:`ExperimentResult`:

* ``rows`` — the table/series the paper's artifact would show;
* ``checks`` — named boolean "shape" assertions (who wins, where the
  threshold falls, what converges) that tests and benchmarks verify;
* ``notes`` — free-form commentary recorded into EXPERIMENTS.md.

Harnesses are import-safe: nothing runs at import time, and every run
is deterministic given its ``seed`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ExperimentError

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment harness run."""

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Tuple]
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def __post_init__(self):
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ExperimentError(
                    f"{self.experiment_id}: row {row!r} does not match "
                    f"columns {self.columns!r}")

    @property
    def all_checks_pass(self) -> bool:
        """True when every shape assertion held."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def require(self) -> "ExperimentResult":
        """Raise when any check failed (used by strict callers)."""
        failed = self.failed_checks()
        if failed:
            raise ExperimentError(
                f"{self.experiment_id}: checks failed: {failed}")
        return self

    def to_dict(self) -> dict:
        """Plain-data view used by the JSON artifact writer."""
        return {
            "id": self.experiment_id,
            "title": self.title,
            "columns": [str(c) for c in self.columns],
            "rows": [list(row) for row in self.rows],
            "checks": {str(name): bool(ok)
                       for name, ok in self.checks.items()},
            "notes": [str(note) for note in self.notes],
        }
