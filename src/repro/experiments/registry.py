"""Registry of every paper artifact and the harness regenerating it."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from ..errors import ExperimentError
from ..observability import active_session
from .base import ExperimentResult
from .exp_f1_tsi import run_f1_tsi
from .exp_f2_manifold import run_f2_manifold
from .exp_f3_fair_construction import run_f3_fair_construction
from .exp_f4_individual_fair import run_f4_individual_fair
from .exp_f5_aggregate_instability import run_f5_aggregate_instability
from .exp_f6_bifurcation import run_f6_bifurcation
from .exp_f7_fs_stability import run_f7_fs_stability
from .exp_f8_heterogeneity import run_f8_heterogeneity
from .exp_f9_robustness import run_f9_robustness
from .exp_f10_delay_advantage import run_f10_delay_advantage
from .exp_f11_real_algorithms import run_f11_real_algorithms
from .exp_f12_sim_validation import run_f12_sim_validation
from .exp_f13_controller_zoo import run_f13_controller_zoo
from .exp_f14_async import (run_f14_async_invariance,
                            run_x8_clock_heterogeneity)
from .exp_x6_faulty_feedback import run_x6_faulty_feedback
from .exp_x7_chaos import run_x7_chaos_floors
from .extensions import (run_x1_asynchrony, run_x2_feedback_delay,
                         run_x3_weighted_fairness,
                         run_x4_thinning_ablation,
                         run_x5_implicit_feedback)
from .table1 import run_table1

__all__ = ["Experiment", "REGISTRY", "EXTENSIONS", "get", "run",
           "run_all"]


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact."""

    experiment_id: str
    paper_artifact: str
    runner: Callable[..., ExperimentResult]


_ENTRIES = [
    Experiment("T1", "Table 1 (Fair Share decomposition)", run_table1),
    Experiment("F1", "Theorem 1 (time-scale invariance)", run_f1_tsi),
    Experiment("F2", "Theorem 2(1) (aggregate manifold)", run_f2_manifold),
    Experiment("F3", "Theorem 2(2) (fair construction)",
               run_f3_fair_construction),
    Experiment("F4", "Theorem 3 + Corollary (individual fairness)",
               run_f4_individual_fair),
    Experiment("F5", "Section 3.3 (aggregate instability 1-etaN)",
               run_f5_aggregate_instability),
    Experiment("F6", "Section 3.3 (bifurcation to chaos)",
               run_f6_bifurcation),
    Experiment("F7", "Theorem 4 (Fair Share stability)",
               run_f7_fs_stability),
    Experiment("F8", "Section 3.4 (heterogeneity shutdown)",
               run_f8_heterogeneity),
    Experiment("F9", "Theorem 5 (robustness floors)", run_f9_robustness),
    Experiment("F10", "Section 3.4 (delay advantage >= N)",
               run_f10_delay_advantage),
    Experiment("F11", "Section 4 (real algorithms)",
               run_f11_real_algorithms),
    Experiment("F12", "Model vs packet simulator", run_f12_sim_validation),
    Experiment("F13", "Controller zoo (RCP vs TCP-like AIMD)",
               run_f13_controller_zoo),
    Experiment("F14", "Asynchronous invariance (schedules and delays "
                      "preserve fixed points)",
               run_f14_async_invariance),
]

REGISTRY: Dict[str, Experiment] = {e.experiment_id: e for e in _ENTRIES}

#: Extensions beyond the paper (asynchrony, delay, weights, thinning
#: ablation) — addressable through :func:`get`/:func:`run` but not part
#: of :func:`run_all`'s default artifact sweep.
EXTENSIONS: Dict[str, Experiment] = {
    e.experiment_id: e for e in [
        Experiment("X1", "Extension: asynchronous schedules",
                   run_x1_asynchrony),
        Experiment("X2", "Extension: feedback delay", run_x2_feedback_delay),
        Experiment("X3", "Extension: weighted Fair Share",
                   run_x3_weighted_fairness),
        Experiment("X4", "Extension: measured-rate thinning ablation",
                   run_x4_thinning_ablation),
        Experiment("X5", "Extension: implicit drop-based feedback",
                   run_x5_implicit_feedback),
        Experiment("X6", "Extension: robustness under faulty feedback",
                   run_x6_faulty_feedback),
        Experiment("X7", "Extension: robustness floors under chaos "
                         "(adversaries + outages)",
                   run_x7_chaos_floors),
        Experiment("X8", "Extension: clock-heterogeneity degradation",
                   run_x8_clock_heterogeneity),
    ]
}


def get(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"F5"`` or ``"X1"``)."""
    key = experiment_id.upper()
    if key in REGISTRY:
        return REGISTRY[key]
    if key in EXTENSIONS:
        return EXTENSIONS[key]
    raise ExperimentError(
        f"unknown experiment {experiment_id!r}; known ids: "
        f"{sorted(REGISTRY) + sorted(EXTENSIONS)}")


def run(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment with optional parameter overrides.

    When an :func:`repro.observability.collect` session is active, the
    harness's wall time is recorded in the session's metrics under
    ``experiment.<id>.seconds``.
    """
    experiment = get(experiment_id)
    session = active_session()
    if session is None:
        return experiment.runner(**kwargs)
    with session.metrics.timer(
            f"experiment.{experiment.experiment_id}.seconds").time():
        return experiment.runner(**kwargs)


def run_all(ids: Iterable[str] = None) -> List[ExperimentResult]:
    """Run every (or the given) experiment with default parameters."""
    selected = list(ids) if ids is not None else sorted(REGISTRY)
    return [run(eid) for eid in selected]
