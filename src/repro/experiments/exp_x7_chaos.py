"""X7 — extension: robustness floors under live fire.

Theorem 5 (F9) bounds every honest TSI connection's steady rate from
below by its reservation floor ``min_a rho_ss_i mu^a / N^a`` — *for
any* behaviour of the other sources.  F9 stresses the floor against
heterogeneous greed and X6 against a lossy signal path; X7 stresses it
against the structural chaos layer, on both axes at once:

* **adversary fraction** — some connections are replaced by
  feedback-ignoring :class:`~repro.chaos.BlasterRule` sources ramping
  to their line rate, the canonical misbehaving neighbour;
* **outage severity** — the shared gateway runs the whole experiment
  under a :class:`~repro.chaos.CapacityDegradation` at
  ``factor * mu`` (``factor = 1`` is the intact network), and the
  floors are computed against the *degraded* capacity — graceful
  degradation means the guarantee tracks the capacity that actually
  exists.

Under Fair Share the honest floors must hold in every cell; under FIFO
one blaster already drives the honest connections to zero — the same
contrast oracle #14 (``adversarial-floor``) asserts per-scenario in the
fuzzing harness.  The grid runs through the resilient
:func:`repro.parallel.sweep` executor, and one cell is replayed
in-process to pin the structural layer's bit-identical determinism.
"""

from __future__ import annotations

import numpy as np

from ..chaos import BlasterRule, CapacityDegradation, StructuralFaultPlan
from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.robustness import reservation_floor_heterogeneous
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import single_gateway
from ..parallel import sweep
from .base import ExperimentResult

__all__ = ["run_x7_chaos_floors"]

_DISCIPLINES = {"fifo": Fifo, "fair-share": FairShare}
_TAIL = 200  # control steps averaged when a run does not converge


def _x7_system(disc_name, betas, eta, n_adv, cap):
    """``len(betas)`` connections on one gateway; the *last* ``n_adv``
    of them are blasters ramping to ``cap``."""
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    rules = [TargetRule(eta=eta, beta=b) for b in betas]
    for i in range(n - n_adv, n):
        rules[i] = BlasterRule(increment=0.05, cap=cap)
    return FlowControlSystem(network, _DISCIPLINES[disc_name](),
                             LinearSaturating(), rules,
                             style=FeedbackStyle.INDIVIDUAL)


def _x7_plan(factor: float, steps: int, seed: int) -> StructuralFaultPlan:
    """The whole-run degradation window (empty plan at ``factor=1``)."""
    if factor >= 1.0:
        return StructuralFaultPlan()
    return StructuralFaultPlan(
        injectors=(CapacityDegradation("g0", factor=factor, start=0,
                                       duration=steps + 1),),
        seed=seed)


def _x7_point(args):
    """One (discipline, adversary count, mu factor) cell.

    Module-level so the resilient sweep can hand it to a process pool;
    returns plain data so checkpointed chunks pickle cheaply.
    """
    disc_name, betas, eta, n_adv, cap, factor, steps, seed = args
    system = _x7_system(disc_name, betas, eta, n_adv, cap)
    plan = _x7_plan(factor, steps, seed)
    traj = system.run(np.full(len(betas), 0.1), max_steps=steps,
                      tol=1e-11, structural=plan)
    final = (traj.final if traj.outcome is Outcome.CONVERGED
             else traj.tail(_TAIL).mean(axis=0))
    n_events = len(traj.structural_events) if traj.structural_events else 0
    return disc_name, n_adv, factor, final, traj.outcome.value, n_events


def run_x7_chaos_floors(betas=(0.7, 0.6, 0.5, 0.45, 0.4, 0.35),
                        eta: float = 0.05,
                        steps: int = 8000,
                        adversary_counts=(0, 1, 2),
                        mu_factors=(1.0, 0.6, 0.3),
                        blaster_cap: float = 3.0,
                        seed: int = 202,
                        workers: int = None,
                        checkpoint_dir=None) -> ExperimentResult:
    """Honest robustness floors vs adversary fraction and outage
    severity; see module doc.

    Args:
        betas: per-connection greed targets; the last
            ``max(adversary_counts)`` positions may be overridden by
            blasters, the rest are always honest.
        eta: TSI gain of every honest target rule.
        steps: map applications per grid cell.
        adversary_counts: how many trailing connections misbehave
            (``0`` keeps the clean F9-style reference column).
        mu_factors: gateway capacity factors to sweep (``1.0`` is the
            intact network; smaller is a harsher outage).
        blaster_cap: the adversaries' line rate.
        seed: seed of every structural plan.
        workers / checkpoint_dir: passed to the resilient
            :func:`repro.parallel.sweep`.
    """
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    signal = LinearSaturating()
    rho_vec = np.array([signal.steady_state_utilisation(b) for b in betas])

    grid = [(disc, tuple(betas), eta, int(n_adv), float(blaster_cap),
             float(factor), steps, seed)
            for disc in ("fair-share", "fifo")
            for n_adv in adversary_counts
            for factor in mu_factors]
    points = sweep(_x7_point, grid, workers=workers,
                   checkpoint_dir=checkpoint_dir)

    rows = []
    worst = {}  # (discipline, n_adv, factor) -> worst honest ratio
    for disc_name, n_adv, factor, final, outcome_value, n_events in points:
        # The guarantee is relative to the capacity that exists: floors
        # on the degraded network.
        degraded = network.with_mu_factors(
            {} if factor >= 1.0 else {"g0": factor})
        floors = reservation_floor_heterogeneous(degraded, rho_vec)
        honest = list(range(n - n_adv))
        ratios = final / floors
        worst[(disc_name, n_adv, factor)] = float(
            np.min(ratios[honest]))
        frac = n_adv / n
        for i in range(n):
            rows.append((disc_name, float(frac), float(factor), i,
                         "adversary" if i >= n - n_adv else "honest",
                         float(final[i]), float(floors[i]),
                         float(ratios[i]), outcome_value, n_events))

    max_adv = max(adversary_counts)
    min_factor = min(mu_factors)
    fs_worst = min(v for (d, a, f), v in worst.items()
                   if d == "fair-share")
    fifo_attacked = min((v for (d, a, f), v in worst.items()
                         if d == "fifo" and a > 0), default=1.0)
    checks = {
        # Theorem 5: every FS cell keeps every honest floor, whatever
        # the adversary fraction and outage severity.
        "fair_share_floors_hold_under_fire": fs_worst >= 1.0 - 1e-2,
        # FIFO's violation: any blaster starves the honest connections.
        "fifo_violates_floor_with_adversaries": fifo_attacked < 0.5,
        # Degraded cells really saw the structural machinery.
        "degraded_cells_record_events": all(
            ev > 0 for _, _, f, _, _, ev in points if f < 1.0),
    }
    notes = [
        f"worst honest FS floor ratio over the grid: {fs_worst:.4f}",
        f"worst honest FIFO ratio under attack: {fifo_attacked:.2e}",
        f"hardest cell: {max_adv}/{n} blasters at "
        f"{min_factor:.0%} capacity",
    ]

    # Structural determinism: replay the harshest FS cell in-process;
    # rates and recorded transitions must be bit-identical.
    probe = ("fair-share", tuple(betas), eta, int(max_adv),
             float(blaster_cap), float(min_factor), steps, seed)
    _, _, _, final_r, _, events_r = _x7_point(probe)
    original = next(
        (f, e) for d, a, fac, f, _, e in points
        if d == "fair-share" and a == max_adv and fac == float(min_factor))
    checks["chaos_replay_is_bit_identical"] = bool(
        np.array_equal(final_r, original[0]) and events_r == original[1])

    return ExperimentResult(
        experiment_id="X7",
        title="Extension: robustness floors vs adversary fraction and "
              "outage severity (Fair Share holds, FIFO collapses)",
        columns=("discipline", "adversary_fraction", "mu_factor",
                 "connection", "role", "tail_rate", "reservation_floor",
                 "floor_ratio", "outcome", "structural_events"),
        rows=rows,
        checks=checks,
        notes=notes,
    )
