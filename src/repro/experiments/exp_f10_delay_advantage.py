"""F10 — Section 3.4 closing remark: the delay advantage over
reservations.

A robust TSI individual + Fair Share scheme allocates the same
throughput as the reservation baseline at the symmetric fair point, but
its queueing delay per gateway is lower by a factor of at least
``N^a``: the datagram gateway statistically multiplexes one fast server
(sojourn ``Q_i / r_i = C_ss / (N r)``), while a reservation slices it
into ``N`` slow servers (sojourn ``C_ss / r``).  We sweep ``N`` and
measure both, analytically and in the packet simulator.
"""

from __future__ import annotations

import numpy as np

from ..core.fairshare import FairShare
from ..core.robustness import reservation_delay
from ..core.signals import LinearSaturating
from ..simulation.network_sim import NetworkSimulation
from ..core.topology import single_gateway
from .base import ExperimentResult

__all__ = ["run_f10_delay_advantage"]


def run_f10_delay_advantage(n_values=(2, 4, 8, 16), beta: float = 0.5,
                            sim_n: int = 4, sim_horizon: float = 4000.0,
                            seed: int = 17) -> ExperimentResult:
    """Analytic delay ratio sweep + one simulated confirmation."""
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    discipline = FairShare()
    rows = []
    ratio_at_least_n = True
    for n in n_values:
        mu = 1.0
        rate = rho_ss * mu / n
        rates = np.full(n, rate)
        fs_delay = float(discipline.delays(rates, mu)[0])
        resv_delay = reservation_delay(mu, n, rate)
        ratio = resv_delay / fs_delay
        ratio_at_least_n &= ratio >= n * (1.0 - 1e-9)
        rows.append((n, "analytic", rate, fs_delay, resv_delay, ratio))

    # Simulated confirmation at N = sim_n: measure the mean sojourn at a
    # Fair Share gateway vs a dedicated mu/N server carrying one flow.
    mu = 1.0
    rate = rho_ss * mu / sim_n
    shared = NetworkSimulation(single_gateway(sim_n, mu=mu),
                               discipline_kind="fair-share", seed=seed,
                               initial_rates=np.full(sim_n, rate))
    shared.run_for(sim_horizon / 4)
    shared.reset_statistics()
    shared.run_for(sim_horizon)
    q_shared = shared.mean_queue_lengths()["g0"]
    fs_delay_sim = float(np.mean(q_shared)) / rate

    sliced = NetworkSimulation(single_gateway(1, mu=mu / sim_n),
                               discipline_kind="fifo", seed=seed + 1,
                               initial_rates=np.array([rate]))
    sliced.run_for(sim_horizon / 4)
    sliced.reset_statistics()
    sliced.run_for(sim_horizon)
    resv_delay_sim = float(sliced.mean_queue_lengths()["g0"][0]) / rate
    sim_ratio = resv_delay_sim / fs_delay_sim
    rows.append((sim_n, "simulated", rate, fs_delay_sim, resv_delay_sim,
                 sim_ratio))

    return ExperimentResult(
        experiment_id="F10",
        title="Section 3.4: Fair Share beats reservations on delay by a "
              "factor >= N",
        columns=("N", "method", "per_conn_rate", "fair_share_delay",
                 "reservation_delay", "ratio"),
        rows=rows,
        checks={
            "analytic_ratio_at_least_N": ratio_at_least_n,
            "simulated_ratio_close_to_N":
                abs(sim_ratio - sim_n) / sim_n < 0.25,
        },
        notes=[
            "at the symmetric fair point the ratio is exactly N: "
            "same throughput, N-times-lower queueing delay",
        ],
    )
