"""F11 — Section 4: the real algorithms through the model's lens.

Three baseline behaviours the paper derives from its framework:

* the **DECbit window rule** (``f = (1-b) eta/d - beta b r``) is
  latency-sensitive: a connection with a longer round trip gets less
  throughput at a shared bottleneck;
* the **rate reinterpretation** (``f = (1-b) eta - beta b r``) is
  guaranteed fair — equal steady rates — but not TSI: scaling the line
  speed by ``c`` does not scale the allocation by ``c``;
* **binary-feedback AIMD** (Chiu–Jain) and **fluid Tahoe** never reach
  a steady state: they oscillate, with a sawtooth period growing
  linearly in the pipe size (the paper: "the period of oscillation
  grows linearly with the server rate"), while AIMD's Jain index rises
  monotonically toward 1.
"""

from __future__ import annotations

import numpy as np

from ..baselines.chiu_jain import run_chiu_jain
from ..baselines.decbit import run_decbit_windows
from ..baselines.jacobson import run_tahoe
from ..core.dynamics import FlowControlSystem
from ..core.fifo import Fifo
from ..core.ratecontrol import DecbitRateRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import Connection, Gateway, Network, single_gateway
from .base import ExperimentResult

__all__ = ["run_f11_real_algorithms"]


def _unequal_latency_network(short_lat: float = 0.1,
                             long_lat: float = 2.0) -> Network:
    """One shared bottleneck; the long connection also crosses a fast,
    high-latency feeder gateway, giving it a longer round trip."""
    gws = [Gateway("bottleneck", 1.0, short_lat),
           Gateway("feeder", 10.0, long_lat)]
    conns = [Connection("short", ("bottleneck",)),
             Connection("long", ("feeder", "bottleneck"))]
    return Network(gws, conns)


def run_f11_real_algorithms(steps: int = 400,
                            pipes=(20.0, 40.0, 80.0)) -> ExperimentResult:
    """Latency bias, fair-not-TSI, and oscillation measurements."""
    rows = []

    # (a) DECbit window rule: latency bias at a shared bottleneck.
    network = _unequal_latency_network()
    dec = run_decbit_windows(network, [1.0, 1.0], steps=steps)
    mean_rates = dec.mean_rates(steps // 4)
    short_rate, long_rate = float(mean_rates[0]), float(mean_rates[1])
    bias = short_rate / max(long_rate, 1e-12)
    rows.append(("decbit-window", "latency-bias short/long", bias))
    latency_bias = bias > 1.3

    # (b) Rate rule: guaranteed fair but not TSI.
    rule = DecbitRateRule(eta=0.05, beta=0.5)
    base = single_gateway(2, mu=1.0)
    sys1 = FlowControlSystem(base, Fifo(), LinearSaturating(), rule,
                             style=FeedbackStyle.AGGREGATE)
    r1 = sys1.solve(np.array([0.05, 0.3]), max_steps=60000, tol=1e-11)
    sys10 = FlowControlSystem(base.scaled(10.0), Fifo(), LinearSaturating(),
                              rule, style=FeedbackStyle.AGGREGATE)
    r10 = sys10.solve(np.array([0.5, 3.0]), max_steps=60000, tol=1e-11)
    fair_spread = float(np.max(r1) - np.min(r1))
    scaling_gap = float(np.max(np.abs(r10 / 10.0 - r1))) / max(
        float(np.max(r1)), 1e-12)
    rows.append(("decbit-rate", "steady spread (fairness)", fair_spread))
    rows.append(("decbit-rate", "rel. deviation from 10x scaling",
                 scaling_gap))
    rate_rule_fair = fair_spread < 1e-6
    rate_rule_not_tsi = scaling_gap > 0.1

    # (c) Chiu-Jain AIMD: oscillation + monotone fairness.
    aimd = run_chiu_jain([0.05, 0.75], goal=1.0, steps=800)
    fairness = aimd.fairness_trajectory
    monotone = bool(np.all(np.diff(fairness) >= -1e-9))
    rows.append(("chiu-jain-aimd", "final Jain index",
                 float(fairness[-1])))
    rows.append(("chiu-jain-aimd", "limit-cycle amplitude",
                 aimd.amplitude(200)))
    aimd_oscillates = aimd.amplitude(200) > 0.01
    aimd_fairness_converges = fairness[-1] > 0.999 and monotone

    # (d) Fluid Tahoe: sawtooth period grows linearly with the pipe.
    periods = []
    for pipe in pipes:
        tahoe = run_tahoe([1.0, 1.0], pipe=pipe, steps=3000)
        saw = tahoe.sawtooth_periods
        period = float(np.mean(saw[1:])) if saw.size > 1 else float("nan")
        periods.append(period)
        rows.append(("tahoe", f"sawtooth period @ pipe={pipe:g}", period))
    ratios = np.diff(periods) / np.diff(np.asarray(pipes, dtype=float))
    linear_growth = bool(np.all(ratios > 0.05))

    return ExperimentResult(
        experiment_id="F11",
        title="Section 4: real algorithms — latency bias, fair-not-TSI, "
              "oscillation",
        columns=("algorithm", "metric", "value"),
        rows=rows,
        checks={
            "decbit_window_biased_against_long_latency": latency_bias,
            "decbit_rate_rule_guaranteed_fair": rate_rule_fair,
            "decbit_rate_rule_not_tsi": rate_rule_not_tsi,
            "aimd_oscillates_without_steady_state": aimd_oscillates,
            "aimd_fairness_rises_monotonically_to_1":
                aimd_fairness_converges,
            "tahoe_period_grows_with_pipe": linear_growth,
        },
    )
