"""Rendering and persistence of experiment results."""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Optional, Union

from ..observability import CollectorSession, write_experiment_artifact
from .base import ExperimentResult

__all__ = ["format_table", "to_csv", "to_json", "format_summary"]


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.6g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """A fixed-width text table with the checks appended."""
    header = [str(c) for c in result.columns]
    body = [[_cell(v) for v in row] for row in result.rows]
    widths = [len(h) for h in header]
    for row in body:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if result.checks:
        lines.append("")
        for name, ok in result.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def to_csv(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write the rows as CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow([_cell(v) for v in row])
    return path


def to_json(result: ExperimentResult, directory: Union[str, Path],
            session: Optional[CollectorSession] = None,
            seed=None, config=None) -> Path:
    """Write ``<directory>/<id>.json``: a schema-valid run-record
    artifact with provenance (git revision, seed, config hash), the
    result's rows/checks, and everything the given collector session
    observed (per-iteration engine records, sweep chunk timings).
    """
    return write_experiment_artifact(result, directory, session=session,
                                     seed=seed, config=config)


def format_summary(results: Iterable[ExperimentResult]) -> str:
    """One status line per experiment (for the benchmark harness)."""
    lines = []
    for result in results:
        status = "OK " if result.all_checks_pass else "FAIL"
        lines.append(f"[{status}] {result.experiment_id}: {result.title} "
                     f"({len(result.rows)} rows, "
                     f"{len(result.checks)} checks)")
    return "\n".join(lines)
