"""F13 — the modern-controller zoo: RCP vs TCP-like AIMD.

Two controllers the paper predates, run through the same model and
reported SIGCOMM-benchmark style (utilisation + Jain fairness tables
over bandwidth and RTT grids):

* **RCP** (router-side explicit rates): every grid point converges,
  the bottleneck settles at the analytic fixed-point utilisation
  ``x*`` solving ``alpha (1-x)^2 = beta x`` — independent of the link
  speed, the time-scale-invariance the paper's Theorem 1 asks for —
  and the allocation is the max-min split of the effective capacities
  ``x* mu``, so Jain's index is 1 regardless of RTT;
* **TCP-like AIMD** (additive increase ``eta / d``, multiplicative
  decrease): it never reaches a steady state (the adjustment never
  vanishes), stays fair between connections with equal round trips,
  but is RTT-biased — the increase term scales as ``1/d``, so the
  short-RTT connection out-claims the long one by a growing factor as
  the latency gap widens (Andrews-Slivkins).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.fairness_tables import (allocation_summary,
                                        bottleneck_utilisation,
                                        format_grid)
from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairness import jain_index
from ..core.fifo import Fifo
from ..core.ratecontrol import RcpSourceRule, TcpLikeRule
from ..core.rcp import RcpController
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import Connection, Gateway, Network, single_gateway
from .base import ExperimentResult

__all__ = ["run_f13_controller_zoo"]

#: RCP gains used throughout the grids: stability factor
#: s = alpha (1 + x*) ~ 0.87, comfortably inside the s < 2 region.
RCP_ALPHA = 0.5
RCP_BETA = 0.05

#: TCP-like gains: sawtooth period well inside the detector window.
TCP_INCREASE = 0.05
TCP_DECREASE = 0.125
TCP_THRESHOLD = 0.5


def _rtt_network(long_latency: float) -> Network:
    """One shared bottleneck; the long connection also crosses a fast
    feeder gateway carrying the extra round-trip latency."""
    gws = [Gateway("bottleneck", 1.0, 0.1),
           Gateway("feeder", 10.0, long_latency)]
    conns = [Connection("short", ("bottleneck",)),
             Connection("long", ("feeder", "bottleneck"))]
    return Network(gws, conns)


def _rcp_system(network: Network) -> FlowControlSystem:
    return FlowControlSystem(
        network, Fifo(), LinearSaturating(), RcpSourceRule(),
        style=FeedbackStyle.INDIVIDUAL,
        controller=RcpController(alpha=RCP_ALPHA, beta=RCP_BETA))


def _tcp_system(network: Network) -> FlowControlSystem:
    # Aggregate feedback: every source reacts to the *shared* bottleneck
    # signal, the setting in which AIMD's RTT bias is classically shown
    # (under individual feedback each source hovers at its own
    # threshold and the bias all but disappears).
    return FlowControlSystem(
        network, Fifo(), LinearSaturating(),
        TcpLikeRule(increase=TCP_INCREASE, decrease=TCP_DECREASE,
                    threshold=TCP_THRESHOLD),
        style=FeedbackStyle.AGGREGATE)


def _tcp_mean_rates(system: FlowControlSystem, initial, steps: int):
    """Time-averaged rates over the second half of a tcp-like run —
    the sawtooth has no final state worth quoting."""
    traj = system.run(initial, max_steps=steps)
    mean = np.asarray(traj.history)[steps // 2:].mean(axis=0)
    return traj, mean


def run_f13_controller_zoo(
        bandwidths: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
        latencies: Sequence[float] = (0.1, 0.5, 2.0, 8.0),
        connections: int = 4,
        steps: int = 1200) -> ExperimentResult:
    """Utilisation + fairness grids for RCP and TCP-like AIMD."""
    controller = RcpController(alpha=RCP_ALPHA, beta=RCP_BETA)
    x_star = controller.fixed_point_utilisation()
    rows = []
    notes = []

    # --- Grid 1: bandwidth sweep at a single shared bottleneck. ---
    rcp_bw_rows, tcp_bw_rows = [], []
    rcp_converged = True
    rcp_util_err = 0.0
    rcp_jain_min = 1.0
    tcp_steady = False
    tcp_jain_equal_rtt = 1.0
    for mu in bandwidths:
        network = single_gateway(connections, mu=float(mu))
        initial = [0.1 * mu / connections] * connections

        traj = _rcp_system(network).run(initial, max_steps=steps)
        rcp_converged &= traj.outcome is Outcome.CONVERGED
        summary = allocation_summary(network, traj.final)
        rcp_util_err = max(rcp_util_err,
                           abs(summary["utilisation"] - x_star))
        rcp_jain_min = min(rcp_jain_min, summary["jain"])
        rcp_bw_rows.append((f"{mu:g}", summary["utilisation"],
                            summary["jain"]))
        rows.append(("rcp", "bandwidth", f"mu={mu:g}",
                     summary["utilisation"], summary["jain"]))

        traj, mean = _tcp_mean_rates(_tcp_system(network), initial, steps)
        tcp_steady |= traj.outcome in (Outcome.CONVERGED,
                                       Outcome.DIVERGED)
        summary = allocation_summary(network, mean)
        tcp_jain_equal_rtt = min(tcp_jain_equal_rtt, summary["jain"])
        tcp_bw_rows.append((f"{mu:g}", summary["utilisation"],
                            summary["jain"]))
        rows.append(("tcp-like", "bandwidth", f"mu={mu:g}",
                     summary["utilisation"], summary["jain"]))

    # --- Grid 2: RTT sweep at a fixed shared bottleneck. ---
    rcp_rtt_rows, tcp_rtt_rows = [], []
    rcp_jain_rtt_min = 1.0
    bias_ratios = []
    for latency in latencies:
        network = _rtt_network(float(latency))
        initial = [0.05, 0.05]

        traj = _rcp_system(network).run(initial, max_steps=steps)
        rcp_converged &= traj.outcome is Outcome.CONVERGED
        util = bottleneck_utilisation(network, traj.final)
        jain = float(jain_index(traj.final))
        rcp_jain_rtt_min = min(rcp_jain_rtt_min, jain)
        rcp_rtt_rows.append((f"{latency:g}", util, jain))
        rows.append(("rcp", "rtt", f"latency={latency:g}", util, jain))

        traj, mean = _tcp_mean_rates(_tcp_system(network), initial, steps)
        tcp_steady |= traj.outcome in (Outcome.CONVERGED,
                                       Outcome.DIVERGED)
        util = bottleneck_utilisation(network, mean)
        jain = float(jain_index(mean))
        bias_ratios.append(float(mean[0]) / max(float(mean[1]), 1e-12))
        tcp_rtt_rows.append((f"{latency:g}", util, jain))
        rows.append(("tcp-like", "rtt", f"latency={latency:g}", util,
                     jain))

    for title, grid_rows, label in (
            ("RCP, bandwidth sweep", rcp_bw_rows, "BW (mu)"),
            ("TCP-like, bandwidth sweep", tcp_bw_rows, "BW (mu)"),
            ("RCP, RTT sweep", rcp_rtt_rows, "Latency"),
            ("TCP-like, RTT sweep", tcp_rtt_rows, "Latency")):
        notes.append(title + ":")
        notes.extend("  " + line for line in format_grid(label, grid_rows))
    notes.append(
        f"RCP fixed-point utilisation x* = {x_star:.4f} "
        f"(alpha={RCP_ALPHA}, beta={RCP_BETA}); short/long AIMD rate "
        f"ratios over the RTT grid: "
        + ", ".join(f"{b:.2f}" for b in bias_ratios))

    return ExperimentResult(
        experiment_id="F13",
        title="Controller zoo: RCP vs TCP-like AIMD over bandwidth/RTT "
              "grids",
        columns=("controller", "grid", "point", "utilisation", "jain"),
        rows=rows,
        checks={
            "rcp_converges_at_every_grid_point": rcp_converged,
            "rcp_utilisation_matches_fixed_point":
                rcp_util_err <= 1e-3,
            "rcp_fair_at_equal_rtt": rcp_jain_min >= 0.999,
            "rcp_fair_across_rtt_grid": rcp_jain_rtt_min >= 0.999,
            "tcp_never_reaches_steady_state": not tcp_steady,
            "tcp_fair_at_equal_rtt": tcp_jain_equal_rtt >= 0.99,
            "tcp_rtt_bias_grows_with_latency_gap":
                bool(np.all(np.diff(bias_ratios) > 0.0)
                     and bias_ratios[-1] > 1.3),
        },
        notes=notes,
    )
