"""Experiment harnesses: one per paper table/figure (see DESIGN.md).

Use the registry::

    from repro.experiments import run, run_all, format_table
    print(format_table(run("F5")))
"""

from .base import ExperimentResult
from .exp_x6_faulty_feedback import run_x6_faulty_feedback
from .extensions import (run_x1_asynchrony, run_x2_feedback_delay,
                         run_x3_weighted_fairness,
                         run_x4_thinning_ablation,
                         run_x5_implicit_feedback)
from .registry import EXTENSIONS, REGISTRY, Experiment, get, run, run_all
from .report import format_summary, format_table, to_csv, to_json
from .table1 import run_table1
from .exp_f1_tsi import run_f1_tsi
from .exp_f2_manifold import run_f2_manifold
from .exp_f3_fair_construction import run_f3_fair_construction
from .exp_f4_individual_fair import run_f4_individual_fair
from .exp_f5_aggregate_instability import run_f5_aggregate_instability
from .exp_f6_bifurcation import run_f6_bifurcation
from .exp_f7_fs_stability import run_f7_fs_stability, staircase_network
from .exp_f8_heterogeneity import run_f8_heterogeneity
from .exp_f9_robustness import run_f9_robustness
from .exp_f10_delay_advantage import run_f10_delay_advantage
from .exp_f11_real_algorithms import run_f11_real_algorithms
from .exp_f12_sim_validation import run_f12_sim_validation
from .exp_f13_controller_zoo import run_f13_controller_zoo
from .exp_f14_async import (run_f14_async_invariance,
                            run_x8_clock_heterogeneity)

__all__ = [
    "ExperimentResult", "Experiment", "REGISTRY", "EXTENSIONS",
    "get", "run", "run_all",
    "run_x1_asynchrony", "run_x2_feedback_delay",
    "run_x3_weighted_fairness", "run_x4_thinning_ablation",
    "run_x5_implicit_feedback", "run_x6_faulty_feedback",
    "format_table", "format_summary", "to_csv", "to_json",
    "run_table1", "run_f1_tsi", "run_f2_manifold",
    "run_f3_fair_construction", "run_f4_individual_fair",
    "run_f5_aggregate_instability", "run_f6_bifurcation",
    "run_f7_fs_stability", "staircase_network", "run_f8_heterogeneity",
    "run_f9_robustness", "run_f10_delay_advantage",
    "run_f11_real_algorithms", "run_f12_sim_validation",
    "run_f13_controller_zoo", "run_f14_async_invariance",
    "run_x8_clock_heterogeneity",
]
