"""F4 — Theorem 3 + Corollary: individual feedback is guaranteed fair,
with a unique, discipline-independent steady state.

Across an ensemble of random networks and random initial conditions,
TSI individual feedback must always converge to the *same* allocation
whether the gateways run FIFO or Fair Share, and that allocation must
be fair.  (Contrast F2: aggregate feedback scatters across its
manifold.)
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem
from ..core.fairness import is_fair, unfairness
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.math_utils import sup_norm
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.steadystate import fair_steady_state
from ..core.topology import random_network
from .base import ExperimentResult

__all__ = ["run_f4_individual_fair"]


def run_f4_individual_fair(n_networks: int = 4, starts_per_network: int = 3,
                           eta: float = 0.08, beta: float = 0.5,
                           seed: int = 23) -> ExperimentResult:
    """Random-network ensemble; see module doc."""
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    rule = TargetRule(eta=eta, beta=beta)
    rng = np.random.default_rng(seed)

    rows = []
    all_fair = True
    all_unique = True
    all_discipline_independent = True
    for net_idx in range(n_networks):
        network = random_network(4, 6, seed=seed + 100 * net_idx,
                                 mu_range=(0.8, 2.5))
        predicted = fair_steady_state(network, rho_ss)
        scale = float(np.max(predicted))
        finals = {}
        for disc_name, discipline in (("fifo", Fifo()),
                                      ("fair-share", FairShare())):
            system = FlowControlSystem(network, discipline, signal, rule,
                                       style=FeedbackStyle.INDIVIDUAL)
            endpoints = []
            for _ in range(starts_per_network):
                start = rng.uniform(0.005, 0.3, network.num_connections)
                final = system.solve(start, max_steps=120000, tol=1e-11)
                endpoints.append(final)
            endpoints = np.asarray(endpoints)
            uniqueness_spread = float(np.max(endpoints.std(axis=0))) / max(
                scale, 1e-12)
            final = endpoints.mean(axis=0)
            finals[disc_name] = final
            fair = is_fair(system.scheme, final, tol=1e-5 * max(1.0, scale))
            gap_to_prediction = sup_norm(final, predicted) / max(scale,
                                                                 1e-12)
            all_fair &= fair
            all_unique &= uniqueness_spread < 1e-4
            rows.append((net_idx, disc_name, network.num_connections,
                         uniqueness_spread, gap_to_prediction, fair,
                         unfairness(system.scheme, final)))
        cross_gap = sup_norm(finals["fifo"], finals["fair-share"]) / max(
            scale, 1e-12)
        all_discipline_independent &= cross_gap < 1e-4

    return ExperimentResult(
        experiment_id="F4",
        title="Theorem 3: TSI individual feedback is guaranteed fair "
              "(unique, discipline-independent steady state)",
        columns=("network", "discipline", "connections",
                 "spread_across_starts", "rel_gap_to_waterfilling",
                 "fair", "unfairness"),
        rows=rows,
        checks={
            "every_steady_state_is_fair": all_fair,
            "steady_state_unique_across_starts": all_unique,
            "steady_state_independent_of_discipline":
                all_discipline_independent,
        },
    )
