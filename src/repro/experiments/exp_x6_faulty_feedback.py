"""X6 — extension: does robustness survive a *faulty* feedback path?

Theorem 5 (F9) proves the Fair-Share reservation floors assuming every
congestion signal arrives intact.  Real feedback paths lose bits: DECbit
fields get clipped, marked packets are dropped, acks are delayed.  X6
re-runs the F9 heterogeneous-greed mix while a seeded
:class:`~repro.faults.SignalLoss` injector withholds each connection's
signal with probability ``p`` per step (the connection keeps reacting
to the *last delivered* — i.e. stale — value), sweeping ``p`` over both
contested designs:

* aggregate feedback + FIFO — already shuts out the meek connection
  with perfect signals; loss must not resurrect it (the collapse is
  structural, not an artifact of timely feedback);
* individual feedback + Fair Share — Theorem 5's floors should *hold*
  under heavy loss, because the floor comes from the gateway's
  allocation law, not from the signal path: a stale signal delays a
  connection's convergence but cannot push its allocation below the
  Fair Share reservation.

The sweep runs through the resilient executor
(:func:`repro.parallel.sweep`), so ``checkpoint_dir`` resumes an
interrupted grid, and the whole experiment double-checks the fault
subsystem's contract: zero-loss points are bit-identical to fault-free
runs, and every faulty point is reproducible event-for-event.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.robustness import reservation_floor_heterogeneous
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import single_gateway
from ..faults import FaultPlan, SignalLoss
from ..parallel import sweep
from .base import ExperimentResult

__all__ = ["run_x6_faulty_feedback"]

_DISCIPLINES = {"fifo": Fifo, "fair-share": FairShare}
_TAIL = 200  # control steps averaged when a run does not converge


def _x6_system(disc_name, style_name, betas, eta):
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    rules = [TargetRule(eta=eta, beta=b) for b in betas]
    return FlowControlSystem(network, _DISCIPLINES[disc_name](),
                             LinearSaturating(), rules,
                             style=FeedbackStyle[style_name])


def _x6_point(args):
    """One (design, loss rate) cell of the X6 grid.

    Module-level and name-parameterised so the resilient sweep can hand
    it to a process pool; returns plain arrays/scalars so checkpointed
    chunks pickle cheaply.
    """
    (name, disc_name, style_name, betas, eta, steps, rate, extra,
     fault_seed) = args
    system = _x6_system(disc_name, style_name, betas, eta)
    injectors = tuple(extra) + (
        (SignalLoss(rate=rate),) if rate > 0.0 else ())
    plan = FaultPlan(injectors=injectors, seed=fault_seed)
    traj = system.run(np.full(len(betas), 0.1), max_steps=steps,
                      tol=1e-11, faults=plan)
    final = (traj.final if traj.outcome is Outcome.CONVERGED
             else traj.tail(_TAIL).mean(axis=0))
    n_events = len(traj.fault_events) if traj.fault_events else 0
    return name, rate, final, traj.outcome.value, n_events


def run_x6_faulty_feedback(betas=(0.7, 0.6, 0.5, 0.4),
                           eta: float = 0.04,
                           steps: int = 20000,
                           loss_rates=(0.0, 0.2, 0.5, 0.8),
                           fault_seed: int = 101,
                           faults: FaultPlan = None,
                           workers: int = None,
                           checkpoint_dir=None) -> ExperimentResult:
    """Robustness floors under lossy/stale feedback; see module doc.

    Args:
        betas: per-connection greed targets (the F9 heterogeneous mix).
        eta: TSI gain of every target rule.
        steps: map applications per grid point (faulty points rarely
            converge to tolerance; the tail mean is the attractor
            estimate).
        loss_rates: per-step signal-loss probabilities to sweep;
            include ``0.0`` to keep the fault-free reference point (and
            its bit-identity check) in the grid.
        fault_seed: seed of every injected plan — the whole experiment
            is deterministic in (parameters, this seed).
        faults: optional extra :class:`~repro.faults.FaultPlan` (e.g.
            from ``--faults`` on the CLI) whose injectors are applied
            to *every* grid point on top of the swept signal loss.
        workers / checkpoint_dir: passed to the resilient
            :func:`repro.parallel.sweep` (``--resume DIR`` on the CLI
            resumes an interrupted sweep from ``DIR``).
    """
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    signal = LinearSaturating()
    rho_vec = np.array([signal.steady_state_utilisation(b) for b in betas])
    floors = reservation_floor_heterogeneous(network, rho_vec)
    extra = tuple(faults.injectors) if faults is not None else ()

    configs = (
        ("aggregate+fifo", "fifo", "AGGREGATE"),
        ("individual+fair-share", "fair-share", "INDIVIDUAL"),
    )
    grid = [(name, disc, style, tuple(betas), eta, steps, float(rate),
             extra, fault_seed)
            for name, disc, style in configs
            for rate in loss_rates]
    points = sweep(_x6_point, grid, workers=workers,
                   checkpoint_dir=checkpoint_dir)

    rows = []
    min_ratio = {}  # (design, rate) -> worst floor ratio
    events_at = {}
    for name, rate, final, outcome_value, n_events in points:
        ratios = final / floors
        min_ratio[(name, rate)] = float(np.min(ratios))
        events_at[(name, rate)] = n_events
        for i in range(n):
            rows.append((name, float(rate), i, betas[i], float(final[i]),
                         float(floors[i]), float(ratios[i]),
                         outcome_value, n_events))

    fs = "individual+fair-share"
    agg = "aggregate+fifo"
    lossy = [r for r in loss_rates if r > 0.0]
    fs_floor_worst = min(min_ratio[(fs, r)] for r in loss_rates)
    agg_worst = min(min_ratio[(agg, r)] for r in loss_rates)

    checks = {
        # Theorem 5's floors survive every injected loss rate.
        "fair_share_floor_survives_loss": fs_floor_worst >= 1.0 - 1e-2,
        # The aggregate shutout is structural: loss never rescues the
        # meek connection.
        "aggregate_stays_collapsed_under_loss": agg_worst < 1e-3,
        "faulty_points_injected_events":
            all(events_at[(name, r)] > 0
                for name, _, _ in configs for r in lossy),
    }
    notes = [
        f"worst FS floor ratio over loss rates {tuple(loss_rates)}: "
        f"{fs_floor_worst:.4f}",
        f"worst aggregate+FIFO floor ratio: {agg_worst:.2e}",
    ]

    if lossy:
        # Determinism: replaying the heaviest-loss FS point must
        # reproduce the tail rates and the event count exactly.
        probe = (fs, "fair-share", "INDIVIDUAL", tuple(betas), eta,
                 steps, float(max(lossy)), extra, fault_seed)
        name_r, rate_r, final_r, _, events_r = _x6_point(probe)
        original = next(
            (f, e) for nm, r, f, _, e in points
            if nm == fs and r == float(max(lossy)))
        checks["loss_injection_is_deterministic"] = bool(
            np.array_equal(final_r, original[0])
            and events_r == original[1])

    if 0.0 in loss_rates and not extra:
        # Empty-plan contract: the zero-loss grid points must be
        # bit-identical to runs that never heard of faults.
        ok = True
        for name, disc, style in configs:
            system = _x6_system(disc, style, betas, eta)
            traj = system.run(np.full(n, 0.1), max_steps=steps,
                              tol=1e-11)
            clean = (traj.final if traj.outcome is Outcome.CONVERGED
                     else traj.tail(_TAIL).mean(axis=0))
            swept = next(f for nm, r, f, _, _ in points
                         if nm == name and r == 0.0)
            ok &= bool(np.array_equal(clean, swept))
        checks["zero_loss_bit_identical_to_fault_free"] = ok
    if extra:
        notes.append(f"extra plan on every point: {faults.describe()}")

    return ExperimentResult(
        experiment_id="X6",
        title="Extension: robustness floors under lossy/stale feedback "
              "(Fair Share holds, aggregate stays collapsed)",
        columns=("design", "loss_rate", "connection", "beta_target",
                 "tail_rate", "reservation_floor", "floor_ratio",
                 "outcome", "fault_events"),
        rows=rows,
        checks=checks,
        notes=notes,
    )
