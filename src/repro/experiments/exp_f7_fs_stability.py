"""F7 — Theorem 4: Fair Share makes unilateral stability systemic.

Three demonstrations:

1. **Structure.**  At any rate vector with distinct rates, the Jacobian
   of TSI individual feedback with Fair Share is *triangular* in
   increasing-rate order — a connection's update never depends on any
   faster connection — so its eigenvalues are exactly its diagonal (the
   unilateral margins).  With FIFO gateways the same Jacobian has large
   upper-triangle entries (the small connection's signal tracks the big
   ones through ``rho_total``).  We also confirm eigenvalue = diagonal
   at an all-distinct-rates *steady state* (a staircase topology).

2. **Detectability.**  With the absolute-gain rule ``f = eta (beta-b)``
   and many connections, instability exists under every design — but
   under individual+Fair Share the one-sided *unilateral* margin itself
   exceeds 1 (each connection can see the trouble by probing its own
   rate), whereas under aggregate feedback every connection measures a
   comfortable ``|1 - eta| < 1`` while the system diverges (F5).

3. **Guaranteed unilateral stability ⇒ systemic stability.**  The
   paper's guaranteed-unilaterally-stable rule ``f = eta r (beta - b)``
   (``eta < 2``) with individual+Fair Share converges for every N —
   Theorem 4 in action.  The same rule under aggregate feedback also
   converges here, which is *evidence for* (not proof of) the paper's
   conjecture that guaranteed unilateral stability suffices for
   aggregate feedback too.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.ratecontrol import ProportionalTargetRule, TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.stability import (analyze, jacobian, triangularity_defect,
                              unilateral_margins)
from ..core.steadystate import fair_steady_state
from ..core.topology import Connection, Gateway, Network, single_gateway
from .base import ExperimentResult

__all__ = ["staircase_network", "run_f7_fs_stability"]


def staircase_network() -> Network:
    """Three nested gateways whose fair point has all-distinct rates.

    ``g1 (mu=0.4) ⊃ {c1}``, ``g2 (mu=1.0) ⊃ {c1, c2}``,
    ``g3 (mu=2.0) ⊃ {c1, c2, c3}``.  With ``rho_ss = 0.5`` water-filling
    gives rates (0.2, 0.3, 0.5): every connection is bottlenecked at a
    different gateway, so no ties blur the eigenvalue measurement.
    """
    gws = [Gateway("g1", 0.4), Gateway("g2", 1.0), Gateway("g3", 2.0)]
    conns = [
        Connection("c1", ("g1", "g2", "g3")),
        Connection("c2", ("g2", "g3")),
        Connection("c3", ("g3",)),
    ]
    return Network(gws, conns)


def run_f7_fs_stability(eta: float = 0.3, beta: float = 0.5,
                        n_values=(4, 8, 12, 20),
                        prop_eta: float = 1.0,
                        perturbation: float = 1e-2,
                        seed: int = 5) -> ExperimentResult:
    """Triangularity, detectability, and guaranteed stability."""
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    abs_rule = TargetRule(eta=eta, beta=beta)
    prop_rule = ProportionalTargetRule(eta=prop_eta, beta=beta)
    rng = np.random.default_rng(seed)
    rows = []

    # Part 1a: triangular structure at a generic distinct-rate point.
    probe_net = single_gateway(3, mu=1.0)
    probe_rates = np.array([0.1, 0.25, 0.4])
    defects = {}
    for name, discipline in (("fair-share", FairShare()),
                             ("fifo", Fifo())):
        system = FlowControlSystem(probe_net, discipline, signal, abs_rule,
                                   style=FeedbackStyle.INDIVIDUAL)
        df = jacobian(system, probe_rates, rel_step=1e-7)
        defects[name] = triangularity_defect(df, probe_rates)
        rows.append(("structure@generic", name, defects[name],
                     "triangularity defect"))

    # Part 1b: eigenvalues equal the diagonal at a distinct-rate steady
    # state (staircase).
    stair = staircase_network()
    fair = fair_steady_state(stair, rho_ss)
    fs_system = FlowControlSystem(stair, FairShare(), signal, abs_rule,
                                  style=FeedbackStyle.INDIVIDUAL)
    report = analyze(fs_system, fair, rel_step=1e-7)
    eig_vs_diag = float(np.max(np.abs(
        np.sort(np.abs(report.eigenvalues))
        - np.sort(report.unilateral_margins))))
    rows.append(("structure@staircase-ss", "fair-share", eig_vs_diag,
                 "max |eig - diag|"))

    # Part 2: instability is unilaterally detectable under FS.
    detectable_matches = True
    for n in n_values:
        net_n = single_gateway(n, mu=1.0)
        fair_n = fair_steady_state(net_n, rho_ss)
        fs_n = FlowControlSystem(net_n, FairShare(), signal, abs_rule,
                                 style=FeedbackStyle.INDIVIDUAL)
        df_down = jacobian(fs_n, fair_n, rel_step=1e-7, scheme="backward")
        margin = float(np.max(unilateral_margins(df_down)))
        start = np.clip(fair_n * (1.0 + 1e-3 * rng.standard_normal(n)),
                        0.0, None)
        traj = fs_n.run(start, max_steps=20000, tol=1e-10)
        stable = traj.outcome is Outcome.CONVERGED
        detectable_matches &= (stable == (margin < 1.0))
        rows.append((f"detectability(N={n})", "fair-share", margin,
                     f"one-sided unilateral margin; outcome="
                     f"{traj.outcome.value}"))

    # Part 3: the guaranteed-unilaterally-stable rule converges for
    # every N under individual+FS (Theorem 4) and — conjecture
    # evidence — under aggregate feedback too.
    fs_prop_all = True
    agg_prop_all = True
    for n in n_values:
        net_n = single_gateway(n, mu=1.0)
        fair_n = fair_steady_state(net_n, rho_ss)
        start = np.clip(
            fair_n * (1.0 + perturbation * rng.standard_normal(n)),
            1e-4, None)
        fs_prop = FlowControlSystem(net_n, FairShare(), signal, prop_rule,
                                    style=FeedbackStyle.INDIVIDUAL)
        fs_out = fs_prop.run(start, max_steps=30000, tol=1e-10).outcome
        agg_prop = FlowControlSystem(net_n, Fifo(), signal, prop_rule,
                                     style=FeedbackStyle.AGGREGATE)
        agg_out = agg_prop.run(start, max_steps=30000, tol=1e-10).outcome
        fs_prop_all &= fs_out is Outcome.CONVERGED
        agg_prop_all &= agg_out is Outcome.CONVERGED
        rows.append((f"guaranteed(N={n})", "fs-individual+prop-rule",
                     float("nan"), fs_out.value))
        rows.append((f"guaranteed(N={n})", "aggregate+prop-rule",
                     float("nan"), agg_out.value))

    return ExperimentResult(
        experiment_id="F7",
        title="Theorem 4: Fair Share — triangular DF, unilateral "
              "stability is systemic stability",
        columns=("part", "design", "value", "detail"),
        rows=rows,
        checks={
            "fair_share_jacobian_triangular":
                defects["fair-share"] < 1e-4,
            "fifo_jacobian_not_triangular": defects["fifo"] > 1e-2,
            "fs_eigenvalues_are_diagonal_at_steady_state":
                eig_vs_diag < 1e-4,
            "fs_instability_is_unilaterally_detectable":
                detectable_matches,
            "guaranteed_unilateral_rule_converges_under_fs_for_all_N":
                fs_prop_all,
            "conjecture_evidence_aggregate_prop_rule_converges":
                agg_prop_all,
        },
        notes=[
            "with the absolute-gain rule, aggregate feedback hides the "
            "instability from each connection (margin |1 - eta|) while "
            "FS exposes it in the one-sided self-measurement",
        ],
    )
