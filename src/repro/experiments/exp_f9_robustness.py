"""F9 — Theorem 5: robustness under heterogeneous rate adjustment.

Four connections share a gateway, each running a TSI target rule with a
*different* greed level (target signal).  We compare three designs:

* aggregate feedback + FIFO — the meek connections are shut out
  entirely (floor ratio -> 0);
* individual feedback + FIFO — everybody keeps some throughput, but the
  meekest falls below its reservation floor (FIFO violates Theorem 5's
  condition ``Q_i <= r_i / (mu - N r_i)``);
* individual feedback + Fair Share — every connection reaches at least
  its floor (FS satisfies the condition; the smallest connection meets
  it with equality).

The floor is per-connection: ``rho_ss_i * mu / N`` with each
connection's own steady utilisation (the reservation baseline of
Section 2.4.4).  We also spot-check Theorem 5's queue-law condition
directly on random rate vectors.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.ratecontrol import TargetRule
from ..core.robustness import (reservation_floor_heterogeneous,
                               theorem5_condition_batch)
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.topology import single_gateway
from ..parallel import sweep
from .base import ExperimentResult

__all__ = ["run_f9_robustness"]

_DISCIPLINES = {"fifo": Fifo, "fair-share": FairShare}


def _f9_design(args):
    """Run one (discipline, feedback style) design to its attractor.

    Module-level so :func:`repro.parallel.sweep` can hand the three
    designs to a process pool; the discipline and style travel as names
    and are rebuilt here, keeping the payload trivially picklable.
    """
    name, disc_name, style_name, betas, eta, steps = args
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    rules = [TargetRule(eta=eta, beta=b) for b in betas]
    system = FlowControlSystem(network, _DISCIPLINES[disc_name](),
                               LinearSaturating(), rules,
                               style=FeedbackStyle[style_name])
    traj = system.run(np.full(n, 0.1), max_steps=steps, tol=1e-11)
    final = (traj.final if traj.outcome is Outcome.CONVERGED
             else traj.tail(200).mean(axis=0))
    return name, final, traj.outcome.value


def run_f9_robustness(betas=(0.7, 0.6, 0.5, 0.4), eta: float = 0.04,
                      steps: int = 60000,
                      condition_trials: int = 200,
                      seed: int = 13,
                      workers: int = None) -> ExperimentResult:
    """Heterogeneous greed mix across the three designs.

    The three designs are independent long runs, so they go through
    :func:`repro.parallel.sweep`; the Theorem 5 spot-check evaluates
    all random rate vectors with the batched queue laws.
    """
    n = len(betas)
    network = single_gateway(n, mu=1.0)
    signal = LinearSaturating()
    rho_vec = np.array([signal.steady_state_utilisation(b) for b in betas])
    floors = reservation_floor_heterogeneous(network, rho_vec)

    configs = (
        ("aggregate+fifo", "fifo", "AGGREGATE"),
        ("individual+fifo", "fifo", "INDIVIDUAL"),
        ("individual+fair-share", "fair-share", "INDIVIDUAL"),
    )
    grid = [(name, disc, style, tuple(betas), eta, steps)
            for name, disc, style in configs]
    rows = []
    min_ratio = {}
    for name, final, outcome_value in sweep(_f9_design, grid,
                                            workers=workers):
        ratios = final / floors
        min_ratio[name] = float(np.min(ratios))
        for i in range(n):
            rows.append((name, i, betas[i], float(final[i]),
                         float(floors[i]), float(ratios[i]),
                         outcome_value))

    rng = np.random.default_rng(seed)
    trial_rates = rng.uniform(0.0, 0.35, size=(condition_trials, n))
    fifo_violations = int(np.sum(
        ~theorem5_condition_batch(Fifo(), trial_rates, 1.0)))
    fs_violations = int(np.sum(
        ~theorem5_condition_batch(FairShare(), trial_rates, 1.0)))

    return ExperimentResult(
        experiment_id="F9",
        title="Theorem 5: robustness — floor ratios under heterogeneous "
              "greed (aggregate vs FIFO vs Fair Share)",
        columns=("design", "connection", "beta_target", "final_rate",
                 "reservation_floor", "floor_ratio", "outcome"),
        rows=rows,
        checks={
            "fair_share_meets_every_floor":
                min_ratio["individual+fair-share"] >= 1.0 - 1e-3,
            "fifo_individual_misses_a_floor":
                0.0 < min_ratio["individual+fifo"] < 1.0 - 1e-3,
            "aggregate_shuts_someone_out":
                min_ratio["aggregate+fifo"] < 1e-3,
            "fifo_queue_law_violates_theorem5_condition":
                fifo_violations > 0,
            "fair_share_queue_law_satisfies_theorem5_condition":
                fs_violations == 0,
        },
        notes=[
            f"min floor ratios: {min_ratio}",
            f"Theorem 5 condition violations over {condition_trials} "
            f"random rate vectors: fifo={fifo_violations}, "
            f"fair-share={fs_violations}",
        ],
    )
