"""F14 / X8 — the heterogeneous-clock asynchronous engine as physics.

The paper's steady-state theory is synchronous: every source applies
its rule every step.  The asynchronous engine
(:mod:`repro.core.asynchronous`) relaxes that to per-source update
clocks and stale signals, and the theory survives in two distinct ways
these experiments measure:

* **F14 — invariance.**  Fixed points do not depend on the clock: a
  fixed point of the synchronous map is a fixed point of every
  schedule x delay combination (whoever updates, with however stale a
  signal, recomputes the same rate), so every converging async run
  under individual feedback lands on the *same* unique steady state.
  Stability, by contrast, is a property of the *path*: the aggregate
  overshoot case ``eta N > 2`` diverges synchronously yet converges
  under a round-robin (Gauss-Seidel) schedule — asynchrony as a
  stabiliser, the discrete cousin of F10's delay-advantage bound.

* **X8 — degradation.**  Sweeping a slow/fast clock mix from
  homogeneous to a 20x heterogeneity ratio: the steady state itself
  stays put (TSI deviation and fairness-manifold residual flat at
  numerical noise) while the *transient* pays — steps-to-converge
  grows with the heterogeneity ratio as the slowest clocks gate the
  last quiet sweep.  Jain's fairness index of the tick rates tracks
  the clock imbalance being injected.
"""

from __future__ import annotations

import numpy as np

from ..core.asynchronous import (BernoulliSchedule, BurstyClock,
                                 ClockSchedule, RateMixClock,
                                 RoundRobinSchedule, SynchronousSchedule,
                                 run_async_ensemble)
from ..core.dynamics import FlowControlSystem, Outcome
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.math_utils import sup_norm
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.steadystate import fair_steady_state
from ..core.topology import single_gateway
from .base import ExperimentResult

__all__ = ["run_f14_async_invariance", "run_x8_clock_heterogeneity"]


def _individual_system(n, eta, beta=0.5, mu=1.0):
    return FlowControlSystem(single_gateway(n, mu=mu), FairShare(),
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=beta),
                             style=FeedbackStyle.INDIVIDUAL)


def _aggregate_system(n, eta, beta=0.5, mu=1.0):
    return FlowControlSystem(single_gateway(n, mu=mu), Fifo(),
                             LinearSaturating(),
                             TargetRule(eta=eta, beta=beta),
                             style=FeedbackStyle.AGGREGATE)


def _schedule_family(seed):
    """(name, schedule, slowest instantaneous tick rate) triples.

    The slowest rate sizes the settle window: a rarely-ticking source
    must stay quiet for several of its own expected tick intervals
    before a run is declared converged, otherwise a lucky silent
    stretch of an off-equilibrium slow clock reads as convergence.
    """
    return [
        ("synchronous", SynchronousSchedule(), 1.0),
        ("round-robin", RoundRobinSchedule(), 1.0),
        ("bernoulli", BernoulliSchedule(0.5, seed=seed), 0.5),
        ("mix-clock", ClockSchedule(RateMixClock(0.25, 1.0, 0.5,
                                                 seed=seed)), 0.25),
        ("bursty-clock", ClockSchedule(BurstyClock(0.9, 0.2, 8,
                                                   seed=seed)), 0.2),
    ]


def _settle_for(sched, n, tau, slowest):
    base = 2 * sched.steps_per_sweep(n) + tau + 3
    return max(base, int(np.ceil(10.0 / slowest)) + tau)


def run_f14_async_invariance(n: int = 6,
                             eta: float = 0.04,
                             delays=(0, 2, 5),
                             steps: int = 20000,
                             unstable_n: int = 12,
                             unstable_eta: float = 0.3,
                             unstable_steps: int = 60000,
                             seed: int = 14) -> ExperimentResult:
    """Fixed-point invariance across the schedule x delay grid, plus
    the round-robin rescue of the divergent synchronous case.

    Args:
        n: connections of the individual-feedback reference system.
        eta: its TSI gain — small enough that the *largest* delay in
            ``delays`` still converges synchronously (stale feedback
            shrinks the stability region; that threshold is F10's
            subject, not this experiment's).
        delays: signal delays (in steps) crossed with every schedule.
        steps: async budget per grid cell.
        unstable_n / unstable_eta: the aggregate overshoot case
            (``eta N > 2`` diverges synchronously).
        unstable_steps: budget for the round-robin rescue (a full
            Gauss-Seidel sweep costs ``unstable_n`` steps).
        seed: seeds the stochastic schedules and the perturbed start.
    """
    system = _individual_system(n, eta)
    rng = np.random.default_rng(seed)
    start = rng.uniform(0.02, 0.4 / n, size=n)
    sync = system.run(start, max_steps=steps, tol=1e-11)
    reference = sync.final
    scale = max(1.0, float(np.max(reference)))

    rows = []
    worst = 0.0
    all_converged = sync.outcome is Outcome.CONVERGED
    for name, sched, slowest in _schedule_family(seed):
        for tau in delays:
            ens = run_async_ensemble(system, start[np.newaxis],
                                     schedule=sched, signal_delay=tau,
                                     max_steps=steps, tol=1e-11,
                                     settle=_settle_for(sched, n, tau,
                                                        slowest))
            deviation = sup_norm(ens.finals[0], reference) / scale
            converged = ens.outcomes[0] is Outcome.CONVERGED
            all_converged = all_converged and converged
            worst = max(worst, deviation)
            sweeps = int(ens.steps[0]) / sched.steps_per_sweep(n)
            rows.append((name, int(tau), ens.outcomes[0].value,
                         int(ens.steps[0]), float(sweeps),
                         float(deviation)))

    # The aggregate overshoot case: synchronous divergence, sequential
    # convergence — onto the same fair fixed point.
    unstable = _aggregate_system(unstable_n, unstable_eta)
    fair = fair_steady_state(single_gateway(unstable_n), 0.5)
    wobble = np.clip(fair * (1 + 1e-3 * rng.standard_normal(unstable_n)),
                     0.0, None)
    sync_bad = unstable.run(wobble, max_steps=4000, tol=1e-10)
    rescue = run_async_ensemble(unstable, wobble[np.newaxis],
                                schedule=RoundRobinSchedule(),
                                max_steps=unstable_steps, tol=1e-10)
    rescued = rescue.outcomes[0] is Outcome.CONVERGED
    rescue_error = abs(float(rescue.finals[0].sum()) - 0.5)
    rows.append(("round-robin-rescue", 0, rescue.outcomes[0].value,
                 int(rescue.steps[0]),
                 float(int(rescue.steps[0]) / unstable_n),
                 float(rescue_error)))

    checks = {
        "every_schedule_delay_cell_converged": all_converged,
        "async_steady_states_equal_synchronous": worst <= 1e-6,
        "sync_overshoot_does_not_converge":
            sync_bad.outcome is not Outcome.CONVERGED,
        "round_robin_rescues_divergent_sync":
            rescued and rescue_error <= 1e-5,
    }
    notes = [
        f"max relative deviation from the synchronous fixed point: "
        f"{worst:.3e} over {len(rows) - 1} schedule x delay cells",
        f"eta N = {unstable_eta * unstable_n:.1f} > 2: synchronous "
        f"{sync_bad.outcome.value}, round-robin "
        f"{rescue.outcomes[0].value}",
    ]
    return ExperimentResult(
        experiment_id="F14",
        title="Asynchronous invariance: fixed points survive every "
              "schedule and delay; round-robin stabilises the "
              "divergent aggregate case",
        columns=("schedule", "delay", "outcome", "steps", "sweeps",
                 "deviation"),
        rows=rows,
        checks=checks,
        notes=notes,
    )


def run_x8_clock_heterogeneity(n: int = 8,
                               eta: float = 0.1,
                               beta: float = 0.5,
                               slow_rates=(1.0, 0.5, 0.25, 0.1, 0.05),
                               slow_fraction: float = 0.5,
                               steps: int = 120000,
                               c: float = 2.0,
                               seed: int = 8) -> ExperimentResult:
    """TSI, fairness-manifold residual, and Fair-Share convergence cost
    vs the clock-heterogeneity ratio.

    Each cell runs a slow/fast :class:`RateMixClock` with
    ``fast_rate = 1`` and the given ``slow_rate`` (heterogeneity ratio
    ``1 / slow_rate``).  Settle windows scale with the slowest clock so
    a quiet stretch of a rarely-ticking source is never mistaken for
    convergence.

    Args:
        n: connections on the shared gateway.
        eta / beta: the homogeneous TSI rule.
        slow_rates: slow-clock tick rates to sweep (1.0 first gives the
            homogeneous baseline the degradation check compares to).
        slow_fraction: fraction of sources assigned the slow clock.
        steps: async budget per cell (the harshest clock needs roughly
            ``synchronous steps / slow_rate``).
        c: the TSI capacity scaling factor.
        seed: seeds every clock in the sweep.
    """
    start = np.full(n, 0.05)
    rows = []
    all_converged = True
    worst_tsi = 0.0
    worst_manifold = 0.0
    steps_by_ratio = []
    fairness_by_ratio = []
    for slow in slow_rates:
        clock = RateMixClock(slow, 1.0, slow_fraction, seed=seed)
        sched = ClockSchedule(clock)
        het = clock.heterogeneity
        jain = clock.fairness_index(n)
        # The slowest source must stay quiet for several of its own
        # expected tick intervals before convergence is declared.
        settle = max(2 * sched.steps_per_sweep(n) + 3,
                     int(round(8.0 / slow)))

        def run_clocked(system, initial):
            return run_async_ensemble(system, initial[np.newaxis],
                                      schedule=sched, signal_delay=0,
                                      max_steps=steps, tol=1e-11,
                                      settle=settle)

        # Fair Share / individual feedback: the unique steady state.
        base = run_clocked(_individual_system(n, eta, beta), start)
        scaled = run_clocked(_individual_system(n, eta, beta, mu=c),
                             c * start)
        # Aggregate feedback: membership of the fairness manifold is a
        # zero residual of the synchronous aggregate map.
        agg_system = _aggregate_system(n, eta, beta)
        agg = run_clocked(agg_system, start)

        converged = all(r.outcomes[0] is Outcome.CONVERGED
                        for r in (base, scaled, agg))
        all_converged = all_converged and converged
        ref = base.finals[0]
        tsi_dev = sup_norm(scaled.finals[0] / c, ref) \
            / max(1e-12, float(np.max(ref)))
        manifold = sup_norm(agg_system.step(agg.finals[0]),
                            agg.finals[0])
        n_steps = int(base.steps[0])
        worst_tsi = max(worst_tsi, tsi_dev)
        worst_manifold = max(worst_manifold, manifold)
        steps_by_ratio.append(n_steps)
        fairness_by_ratio.append(jain)
        rows.append((float(slow), float(het), float(jain),
                     float(tsi_dev), float(manifold), n_steps,
                     float(n_steps / sched.steps_per_sweep(n)),
                     base.outcomes[0].value))

    checks = {
        "every_cell_converged": all_converged,
        # Theorem 1 survives any clock: scaling mu by c scales the
        # async steady state by c.
        "tsi_invariant_under_heterogeneous_clocks": worst_tsi <= 1e-4,
        # Theorem 2 survives any clock: async aggregate steady states
        # still sit on the manifold (zero synchronous-map residual).
        "manifold_residual_stays_numerical": worst_manifold <= 1e-4,
        # Stability is where heterogeneity bites: the harshest clock
        # mix needs more raw steps than the homogeneous baseline.
        "fs_convergence_degrades_with_heterogeneity":
            steps_by_ratio[-1] > steps_by_ratio[0],
        "fairness_index_tracks_imbalance":
            fairness_by_ratio[-1] < fairness_by_ratio[0],
    }
    notes = [
        f"heterogeneity ratios swept: "
        f"{[round(1.0 / s, 1) for s in slow_rates]}",
        f"worst TSI deviation {worst_tsi:.3e}; worst manifold "
        f"residual {worst_manifold:.3e}",
        f"steps to converge: {steps_by_ratio[0]} (homogeneous) -> "
        f"{steps_by_ratio[-1]} (ratio {1.0 / slow_rates[-1]:.0f}x)",
    ]
    return ExperimentResult(
        experiment_id="X8",
        title="Extension: steady states survive clock heterogeneity; "
              "convergence cost does not",
        columns=("slow_rate", "heterogeneity", "fairness_index",
                 "tsi_deviation", "manifold_residual", "steps",
                 "sweeps", "outcome"),
        rows=rows,
        checks=checks,
        notes=notes,
    )
