"""F3 — Theorem 2(2): the fair-point construction (water-filling).

The proof of Theorem 2 constructs the unique fair steady state by
repeatedly saturating the gateway with the smallest per-connection
share ``rho_ss mu^a / N^a``.  We verify the construction against the
converged dynamics of TSI *individual* feedback (whose unique steady
state must equal it, by the Corollary to Theorem 3) on several
multi-gateway topologies, and check the constructed point satisfies the
aggregate steady-state conditions.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import FlowControlSystem
from ..core.fairness import is_fair
from ..core.fairshare import FairShare
from ..core.math_utils import sup_norm
from ..core.ratecontrol import TargetRule
from ..core.signals import FeedbackStyle, LinearSaturating
from ..core.steadystate import (fair_steady_state,
                                is_aggregate_steady_state)
from ..core.topology import (parking_lot, random_network, single_gateway,
                             two_gateway_shared)
from .base import ExperimentResult

__all__ = ["run_f3_fair_construction"]


def run_f3_fair_construction(eta: float = 0.08,
                             beta: float = 0.5,
                             random_seed: int = 11) -> ExperimentResult:
    """Water-filling vs converged dynamics across topologies."""
    signal = LinearSaturating()
    rho_ss = signal.steady_state_utilisation(beta)
    rule = TargetRule(eta=eta, beta=beta)
    topologies = {
        "single-gateway(4)": single_gateway(4, mu=1.0),
        "two-gateway-shared(mu=1,2)": two_gateway_shared(1.0, 2.0),
        "parking-lot(4 hops)": parking_lot(4, mu=1.0),
        "random(5 gw, 7 conn)": random_network(5, 7, seed=random_seed,
                                               mu_range=(0.8, 2.5)),
    }
    rows = []
    worst_gap = 0.0
    all_fair = True
    all_manifold = True
    for name, network in topologies.items():
        constructed = fair_steady_state(network, rho_ss)
        system = FlowControlSystem(network, FairShare(), signal, rule,
                                   style=FeedbackStyle.INDIVIDUAL)
        start = np.full(network.num_connections, 0.01 * min(
            network.mu(g) for g in network.gateway_names))
        dynamic = system.solve(start, max_steps=80000, tol=1e-11)
        gap = sup_norm(constructed, dynamic) / max(
            1e-12, float(np.max(constructed)))
        worst_gap = max(worst_gap, gap)
        fair = is_fair(system.scheme, constructed, tol=1e-7)
        manifold = is_aggregate_steady_state(network, rho_ss, constructed,
                                             tol=1e-7)
        all_fair &= fair
        all_manifold &= manifold
        rows.append((name, network.num_connections,
                     float(np.min(constructed)), float(np.max(constructed)),
                     gap, fair, manifold))

    return ExperimentResult(
        experiment_id="F3",
        title="Theorem 2(2): water-filling constructs the unique fair "
              "steady state",
        columns=("topology", "connections", "min_rate", "max_rate",
                 "rel_gap_to_dynamics", "constructed_point_fair",
                 "on_aggregate_manifold"),
        rows=rows,
        checks={
            "construction_matches_converged_dynamics": worst_gap < 1e-4,
            "constructed_points_are_fair": all_fair,
            "constructed_points_are_steady": all_manifold,
        },
    )
