"""Ambient collector sessions.

The engine and the sweep runner do not know who wants their telemetry;
they emit to whatever :class:`CollectorSession` is active.  Sessions
nest (an outer session sees everything inner ones see) and collection
is strictly opt-in: with no session active, :func:`is_collecting` is a
single list check and the hot loops skip all bookkeeping.

    from repro import observability as obs

    with obs.collect() as session:
        system.run_ensemble(starts)
    print(session.run_records[0].phase_seconds)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import List, Optional

from .metrics import MetricsRegistry
from .record import RunRecord, SweepRecord

__all__ = ["CollectorSession", "collect", "active_session",
           "is_collecting", "emit_run_record", "emit_sweep_record"]


class CollectorSession:
    """Everything emitted while the session was active."""

    def __init__(self):
        self.run_records: List[RunRecord] = []
        self.sweep_records: List[SweepRecord] = []
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()

    def add_run_record(self, record: RunRecord) -> None:
        with self._lock:
            self.run_records.append(record)

    def add_sweep_record(self, record: SweepRecord) -> None:
        with self._lock:
            self.sweep_records.append(record)

    def to_dict(self) -> dict:
        """JSON-safe view of the whole session."""
        with self._lock:
            return {
                "run_records": [r.to_dict() for r in self.run_records],
                "sweep_records": [r.to_dict()
                                  for r in self.sweep_records],
                "metrics": self.metrics.snapshot(),
            }


_STACK: List[CollectorSession] = []
_STACK_LOCK = threading.Lock()


@contextmanager
def collect():
    """Activate a new :class:`CollectorSession` for the ``with`` body."""
    session = CollectorSession()
    with _STACK_LOCK:
        _STACK.append(session)
    try:
        yield session
    finally:
        with _STACK_LOCK:
            _STACK.remove(session)


def active_session() -> Optional[CollectorSession]:
    """The innermost active session, or ``None``."""
    return _STACK[-1] if _STACK else None


def is_collecting() -> bool:
    """True when at least one session is active."""
    return bool(_STACK)


def emit_run_record(record: RunRecord) -> None:
    """Deliver a finished run record to every active session."""
    with _STACK_LOCK:
        sessions = list(_STACK)
    for session in sessions:
        session.add_run_record(record)


def emit_sweep_record(record: SweepRecord) -> None:
    """Deliver a finished sweep record to every active session."""
    with _STACK_LOCK:
        sessions = list(_STACK)
    for session in sessions:
        session.add_sweep_record(record)
