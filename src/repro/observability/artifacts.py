"""Schema-checked JSON artifacts for experiment runs.

One artifact = one experiment run: provenance, the experiment's
rows/checks, and every :class:`~repro.observability.record.RunRecord` /
:class:`~repro.observability.record.SweepRecord` the engine emitted
while it ran.  The CLI's ``--json-dir`` flag writes one per experiment;
:func:`validate_artifact` is the hand-rolled schema check (no external
schema library) used by tests and by the writer itself.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Optional, Union

from ..errors import ArtifactError
from .provenance import provenance
from .record import validate_run_record
from .session import CollectorSession

__all__ = ["ARTIFACT_SCHEMA", "experiment_artifact", "write_artifact",
           "write_experiment_artifact", "validate_artifact"]

#: Schema identifier embedded in every artifact file.
ARTIFACT_SCHEMA = "repro.experiment-artifact/v1"


def _json_safe(value):
    """Recursively make a value strict-JSON representable."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _json_safe(value.item())
    return repr(value)


def experiment_artifact(result, session: Optional[CollectorSession] = None,
                        seed=None, config=None) -> dict:
    """Build the artifact dictionary for one experiment result.

    ``result`` is an :class:`~repro.experiments.base.ExperimentResult`
    (anything exposing ``to_dict()`` or the same attributes works — the
    package stays import-independent of :mod:`repro.experiments`).
    """
    if hasattr(result, "to_dict"):
        experiment = result.to_dict()
    else:
        experiment = {
            "id": result.experiment_id,
            "title": result.title,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "checks": dict(result.checks),
            "notes": list(result.notes),
        }
    observability = (session.to_dict() if session is not None
                     else {"run_records": [], "sweep_records": [],
                           "metrics": {"counters": {}, "timers": {}}})
    return {
        "schema": ARTIFACT_SCHEMA,
        "provenance": provenance(seed=seed, config=config),
        "experiment": _json_safe(experiment),
        "observability": _json_safe(observability),
    }


def write_artifact(artifact: dict, path: Union[str, Path]) -> Path:
    """Validate and write one artifact as strict JSON."""
    errors = validate_artifact(artifact)
    if errors:
        raise ArtifactError(
            f"refusing to write schema-invalid artifact: {errors}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(artifact, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return path


def write_experiment_artifact(result, directory: Union[str, Path],
                              session: Optional[CollectorSession] = None,
                              seed=None, config=None) -> Path:
    """Write ``<directory>/<experiment_id>.json``; returns the path."""
    artifact = experiment_artifact(result, session=session, seed=seed,
                                   config=config)
    experiment_id = artifact["experiment"]["id"]
    return write_artifact(artifact, Path(directory) /
                          f"{experiment_id}.json")


def validate_artifact(data) -> List[str]:
    """Schema check of one artifact; returns violations (empty = valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"artifact: expected dict, got {type(data).__name__}"]
    if data.get("schema") != ARTIFACT_SCHEMA:
        errors.append(f"schema: expected {ARTIFACT_SCHEMA!r}, "
                      f"got {data.get('schema')!r}")

    prov = data.get("provenance")
    if not isinstance(prov, dict):
        errors.append("provenance: missing or not a dict")
    else:
        for key in ("python", "numpy", "timestamp", "config_hash"):
            if key not in prov:
                errors.append(f"provenance.{key}: missing")
        rev = prov.get("git_revision")
        if rev is not None and not isinstance(rev, str):
            errors.append("provenance.git_revision: expected str or null")

    experiment = data.get("experiment")
    if not isinstance(experiment, dict):
        errors.append("experiment: missing or not a dict")
    else:
        for key, typ in (("id", str), ("title", str), ("columns", list),
                         ("rows", list), ("checks", dict),
                         ("notes", list)):
            if not isinstance(experiment.get(key), typ):
                errors.append(f"experiment.{key}: expected "
                              f"{typ.__name__}")
        columns = experiment.get("columns")
        rows = experiment.get("rows")
        if isinstance(columns, list) and isinstance(rows, list):
            for k, row in enumerate(rows):
                if not isinstance(row, list) or len(row) != len(columns):
                    errors.append(f"experiment.rows[{k}]: does not match "
                                  f"columns (length {len(columns)})")
                    break

    obs = data.get("observability")
    if not isinstance(obs, dict):
        errors.append("observability: missing or not a dict")
    else:
        for key in ("run_records", "sweep_records"):
            records = obs.get(key)
            if not isinstance(records, list):
                errors.append(f"observability.{key}: expected list")
                continue
            for k, record in enumerate(records):
                errors.extend(validate_run_record(
                    record, where=f"observability.{key}[{k}]"))
        metrics = obs.get("metrics")
        if not isinstance(metrics, dict) or \
                not isinstance(metrics.get("counters"), dict) or \
                not isinstance(metrics.get("timers"), dict):
            errors.append("observability.metrics: expected dict with "
                          "'counters' and 'timers'")
    return errors
