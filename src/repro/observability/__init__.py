"""Observability: run records, metrics, provenance, JSON artifacts.

The engine (``FlowControlSystem.run`` / ``run_ensemble``), the parallel
sweep runner (:func:`repro.parallel.sweep`), and the experiment CLI all
report structured observables through this package:

* :class:`RunRecord` — per-iteration residuals, convergence/divergence
  mask events, and wall-time per phase of one trajectory or ensemble;
* :class:`SweepRecord` — per-chunk timing, worker utilisation, and
  serial-fallback reasons of one parallel sweep;
* :class:`MetricsRegistry` / :class:`Counter` / :class:`Timer` — a
  dependency-free counters-and-timers registry;
* :func:`collect` — an ambient collector session: everything the engine
  emits inside the ``with`` block is gathered into one
  :class:`CollectorSession`;
* :func:`provenance` / :func:`config_hash` — git revision, library
  versions, seed, and config fingerprint for reproducible artifacts;
* :func:`experiment_artifact` / :func:`write_experiment_artifact` /
  :func:`validate_artifact` — the schema-checked JSON files behind the
  CLI's ``--json-dir`` flag.

Everything here is pure standard library + numpy; collection is opt-in
(no session active means near-zero overhead in the hot loops).
"""

from .artifacts import (ARTIFACT_SCHEMA, experiment_artifact,
                        validate_artifact, write_artifact,
                        write_experiment_artifact)
from .metrics import Counter, MetricsRegistry, Timer
from .provenance import config_hash, git_revision, provenance
from .record import (RUN_RECORD_SCHEMA, RunRecord, SweepRecord,
                     validate_run_record)
from .session import (CollectorSession, active_session, collect,
                      emit_run_record, emit_sweep_record, is_collecting)

__all__ = [
    "RunRecord", "SweepRecord", "RUN_RECORD_SCHEMA",
    "validate_run_record",
    "Counter", "Timer", "MetricsRegistry",
    "CollectorSession", "collect", "active_session", "is_collecting",
    "emit_run_record", "emit_sweep_record",
    "provenance", "git_revision", "config_hash",
    "ARTIFACT_SCHEMA", "experiment_artifact", "write_artifact",
    "write_experiment_artifact", "validate_artifact",
]
