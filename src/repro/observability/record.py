"""Structured records of engine runs and parallel sweeps.

:class:`RunRecord` captures what happened *inside* one
``FlowControlSystem.run`` or ``run_ensemble`` call: the per-iteration
sup-norm residuals, the history of the convergence/divergence masks
(stored compactly as ``(step, member, outcome)`` events plus cumulative
counts), and wall time per engine phase.  :class:`SweepRecord` captures
one :func:`repro.parallel.sweep` call: chunking, per-chunk timing,
worker utilisation, and the serial-fallback reason if the pool could
not be used.

Both serialise to JSON-safe dictionaries (non-finite floats become
``None``) and validate against the hand-rolled schema in
:func:`validate_run_record` — no external schema library is required.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["RUN_RECORD_SCHEMA", "RunRecord", "SweepRecord",
           "validate_run_record", "json_safe_float"]

#: Schema identifier embedded in every serialised record.
RUN_RECORD_SCHEMA = "repro.run-record/v1"


def json_safe_float(value) -> Optional[float]:
    """A float that strict JSON can hold: non-finite becomes ``None``."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass
class RunRecord:
    """Per-iteration observables of one trajectory or ensemble run.

    Attributes:
        kind: ``"run"`` (single trajectory), ``"ensemble"``, or
            ``"async_ensemble"`` (the batched asynchronous engine).
        n_members: ensemble size (1 for a scalar run).
        n_connections: state dimension N.
        max_steps / tol / settle: the run parameters, for provenance.
        residuals: per-iteration sup-norm change, maximised over the
            members still iterating (length = number of steps taken).
        active_members: per-iteration count of members still iterating
            *after* that step's masking.
        converged_counts / diverged_counts: per-iteration cumulative
            counts — together with ``mask_events`` they reconstruct the
            full convergence/divergence mask history.
        mask_events: ``(step, member, outcome)`` triples recording the
            exact step each member left the active set.
        fault_events: ``(step, member, connection, kind, detail)``
            tuples — one per perturbation a
            :class:`~repro.faults.FaultPlan` injected into the run
            (empty for fault-free runs).
        outcome_counts: final tally per outcome name.
        steps: total number of map applications performed.
        phase_seconds: wall time per engine phase (``"step"``,
            ``"classify"``, ``"period_detection"``).
        wall_seconds: total wall time of the call.
        n_blocks: number of member blocks the ensemble was executed in
            (1 for unblocked runs and scalar trajectories).
        block_size: the block size used when the run was blocked,
            ``None`` otherwise.  For blocked runs the per-iteration
            series are the concatenation of the per-block series in
            block order (each block streams its own reductions).
    """

    kind: str
    n_members: int
    n_connections: int
    max_steps: int
    tol: float
    settle: int
    residuals: List[float] = field(default_factory=list)
    active_members: List[int] = field(default_factory=list)
    converged_counts: List[int] = field(default_factory=list)
    diverged_counts: List[int] = field(default_factory=list)
    mask_events: List[Tuple[int, int, str]] = field(default_factory=list)
    fault_events: List[Tuple[int, int, int, str, float]] = \
        field(default_factory=list)
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    steps: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    n_blocks: int = 1
    block_size: Optional[int] = None
    _started: float = field(default=0.0, repr=False)

    @classmethod
    def begin(cls, kind: str, n_members: int, n_connections: int,
              max_steps: int, tol: float, settle: int) -> "RunRecord":
        rec = cls(kind=kind, n_members=n_members,
                  n_connections=n_connections, max_steps=max_steps,
                  tol=tol, settle=settle)
        rec._started = time.perf_counter()
        return rec

    def add_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = \
            self.phase_seconds.get(phase, 0.0) + float(seconds)

    def observe_iteration(self, residual: float, active: int,
                          converged: int, diverged: int) -> None:
        self.residuals.append(float(residual))
        self.active_members.append(int(active))
        self.converged_counts.append(int(converged))
        self.diverged_counts.append(int(diverged))

    def observe_mask_event(self, step: int, member: int,
                           outcome: str) -> None:
        self.mask_events.append((int(step), int(member), str(outcome)))

    def observe_fault_event(self, step: int, member: int, connection: int,
                            kind: str, detail: float) -> None:
        self.fault_events.append((int(step), int(member),
                                  int(connection), str(kind),
                                  float(detail)))

    def finish(self, steps: int, outcome_counts: Dict[str, int]) -> None:
        self.steps = int(steps)
        self.outcome_counts = {str(k): int(v)
                               for k, v in outcome_counts.items()}
        self.wall_seconds = time.perf_counter() - self._started

    # -- convenience views --------------------------------------------
    def convergence_mask_history(self) -> List[List[bool]]:
        """Reconstruct the per-step converged mask from the events.

        Entry ``[t][m]`` is True when member ``m`` had converged by step
        ``t + 1`` (steps are 1-based in ``mask_events``).
        """
        return self._mask_history("converged")

    def divergence_mask_history(self) -> List[List[bool]]:
        """Reconstruct the per-step diverged mask from the events."""
        return self._mask_history("diverged")

    def _mask_history(self, outcome: str) -> List[List[bool]]:
        n_steps = len(self.residuals)
        mask = [False] * self.n_members
        history = []
        events = {(s, m) for s, m, o in self.mask_events if o == outcome}
        for t in range(1, n_steps + 1):
            for m in range(self.n_members):
                if (t, m) in events:
                    mask[m] = True
            history.append(list(mask))
        return history

    def to_dict(self) -> dict:
        return {
            "schema": RUN_RECORD_SCHEMA,
            "kind": self.kind,
            "n_members": self.n_members,
            "n_connections": self.n_connections,
            "max_steps": self.max_steps,
            "tol": self.tol,
            "settle": self.settle,
            "steps": self.steps,
            "residuals": [json_safe_float(x) for x in self.residuals],
            "active_members": list(self.active_members),
            "converged_counts": list(self.converged_counts),
            "diverged_counts": list(self.diverged_counts),
            "mask_events": [[s, m, o] for s, m, o in self.mask_events],
            "fault_events": [[s, m, c, k, json_safe_float(v)]
                             for s, m, c, k, v in self.fault_events],
            "outcome_counts": dict(self.outcome_counts),
            "phase_seconds": {k: json_safe_float(v)
                              for k, v in self.phase_seconds.items()},
            "wall_seconds": json_safe_float(self.wall_seconds),
            "n_blocks": self.n_blocks,
            "block_size": self.block_size,
        }


@dataclass
class SweepRecord:
    """What one :func:`repro.parallel.sweep` call did and how long.

    Attributes:
        n_items: grid size.
        executor: requested executor kind.
        workers: requested pool size.
        n_chunks: number of contiguous chunks the grid was split into.
        chunk_sizes: items per chunk, in grid order.
        chunk_seconds: in-worker wall time per chunk, in grid order.
        wall_seconds: end-to-end wall time of the sweep call.
        worker_utilisation: ``sum(chunk_seconds) / (workers * wall)``
            — 1.0 means the pool never idled; serial runs report the
            single-worker value.
        serial: True when the work ran on the calling thread.
        fallback_reason: ``repr`` of the exception that forced the
            serial fallback, or ``None`` when no fallback happened.
        retry_rounds: infrastructure-failure retry rounds taken.
        salvaged_chunks: chunk indices recomputed serially after the
            pool kept failing on them.
        resumed_chunks: chunk indices loaded from a checkpoint
            directory instead of being recomputed.
    """

    n_items: int
    executor: str
    workers: int
    n_chunks: int = 0
    chunk_sizes: List[int] = field(default_factory=list)
    chunk_seconds: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    worker_utilisation: float = 0.0
    serial: bool = False
    fallback_reason: Optional[str] = None
    retry_rounds: int = 0
    salvaged_chunks: List[int] = field(default_factory=list)
    resumed_chunks: List[int] = field(default_factory=list)

    def finalise(self, wall_seconds: float, effective_workers: int) -> None:
        self.wall_seconds = float(wall_seconds)
        busy = sum(self.chunk_seconds)
        denom = max(1, effective_workers) * max(self.wall_seconds, 1e-12)
        self.worker_utilisation = min(1.0, busy / denom) if busy else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": RUN_RECORD_SCHEMA,
            "kind": "sweep",
            "n_items": self.n_items,
            "executor": self.executor,
            "workers": self.workers,
            "n_chunks": self.n_chunks,
            "chunk_sizes": list(self.chunk_sizes),
            "chunk_seconds": [json_safe_float(x)
                              for x in self.chunk_seconds],
            "wall_seconds": json_safe_float(self.wall_seconds),
            "worker_utilisation": json_safe_float(self.worker_utilisation),
            "serial": bool(self.serial),
            "fallback_reason": self.fallback_reason,
            "retry_rounds": int(self.retry_rounds),
            "salvaged_chunks": [int(k) for k in self.salvaged_chunks],
            "resumed_chunks": [int(k) for k in self.resumed_chunks],
        }


def _type_error(errors, where, value, expected):
    errors.append(f"{where}: expected {expected}, "
                  f"got {type(value).__name__}")


def validate_run_record(data: dict, where: str = "record") -> List[str]:
    """Schema check for a serialised :class:`RunRecord` or
    :class:`SweepRecord`; returns a list of violations (empty = valid).
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        _type_error(errors, where, data, "dict")
        return errors
    if data.get("schema") != RUN_RECORD_SCHEMA:
        errors.append(f"{where}.schema: expected {RUN_RECORD_SCHEMA!r}, "
                      f"got {data.get('schema')!r}")
    kind = data.get("kind")
    if kind == "sweep":
        required = {"n_items": int, "executor": str, "workers": int,
                    "n_chunks": int, "chunk_sizes": list,
                    "chunk_seconds": list, "serial": bool}
    elif kind in ("run", "ensemble", "async_ensemble"):
        required = {"n_members": int, "n_connections": int,
                    "max_steps": int, "steps": int, "residuals": list,
                    "active_members": list, "converged_counts": list,
                    "diverged_counts": list, "mask_events": list,
                    "outcome_counts": dict, "phase_seconds": dict}
    else:
        errors.append(f"{where}.kind: expected 'run', 'ensemble', "
                      f"'async_ensemble', or 'sweep', got {kind!r}")
        return errors
    for key, typ in required.items():
        if key not in data:
            errors.append(f"{where}.{key}: missing")
        elif not isinstance(data[key], typ):
            _type_error(errors, f"{where}.{key}", data[key], typ.__name__)
    if kind in ("run", "ensemble"):
        lengths = {key: len(data[key]) for key in
                   ("residuals", "active_members", "converged_counts",
                    "diverged_counts") if isinstance(data.get(key), list)}
        if len(set(lengths.values())) > 1:
            errors.append(f"{where}: per-iteration series have mismatched "
                          f"lengths {lengths}")
        # Optional fault-event channel (absent in pre-fault records).
        fault_events = data.get("fault_events")
        if fault_events is not None:
            if not isinstance(fault_events, list):
                _type_error(errors, f"{where}.fault_events", fault_events,
                            "list")
            else:
                for k, event in enumerate(fault_events):
                    if not (isinstance(event, list) and len(event) == 5):
                        errors.append(
                            f"{where}.fault_events[{k}]: expected "
                            f"[step, member, connection, kind, detail]")
                        break
    return errors
