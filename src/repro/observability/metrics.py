"""Dependency-free counters and timers.

A :class:`MetricsRegistry` is a flat namespace of named
:class:`Counter` and :class:`Timer` objects.  Registries are cheap to
create, safe to update from multiple threads (single bytecode-level
increments under the GIL plus an explicit lock for dict mutation), and
serialise to plain dictionaries for the JSON artifacts.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict

__all__ = ["Counter", "Timer", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self):
        return f"Counter(value={self.value})"


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("total_seconds", "count")

    def __init__(self):
        self.total_seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.total_seconds += float(seconds)
        self.count += 1

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self):
        return (f"Timer(total_seconds={self.total_seconds:.6f}, "
                f"count={self.count})")


class MetricsRegistry:
    """A named collection of counters and timers."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created on first use."""
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer()
            return self._timers[name]

    def snapshot(self) -> dict:
        """Plain-data view: ``{"counters": {...}, "timers": {...}}``."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            timers = {name: {"total_seconds": t.total_seconds,
                             "count": t.count}
                      for name, t in self._timers.items()}
        return {"counters": counters, "timers": timers}

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._timers)
