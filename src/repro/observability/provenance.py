"""Provenance stamps for reproducible artifacts.

Every JSON artifact records where it came from: the git revision of the
working tree, interpreter and numpy versions, the seed, and a stable
hash of the configuration that produced it — enough to regenerate any
figure from its record.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["git_revision", "config_hash", "provenance"]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The commit hash of the checkout the code runs from, or ``None``
    outside a repository (or when git is unavailable) — provenance must
    never break a run.

    ``cwd`` defaults to this package's directory, not the process's
    working directory: the artifact should record the revision of the
    *code* that produced it, wherever the caller happens to be.
    """
    if cwd is None:
        cwd = str(Path(__file__).resolve().parent)
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def config_hash(config) -> str:
    """Stable sha256 fingerprint of a JSON-serialisable configuration.

    Keys are sorted and non-JSON values fall back to ``repr``, so the
    hash depends only on content, not dict ordering or object identity.
    """
    canonical = json.dumps(config, sort_keys=True, default=repr,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def provenance(seed=None, config=None) -> dict:
    """The provenance block embedded in every artifact."""
    return {
        "git_revision": git_revision(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "timestamp": time.time(),
        "seed": seed,
        "config": config,
        "config_hash": config_hash(config),
    }
