"""Differential and theorem oracles for fuzzing scenarios.

Each oracle cross-checks two *redundant* ways of computing the same
physics, or checks a theorem of the paper that predicts the outcome for
a whole scenario family:

================== ====================================================
``batch-equivalence``    scalar ``step`` vs ``step_batch`` rows
                         (contract: equal to <= 1e-12)
``ensemble-equivalence`` ``run_ensemble`` member vs scalar ``run``
``blocked-equivalence``  ``run_ensemble`` with ``block_size < M`` vs
                         the one-shot run (bit-identical)
``kernel-equivalence``   legacy vs fast packet kernels (bit-identical)
``compiled-equivalence`` fast vs compiled (runtime-built C) FIFO
                         kernels (bit-identical; not-applicable when
                         no C tier could be built)
``fixed-point``          converged trajectory is a fixed point of the
                         map, and agrees with the damped refiner
``tsi``                  Theorem 1: scaling every ``mu`` by ``c``
                         scales the steady state by ``c``
``fairness-manifold``    Theorem 2: aggregate-feedback steady states
                         lie on the steady-state manifold
``fs-floor``             Theorem 5: Fair Share guarantees each TSI
                         connection its reservation floor
``stability``            Section 3.3: an *observed* attractor has
                         Jacobian spectral radius <= 1 (+ slack)
``steady-signal``        Theorems 1/3: at a steady state every active
                         TSI connection sees exactly its target signal
``fault-determinism``    seeded fault *and structural* plans replay
                         bit-identically; the empty plans are
                         bit-identical no-ops
``rcp-stability``        Voice et al.: RCP with stability factor
                         ``s < 2`` converges globally to the max-min
                         allocation of the effective capacities;
                         ``s > 2`` at a single gateway cannot converge
``tcp-oscillation``      Andrews–Slivkins: TCP-like AIMD never
                         converges nor diverges, and every
                         connection's sawtooth straddles the threshold
``adversarial-floor``    Theorem 5 under live fire: honest TSI
                         connections keep their reservation floors
                         whatever the adversary zoo does (green under
                         Fair Share; FIFO is the counterexample)
``async-fixed-point``    a synchronous fixed point is invariant under
                         every update schedule and signal delay — the
                         async engine started *at* it must stay on it
``async-batch-equivalence`` ``run_async_ensemble`` members reproduce
                         the scalar :class:`AsynchronousRunner`
                         bit-identically under the scenario's clock
================== ====================================================

Oracles *never* raise on a violation — a violation is data (an
:class:`OracleResult` with ``passed=False``).  :class:`~repro.errors.
OracleError` is reserved for harness misuse (an unknown oracle name).

Applicability is explicit: an oracle that does not apply to a scenario
(e.g. the TSI oracle on a heterogeneous rule mix) reports
``applicable=False`` and never counts as a violation.  The tolerances
encode the engine contracts (1e-12 for vectorisation, bit-identity for
the kernels) and the numerical realities of the theorem checks
(finite-tolerance convergence, finite-difference Jacobians).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..chaos.monitor import check_robustness_floor
from ..chaos.structural import StructuralFaultPlan
from ..core.asynchronous import (AsynchronousRunner, BernoulliSchedule,
                                 RoundRobinSchedule, run_async_ensemble)
from ..core.dynamics import FlowControlSystem, Outcome, Trajectory
from ..core.math_utils import sup_norm
from ..core.robustness import reservation_floor_heterogeneous
from ..core.stability import jacobian, spectral_radius
from ..core.steadystate import is_aggregate_steady_state, refine
from ..errors import ConvergenceError, OracleError
from ..faults import FaultPlan
from .spec import ScenarioSpec

__all__ = [
    "OracleResult",
    "ScenarioContext",
    "ORACLES",
    "oracle_names",
    "run_oracle",
    "run_all_oracles",
]

#: Vectorisation contract: batch rows match the scalar path to 1e-12.
BATCH_TOL = 1e-12
#: Fixed-point residual / refiner agreement, relative to the rate scale.
FIXED_POINT_TOL = 1e-6
#: Relative steady-state deviation allowed by the TSI oracle.
TSI_TOL = 1e-4
#: Manifold membership tolerance (Theorem 2).
MANIFOLD_TOL = 1e-5
#: Relative slack on the robustness floor (Theorem 5).
FLOOR_TOL = 1e-5
#: Slack on the spectral radius of an observed attractor: covers the
#: manifold's neutral eigenvalue (exactly 1) and differencing noise.
STABILITY_SLACK = 1e-2
#: Signal-vs-target tolerance for active TSI connections.
SIGNAL_TOL = 1e-4
#: Rates below this fraction of the scale count as pinned at zero.
ACTIVE_FRACTION = 1e-3
#: Margin around the RCP stability boundary ``s = 2``: scenarios inside
#: the band are inapplicable (the discrete boundary is soft).
RCP_MARGIN = 0.05
#: Relative deviation allowed between a converged RCP trajectory and
#: the analytic max-min allocation of the effective capacities.
RCP_ALLOC_TOL = 1e-4


@dataclass(frozen=True)
class OracleResult:
    """One oracle's verdict on one scenario.

    ``passed`` is meaningful only when ``applicable``; inapplicable
    results always carry ``passed=True`` so violation counting is
    simply ``not passed``.
    """

    name: str
    applicable: bool
    passed: bool
    detail: str = ""

    @property
    def violated(self) -> bool:
        return self.applicable and not self.passed

    def to_row(self):
        return (self.name, self.applicable, self.passed, self.detail)


class ScenarioContext:
    """Lazily built shared state for one scenario's oracle evaluations.

    Building the system, the probe states, and especially the
    fault-free reference trajectory is the expensive part; the context
    computes each once and shares it across the oracle catalogue (and
    across shrinker re-evaluations of the same candidate).
    """

    def __init__(self, spec: ScenarioSpec,
                 system: Optional[FlowControlSystem] = None):
        self.spec = spec
        self._system = system
        self._trajectory: Optional[Trajectory] = None
        self._probes: Optional[np.ndarray] = None

    @property
    def system(self) -> FlowControlSystem:
        if self._system is None:
            self._system = self.spec.build()
        return self._system

    @property
    def trajectory(self) -> Trajectory:
        """The fault-free reference run at the spec's budget."""
        if self._trajectory is None:
            self._trajectory = self.system.run(
                self.spec.initial(), max_steps=self.spec.max_steps,
                tol=self.spec.tol)
        return self._trajectory

    @property
    def converged(self) -> bool:
        return self.trajectory.outcome is Outcome.CONVERGED

    @property
    def probes(self) -> np.ndarray:
        """``(4, N)`` probe states: the initial condition, a scaled
        copy, a seeded random perturbation, and an overload point."""
        if self._probes is None:
            initial = self.spec.initial()
            rng = np.random.default_rng(self.spec.seed)
            perturbed = initial * rng.uniform(0.5, 1.5, size=initial.shape)
            mu_max = max(g.mu for g in self.spec.gateways)
            overload = np.full_like(
                initial, 2.0 * mu_max / len(initial))
            self._probes = np.stack(
                [initial, 0.5 * initial, perturbed, overload])
        return self._probes

    def scale(self) -> float:
        return max(1.0, float(np.max(self.trajectory.final)))


# ----------------------------------------------------------------------
# differential oracles
# ----------------------------------------------------------------------
def check_batch_equivalence(ctx: ScenarioContext) -> OracleResult:
    """``step_batch(R)[m] == step(R[m])`` to :data:`BATCH_TOL`.

    Controller-driven systems check the controlled pair instead —
    ``step_controlled_batch`` rows against scalar ``step_controlled``
    from the bank's initial state — covering both the advertised rates
    and the per-gateway controller state."""
    m_probes = ctx.probes.shape[0]
    if ctx.system.controlled:
        state0 = ctx.system.bank.initial_state()
        batch, states = ctx.system.step_controlled_batch(
            ctx.probes, ctx.system.bank.initial_state_batch(m_probes))
        worst = 0.0
        for m in range(m_probes):
            scalar, state = ctx.system.step_controlled(
                ctx.probes[m], state0)
            worst = max(worst, float(np.max(np.abs(batch[m] - scalar))),
                        float(np.max(np.abs(states[m] - state))))
        return OracleResult(
            "batch-equivalence", True, worst <= BATCH_TOL,
            f"max |controlled batch - scalar| = {worst:.3e} over "
            f"{m_probes} probes, rates and controller state "
            f"(tol {BATCH_TOL:.0e})")
    batch = ctx.system.step_batch(ctx.probes)
    worst = 0.0
    for m in range(m_probes):
        scalar = ctx.system.step(ctx.probes[m])
        worst = max(worst, float(np.max(np.abs(batch[m] - scalar))))
    return OracleResult(
        "batch-equivalence", True, worst <= BATCH_TOL,
        f"max |step_batch - step| = {worst:.3e} over "
        f"{m_probes} probes (tol {BATCH_TOL:.0e})")


def check_ensemble_equivalence(ctx: ScenarioContext) -> OracleResult:
    """``run_ensemble`` members reproduce scalar ``run`` exactly."""
    budget = min(ctx.spec.max_steps, 600)
    initials = ctx.probes[:2]
    ens = ctx.system.run_ensemble(initials, max_steps=budget,
                                  tol=ctx.spec.tol)
    for m in range(len(ens)):
        traj = ctx.system.run(initials[m], max_steps=budget,
                              tol=ctx.spec.tol)
        if ens.outcomes[m] is not traj.outcome:
            return OracleResult(
                "ensemble-equivalence", True, False,
                f"member {m}: ensemble outcome "
                f"{ens.outcomes[m].value} != scalar {traj.outcome.value}")
        if int(ens.steps[m]) != traj.steps:
            return OracleResult(
                "ensemble-equivalence", True, False,
                f"member {m}: ensemble steps {int(ens.steps[m])} != "
                f"scalar {traj.steps}")
        diff = float(np.max(np.abs(ens.finals[m] - traj.final)))
        if diff > BATCH_TOL:
            return OracleResult(
                "ensemble-equivalence", True, False,
                f"member {m}: final states differ by {diff:.3e} "
                f"(tol {BATCH_TOL:.0e})")
    return OracleResult(
        "ensemble-equivalence", True, True,
        f"{len(ens)} members match scalar runs ({budget}-step budget)")


def check_kernel_equivalence(ctx: ScenarioContext) -> OracleResult:
    """Legacy vs fast packet kernel: bit-identical statistics.

    Applies to the disciplines both engines implement (unweighted fifo
    and fair-share).  The run is short — equivalence is exact, so a
    modest event count already has full discriminating power.
    """
    spec = ctx.spec
    if spec.discipline not in ("fifo", "fair-share"):
        return OracleResult(
            "kernel-equivalence", False, True,
            f"discipline {spec.discipline!r} has no fast kernel")
    # Local import: keeps the scenarios package usable without pulling
    # the simulation stack until this oracle actually runs.
    from ..simulation.network_sim import NetworkSimulation

    def run(engine: str) -> dict:
        sim = NetworkSimulation(
            spec.network(), discipline_kind=spec.discipline,
            seed=spec.seed, initial_rates=spec.initial(), engine=engine)
        sim.run_for(30.0)
        sim.reset_statistics()
        sim.run_for(120.0)
        return {"mql": sim.mean_queue_lengths(),
                "arr": sim.measured_arrival_rates(),
                "drop": sim.drop_fractions(),
                "thr": sim.throughput(),
                "delay": sim.mean_delays(),
                "events": sim.events_processed}

    legacy, fast = run("legacy"), run("fast")
    for key in ("mql", "arr", "drop"):
        for g in legacy[key]:
            if not np.array_equal(legacy[key][g], fast[key][g]):
                return OracleResult(
                    "kernel-equivalence", True, False,
                    f"{key}[{g}] differs between engines")
    if not np.array_equal(legacy["thr"], fast["thr"]):
        return OracleResult("kernel-equivalence", True, False,
                            "throughput differs between engines")
    if not np.array_equal(legacy["delay"], fast["delay"], equal_nan=True):
        return OracleResult("kernel-equivalence", True, False,
                            "mean delays differ between engines")
    if legacy["events"] != fast["events"]:
        return OracleResult(
            "kernel-equivalence", True, False,
            f"event counts differ: legacy {legacy['events']} vs fast "
            f"{fast['events']}")
    return OracleResult(
        "kernel-equivalence", True, True,
        f"bit-identical over {legacy['events']} events")


def check_compiled_equivalence(ctx: ScenarioContext) -> OracleResult:
    """Compiled vs fast FIFO kernel: bit-identical statistics.

    The compiled engine runs ``_run_fifo`` inside the runtime-built C
    library (:mod:`repro.backends._cext`); its contract is the same
    bit-identity the fast/legacy pair guarantees — same RNG bitstream,
    same event order, same float arithmetic.  Applies to FIFO
    scenarios (the only discipline with a compiled event loop); when
    no C tier could be built the compiled engine falls back to the
    Python loop per call, which keeps the check trivially green, so
    the oracle reports not-applicable instead of a hollow pass.
    """
    spec = ctx.spec
    if spec.discipline != "fifo":
        return OracleResult(
            "compiled-equivalence", False, True,
            f"discipline {spec.discipline!r} has no compiled kernel")
    from ..backends import compiled
    if compiled.fifo_lib() is None:
        return OracleResult(
            "compiled-equivalence", False, True,
            "no C tier available (no compiler / failed build); the "
            "compiled engine would just re-run the Python loop")
    # Local import, as in check_kernel_equivalence.
    from ..simulation.network_sim import NetworkSimulation

    def run(engine: str) -> dict:
        sim = NetworkSimulation(
            spec.network(), discipline_kind=spec.discipline,
            seed=spec.seed, initial_rates=spec.initial(), engine=engine)
        sim.run_for(30.0)
        sim.reset_statistics()
        sim.run_for(120.0)
        fallbacks = getattr(sim._engine, "fifo_fallbacks", None)
        return {"mql": sim.mean_queue_lengths(),
                "arr": sim.measured_arrival_rates(),
                "drop": sim.drop_fractions(),
                "thr": sim.throughput(),
                "delay": sim.mean_delays(),
                "events": sim.events_processed,
                "fallbacks": fallbacks}

    fast, comp = run("fast"), run("compiled")
    for key in ("mql", "arr", "drop"):
        for g in fast[key]:
            if not np.array_equal(fast[key][g], comp[key][g]):
                return OracleResult(
                    "compiled-equivalence", True, False,
                    f"{key}[{g}] differs between fast and compiled")
    if not np.array_equal(fast["thr"], comp["thr"]):
        return OracleResult("compiled-equivalence", True, False,
                            "throughput differs between fast and compiled")
    if not np.array_equal(fast["delay"], comp["delay"], equal_nan=True):
        return OracleResult("compiled-equivalence", True, False,
                            "mean delays differ between fast and compiled")
    if fast["events"] != comp["events"]:
        return OracleResult(
            "compiled-equivalence", True, False,
            f"event counts differ: fast {fast['events']} vs compiled "
            f"{comp['events']}")
    return OracleResult(
        "compiled-equivalence", True, True,
        f"bit-identical over {fast['events']} events "
        f"({comp['fallbacks']} fallbacks)")


def check_fixed_point(ctx: ScenarioContext) -> OracleResult:
    """A converged trajectory really sits on a fixed point of ``F``,
    and the damped refiner lands on the same point."""
    if ctx.spec.controller is not None:
        return OracleResult(
            "fixed-point", False, True,
            "controller state is part of the fixed point; the "
            "rcp-stability oracle checks the controlled equilibrium")
    why = _chaotic(ctx.spec)
    if why and ctx.spec.structural_plan is not None:
        # Adversaries are legal rules — their fixed point is still a
        # fixed point — but the reference run ignores structural plans.
        return OracleResult("fixed-point", False, True, why)
    if not ctx.converged:
        return OracleResult(
            "fixed-point", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    final = ctx.trajectory.final
    scale = ctx.scale()
    residual = sup_norm(ctx.system.step(final), final)
    if residual > FIXED_POINT_TOL * scale:
        return OracleResult(
            "fixed-point", True, False,
            f"residual |F(r*) - r*| = {residual:.3e} exceeds "
            f"{FIXED_POINT_TOL:.0e} * scale {scale:.3g}")
    try:
        refined = refine(ctx.system, final, tol=1e-12)
    except ConvergenceError as exc:
        # A marginally contracting map can defeat the refiner without
        # the trajectory being wrong; the residual check above is the
        # binding assertion.
        return OracleResult(
            "fixed-point", True, True,
            f"residual {residual:.3e}; refiner did not converge "
            f"({exc}) — residual check only")
    agreement = sup_norm(refined, final)
    return OracleResult(
        "fixed-point", True, agreement <= FIXED_POINT_TOL * scale,
        f"residual {residual:.3e}, refiner agreement {agreement:.3e} "
        f"(tol {FIXED_POINT_TOL:.0e} * scale {scale:.3g})")


# ----------------------------------------------------------------------
# theorem oracles
# ----------------------------------------------------------------------
def _chaotic(spec: ScenarioSpec) -> str:
    """Why the scenario sits outside a theorem oracle's hypotheses
    (adversaries / structural damage), or ``""`` when it doesn't.
    The adversarial-floor oracle owns the chaotic regime."""
    if spec.adversaries:
        return ("scenario carries adversaries; only the "
                "adversarial-floor oracle applies")
    if spec.structural_plan is not None:
        return ("scenario carries structural faults; the theorem "
                "hypotheses assume an intact network")
    return ""


def _rho_vec(ctx: ScenarioContext) -> np.ndarray:
    """Per-connection steady utilisations implied by each TSI target."""
    signal_fn = ctx.system.signal_fn
    return np.array([
        signal_fn.steady_state_utilisation(rule.target_signal())
        for rule in ctx.spec.rules])


def check_tsi(ctx: ScenarioContext) -> OracleResult:
    """Theorem 1: scaling all service rates by ``c`` scales the unique
    steady state by ``c``.

    Restricted to homogeneous TSI rules under *individual* feedback,
    where the steady state is unique (Theorem 3) — under aggregate
    feedback the scaled run may legitimately converge to a different
    point of the scaled manifold.
    """
    spec = ctx.spec
    why = _chaotic(spec)
    if why:
        return OracleResult("tsi", False, True, why)
    if not (spec.homogeneous and spec.all_tsi):
        return OracleResult("tsi", False, True,
                            "needs a homogeneous TSI rule")
    if spec.style != "individual":
        return OracleResult(
            "tsi", False, True,
            "aggregate steady states form a manifold; scaling is only "
            "point-to-point under individual feedback")
    if not ctx.converged:
        return OracleResult(
            "tsi", False, True,
            f"reference outcome {ctx.trajectory.outcome.value}")
    c = 2.0
    scaled_spec = ScenarioSpec.from_dict({
        **spec.to_dict(),
        "gateways": [{**g.to_dict(), "mu": g.mu * c}
                     for g in spec.gateways],
        "initial_rates": [c * r for r in spec.initial_rates],
    })
    # Convergence *speed* is not scale-invariant (only the steady state
    # is), so the scaled run gets a larger step budget.
    scaled = scaled_spec.build().run(
        scaled_spec.initial(),
        max_steps=min(4 * spec.max_steps, 20000), tol=spec.tol)
    if scaled.outcome is not Outcome.CONVERGED:
        return OracleResult(
            "tsi", False, True,
            f"scaled run outcome {scaled.outcome.value} within 4x "
            f"budget")
    reference = ctx.trajectory.final
    deviation = sup_norm(scaled.final / c, reference) \
        / max(1e-12, float(np.max(reference)))
    return OracleResult(
        "tsi", True, deviation <= TSI_TOL,
        f"relative deviation of r*(c mu)/c from r*(mu): "
        f"{deviation:.3e} (tol {TSI_TOL:.0e}, c={c})")


def check_fairness_manifold(ctx: ScenarioContext) -> OracleResult:
    """Theorem 2: an aggregate-feedback steady state lies on the
    manifold — no gateway above ``rho_ss``, every connection
    bottlenecked at ``rho_ss``."""
    spec = ctx.spec
    why = _chaotic(spec)
    if why:
        return OracleResult("fairness-manifold", False, True, why)
    if spec.style != "aggregate":
        return OracleResult("fairness-manifold", False, True,
                            "individual-feedback scenario")
    if not (spec.homogeneous and spec.all_tsi):
        return OracleResult("fairness-manifold", False, True,
                            "needs a homogeneous TSI rule")
    if not ctx.converged:
        return OracleResult(
            "fairness-manifold", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    rho_ss = float(_rho_vec(ctx)[0])
    member = is_aggregate_steady_state(
        ctx.system.network, rho_ss, ctx.trajectory.final,
        tol=MANIFOLD_TOL)
    return OracleResult(
        "fairness-manifold", True, member,
        f"manifold membership at rho_ss={rho_ss:.6g} "
        f"(tol {MANIFOLD_TOL:.0e})")


def check_fs_floor(ctx: ScenarioContext) -> OracleResult:
    """Theorem 5: under Fair Share with individual feedback, every TSI
    connection reaches at least its reservation floor
    ``min_a rho_ss_i mu^a / N^a``."""
    spec = ctx.spec
    why = _chaotic(spec)
    if why:
        return OracleResult("fs-floor", False, True, why)
    if spec.discipline != "fair-share" or spec.style != "individual":
        return OracleResult(
            "fs-floor", False, True,
            "needs unweighted fair-share + individual feedback")
    if not spec.all_tsi:
        return OracleResult("fs-floor", False, True,
                            "needs every rule TSI")
    if not ctx.converged:
        return OracleResult(
            "fs-floor", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    floors = reservation_floor_heterogeneous(ctx.system.network,
                                             _rho_vec(ctx))
    ratios = ctx.trajectory.final / floors
    worst = float(np.min(ratios))
    return OracleResult(
        "fs-floor", True, worst >= 1.0 - FLOOR_TOL,
        f"min r_i / floor_i = {worst:.6f} "
        f"(robust iff >= 1 - {FLOOR_TOL:.0e})")


def check_stability(ctx: ScenarioContext) -> OracleResult:
    """Section 3.3: the Jacobian at an *observed* attractor cannot be
    expanding — spectral radius at most 1 (plus slack for the neutral
    manifold eigenvalue and finite differencing)."""
    if ctx.spec.controller is not None:
        return OracleResult(
            "stability", False, True,
            "the rule-map Jacobian does not describe controlled "
            "dynamics; the rcp-stability oracle owns this check")
    why = _chaotic(ctx.spec)
    if why:
        return OracleResult("stability", False, True, why)
    if not ctx.converged:
        return OracleResult(
            "stability", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    final = ctx.trajectory.final
    scale = ctx.scale()
    if np.min(final) < ACTIVE_FRACTION * scale:
        # Central differencing across the max(0, .) kink at a pinned
        # rate produces arbitrary one-sided slopes.
        return OracleResult(
            "stability", False, True,
            "a rate is pinned at ~0; the Jacobian is one-sided there")
    # The bottleneck MAX is non-smooth where two gateways tie for a
    # connection's largest signal (common at symmetric attractors, e.g.
    # parking lots under aggregate feedback); differencing across the
    # tie mixes branches and fabricates spurious eigenvalues.
    local = ctx.system.scheme.local_signals(final)
    network = ctx.system.network
    for i in range(network.num_connections):
        per_gateway = [
            float(local[g][network.connections_at(g).index(i)])
            for g in network.gamma(i)]
        peak = max(per_gateway)
        ties = sum(1 for b in per_gateway if b >= peak - 1e-6)
        if len(per_gateway) > 1 and ties > 1:
            return OracleResult(
                "stability", False, True,
                f"connection {i} has {ties} tied bottlenecks; the "
                f"Jacobian is not defined across the MAX kink")
    sr = spectral_radius(jacobian(ctx.system, final))
    return OracleResult(
        "stability", True, sr <= 1.0 + STABILITY_SLACK,
        f"spectral radius at the attractor: {sr:.6f} "
        f"(must be <= 1 + {STABILITY_SLACK})")


def check_steady_signal(ctx: ScenarioContext) -> OracleResult:
    """Theorems 1/3: at a steady state every TSI connection that is not
    pinned at zero sees exactly its target signal ``b_ss``."""
    spec = ctx.spec
    why = _chaotic(spec)
    if why:
        return OracleResult("steady-signal", False, True, why)
    if not any(rule.tsi for rule in spec.rules):
        return OracleResult("steady-signal", False, True,
                            "no TSI rules in the mix")
    if not ctx.converged:
        return OracleResult(
            "steady-signal", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    final = ctx.trajectory.final
    scale = max(1.0, float(np.max(final)))
    signals = ctx.system.scheme.signals(final)
    worst = 0.0
    checked = 0
    for i, rule in enumerate(spec.rules):
        if not rule.tsi or final[i] < ACTIVE_FRACTION * scale:
            continue
        checked += 1
        worst = max(worst, abs(float(signals[i]) - rule.target_signal()))
    if checked == 0:
        return OracleResult("steady-signal", False, True,
                            "every TSI connection is pinned at ~0")
    return OracleResult(
        "steady-signal", True, worst <= SIGNAL_TOL,
        f"max |b_i - b_ss_i| = {worst:.3e} over {checked} active TSI "
        f"connections (tol {SIGNAL_TOL:.0e})")


def check_fault_determinism(ctx: ScenarioContext) -> OracleResult:
    """Seeded fault *and structural* plans are deterministic and the
    empty plans are bit-identical no-ops; ensemble members replay the
    scalar faulted runs exactly, for both plan families."""
    spec = ctx.spec
    if spec.fault_plan is None and spec.structural_plan is None:
        return OracleResult("fault-determinism", False, True,
                            "scenario carries no fault or structural "
                            "plan")
    budget = min(spec.max_steps, 400)
    initial = spec.initial()
    system = ctx.system
    initials = np.stack([initial, 0.9 * initial])
    n_signal = n_struct = 0

    if spec.fault_plan is not None:
        def faulted():
            return system.run(initial, max_steps=budget, tol=spec.tol,
                              faults=spec.build_fault_plan())

        first, second = faulted(), faulted()
        if not np.array_equal(first.history, second.history):
            return OracleResult(
                "fault-determinism", True, False,
                "two runs of the same seeded plan diverge")
        if (first.fault_events or []) != (second.fault_events or []):
            return OracleResult(
                "fault-determinism", True, False,
                "two runs of the same seeded plan inject different "
                "events")
        plain = system.run(initial, max_steps=budget, tol=spec.tol)
        empty = system.run(initial, max_steps=budget, tol=spec.tol,
                           faults=FaultPlan())
        if not np.array_equal(plain.history, empty.history):
            return OracleResult(
                "fault-determinism", True, False,
                "the empty fault plan is not a bit-identical no-op")
        ens = system.run_ensemble(initials, max_steps=budget,
                                  tol=spec.tol,
                                  faults=spec.build_fault_plan())
        for m in range(len(ens)):
            scalar = system.run(initials[m], max_steps=budget,
                                tol=spec.tol,
                                faults=spec.build_fault_plan(),
                                fault_member=m)
            if not np.array_equal(ens.finals[m], scalar.final):
                return OracleResult(
                    "fault-determinism", True, False,
                    f"ensemble member {m} differs from the scalar "
                    f"fault run")
        n_signal = len(first.fault_events or [])

    if spec.structural_plan is not None:
        def damaged():
            return system.run(initial, max_steps=budget, tol=spec.tol,
                              structural=spec.build_structural_plan())

        first, second = damaged(), damaged()
        if not np.array_equal(first.history, second.history):
            return OracleResult(
                "fault-determinism", True, False,
                "two runs of the same structural plan diverge")
        if (first.structural_events or []) \
                != (second.structural_events or []):
            return OracleResult(
                "fault-determinism", True, False,
                "two runs of the same structural plan record "
                "different transitions")
        plain = system.run(initial, max_steps=budget, tol=spec.tol)
        empty = system.run(initial, max_steps=budget, tol=spec.tol,
                           structural=StructuralFaultPlan())
        if not np.array_equal(plain.history, empty.history):
            return OracleResult(
                "fault-determinism", True, False,
                "the empty structural plan is not a bit-identical "
                "no-op")
        ens = system.run_ensemble(initials, max_steps=budget,
                                  tol=spec.tol,
                                  structural=spec.build_structural_plan())
        for m in range(len(ens)):
            scalar = system.run(initials[m], max_steps=budget,
                                tol=spec.tol,
                                structural=spec.build_structural_plan(),
                                fault_member=m)
            if not np.array_equal(ens.finals[m], scalar.final):
                return OracleResult(
                    "fault-determinism", True, False,
                    f"ensemble member {m} differs from the scalar "
                    f"structural run")
        n_struct = len(first.structural_events or [])

    return OracleResult(
        "fault-determinism", True, True,
        f"plans replay identically; {n_signal} signal events, "
        f"{n_struct} structural transitions over {budget} steps")


def check_blocked_equivalence(ctx: ScenarioContext) -> OracleResult:
    """Blocked execution is invisible: ``run_ensemble`` with
    ``block_size < M`` reproduces the one-shot run bit for bit.

    Members are row-independent through ``step_batch``, so chunking the
    member axis must change nothing — finals, outcomes, steps, periods,
    and the retained histories all have to match exactly.  Any
    batch-row-position dependence in a kernel (a reduction over the
    member axis leaking across rows) breaks this and is caught here.
    """
    budget = min(ctx.spec.max_steps, 400)
    initials = ctx.probes
    kwargs = dict(max_steps=budget, tol=ctx.spec.tol, record=True)
    blocked = ctx.system.run_ensemble(initials, block_size=2, **kwargs)
    oneshot = ctx.system.run_ensemble(initials, **kwargs)
    if not np.array_equal(blocked.finals, oneshot.finals):
        worst = float(np.max(np.abs(blocked.finals - oneshot.finals)))
        return OracleResult(
            "blocked-equivalence", True, False,
            f"finals differ between block_size=2 and one-shot "
            f"(max |diff| = {worst:.3e})")
    if blocked.outcomes != oneshot.outcomes:
        return OracleResult(
            "blocked-equivalence", True, False,
            "outcome classification differs between blocked and "
            "one-shot execution")
    if not np.array_equal(blocked.steps, oneshot.steps):
        return OracleResult(
            "blocked-equivalence", True, False,
            "per-member step counts differ between blocked and "
            "one-shot execution")
    if blocked.periods != oneshot.periods:
        return OracleResult(
            "blocked-equivalence", True, False,
            "detected periods differ between blocked and one-shot "
            "execution")
    for m in range(len(blocked)):
        if not np.array_equal(blocked.histories[m],
                              oneshot.histories[m]):
            return OracleResult(
                "blocked-equivalence", True, False,
                f"member {m}: retained history differs between "
                f"blocked and one-shot execution")
    return OracleResult(
        "blocked-equivalence", True, True,
        f"{len(blocked)} members bit-identical in blocks of "
        f"{blocked.block_size} ({budget}-step budget)")


def check_rcp_stability(ctx: ScenarioContext) -> OracleResult:
    """Voice et al.: the discrete RCP update contracts toward its fixed
    point with multiplier ``1 - s``, so a stability factor ``s`` safely
    below 2 must converge globally — and onto the max-min allocation of
    the effective capacities ``x* mu^a`` — while ``s`` safely above 2
    at a single gateway makes the fixed point repelling, so the run
    cannot converge (the beta=0 map is conjugate to the logistic map).
    Scenarios inside the ``(2(1-margin), 2(1+margin))`` band, or
    unstable multi-gateway ones (where coupling can re-stabilise),
    are inapplicable.
    """
    spec = ctx.spec
    if spec.controller is None or spec.controller.kind != "rcp":
        return OracleResult("rcp-stability", False, True,
                            "no RCP controller in this scenario")
    bank = ctx.system.bank
    s = bank.controller.stability_factor()
    if s <= 2.0 * (1.0 - RCP_MARGIN):
        if not ctx.converged:
            return OracleResult(
                "rcp-stability", True, False,
                f"stability factor s={s:.4f} < 2 but outcome is "
                f"{ctx.trajectory.outcome.value}")
        predicted = bank.predicted_allocation()
        deviation = sup_norm(ctx.trajectory.final, predicted) \
            / max(1e-12, float(np.max(predicted)))
        return OracleResult(
            "rcp-stability", True, deviation <= RCP_ALLOC_TOL,
            f"s={s:.4f}: converged; relative deviation from the "
            f"max-min allocation of x*mu: {deviation:.3e} "
            f"(tol {RCP_ALLOC_TOL:.0e})")
    if s >= 2.0 * (1.0 + RCP_MARGIN):
        if ctx.system.network.num_gateways > 1:
            return OracleResult(
                "rcp-stability", False, True,
                f"s={s:.4f} > 2 but multiple gateways; min-over-path "
                f"coupling can re-stabilise the loop")
        if ctx.converged:
            # One escape hatch: the clipped update can land *exactly*
            # on the repelling fixed point (e.g. fill * FACTOR_MAX hits
            # the fair share dead-on), and a deterministic map stays
            # there.  Exact equality is the artifact's signature; any
            # float-close-but-not-equal convergence is a real bug.
            predicted = bank.predicted_allocation()
            if np.array_equal(ctx.trajectory.final, predicted):
                return OracleResult(
                    "rcp-stability", False, True,
                    f"s={s:.4f} > 2 but the clipped update landed "
                    f"bit-exactly on the repelling fixed point")
            return OracleResult(
                "rcp-stability", True, False,
                f"stability factor s={s:.4f} > 2 at a single gateway "
                f"yet the run converged; the fixed point is repelling")
        return OracleResult(
            "rcp-stability", True, True,
            f"s={s:.4f} > 2: outcome "
            f"{ctx.trajectory.outcome.value} as predicted")
    return OracleResult(
        "rcp-stability", False, True,
        f"s={s:.4f} inside the soft boundary band around 2")


def check_tcp_oscillation(ctx: ScenarioContext) -> OracleResult:
    """Andrews-Slivkins: TCP-like AIMD has no fixed point — the
    adjustment never vanishes — so a homogeneous tcp-like scenario can
    neither converge (the increase term is bounded away from zero at
    any finite rate vector with bounded delays) nor diverge (the
    multiplicative decrease caps the sawtooth below ``mu`` plus one
    additive step).  Moreover every connection's sawtooth must straddle
    the threshold: its signal dips below (additive-increase phase) and
    reaches it (decrease phase) somewhere along the trajectory.
    """
    spec = ctx.spec
    if spec.controller is not None or spec.fault_plan is not None \
            or spec.chaotic:
        return OracleResult("tcp-oscillation", False, True,
                            "needs plain tcp-like dynamics")
    if not (spec.homogeneous and spec.rules[0].kind == "tcp-like"):
        return OracleResult("tcp-oscillation", False, True,
                            "needs a homogeneous tcp-like rule mix")
    outcome = ctx.trajectory.outcome
    if outcome is Outcome.CONVERGED:
        return OracleResult(
            "tcp-oscillation", True, False,
            "run converged, but the AIMD adjustment never vanishes — "
            "tcp-like has no fixed point")
    if outcome is Outcome.DIVERGED:
        return OracleResult(
            "tcp-oscillation", True, False,
            "run diverged, but multiplicative decrease bounds the "
            "sawtooth")
    history = ctx.trajectory.history
    signals = ctx.system.scheme.signals_batch(history)
    threshold = float(dict(spec.rules[0].params)["threshold"])
    lows = np.min(signals, axis=0)
    highs = np.max(signals, axis=0)
    for i in range(signals.shape[1]):
        if not (lows[i] < threshold <= highs[i]):
            return OracleResult(
                "tcp-oscillation", True, False,
                f"connection {i}: signal range [{lows[i]:.4f}, "
                f"{highs[i]:.4f}] never straddles the threshold "
                f"{threshold}")
    return OracleResult(
        "tcp-oscillation", True, True,
        f"{outcome.value}; every sawtooth straddles the threshold "
        f"{threshold} over {history.shape[0]} recorded steps")


def check_adversarial_floor(ctx: ScenarioContext) -> OracleResult:
    """Theorem 5 under live fire: honest TSI connections keep their
    reservation floors ``min_a rho_ss_i mu^a / N^a`` whatever the
    adversaries at the other connections do — *provided* the discipline
    satisfies the theorem's condition, which unweighted Fair Share does
    and FIFO does not.  The oracle asserts the floors regardless of the
    discipline: green on Fair Share is Theorem 5, and a violation on a
    hand-built FIFO scenario is the paper's own counterexample (the
    generator only draws adversaries behind fair-share gateways, so
    fuzzing stays green)."""
    spec = ctx.spec
    if not spec.adversaries:
        return OracleResult("adversarial-floor", False, True,
                            "no adversaries in this scenario")
    if spec.style != "individual":
        return OracleResult(
            "adversarial-floor", False, True,
            "the robustness floor is an individual-feedback statement")
    if spec.discipline not in ("fifo", "fair-share"):
        return OracleResult(
            "adversarial-floor", False, True,
            f"no floor prediction for discipline {spec.discipline!r}")
    honest = spec.honest_indices()
    if not honest:
        return OracleResult("adversarial-floor", False, True,
                            "every connection is adversarial")
    if not all(spec.rules[i].tsi for i in honest):
        return OracleResult(
            "adversarial-floor", False, True,
            "an honest connection runs a non-TSI rule; Theorem 5 "
            "protects TSI sources")
    if not ctx.converged:
        return OracleResult(
            "adversarial-floor", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    check = check_robustness_floor(
        ctx.system.network, ctx.system.signal_fn, ctx.system.rules,
        ctx.trajectory.final)
    return OracleResult(
        "adversarial-floor", True, check.holds,
        f"{spec.discipline}: {check.describe()}")


def check_async_fixed_point(ctx: ScenarioContext) -> OracleResult:
    """Schedule/delay invariance of fixed points (Section 3 of the
    asynchronous analysis): a fixed point of the synchronous map is a
    fixed point of *every* asynchronous iteration — whichever subset of
    connections updates, and however stale the signals they act on, a
    source already at ``r*`` recomputes ``r*``.  The oracle starts the
    async engine exactly on the converged synchronous state and asserts
    it stays there under the scenario's clock schedule and two
    contrasting schedules, each with the scenario's signal delay."""
    spec = ctx.spec
    if spec.clock is None:
        return OracleResult("async-fixed-point", False, True,
                            "scenario carries no clock")
    why = _chaotic(spec)
    if why:
        return OracleResult("async-fixed-point", False, True, why)
    if not ctx.converged:
        return OracleResult(
            "async-fixed-point", False, True,
            f"trajectory outcome {ctx.trajectory.outcome.value}")
    fixed = ctx.trajectory.final
    scale = ctx.scale()
    tau = spec.clock.signal_delay
    combos = [
        ("clock", spec.clock.schedule(), tau),
        ("round-robin", RoundRobinSchedule(), tau),
        ("bernoulli", BernoulliSchedule(0.5, seed=spec.seed), tau + 2),
    ]
    worst = 0.0
    for label, sched, delay in combos:
        ens = run_async_ensemble(
            ctx.system, fixed[np.newaxis], schedule=sched,
            signal_delay=delay, max_steps=min(spec.max_steps, 400),
            tol=spec.tol)
        deviation = sup_norm(ens.finals[0], fixed)
        if ens.outcomes[0] is not Outcome.CONVERGED:
            return OracleResult(
                "async-fixed-point", True, False,
                f"{label} schedule (delay {delay}): started at the "
                f"synchronous fixed point but finished "
                f"{ens.outcomes[0].value}")
        if deviation > FIXED_POINT_TOL * scale:
            return OracleResult(
                "async-fixed-point", True, False,
                f"{label} schedule (delay {delay}): drifted "
                f"{deviation:.3e} off the synchronous fixed point "
                f"(tol {FIXED_POINT_TOL:.0e} * scale {scale:.3g})")
        worst = max(worst, deviation)
    return OracleResult(
        "async-fixed-point", True, True,
        f"fixed point held under {len(combos)} schedule/delay combos "
        f"(max drift {worst:.3e})")


def check_async_batch_equivalence(ctx: ScenarioContext) -> OracleResult:
    """``run_async_ensemble`` members reproduce the scalar
    :class:`AsynchronousRunner` bit-identically — finals, outcomes,
    and step counts — under the scenario's clock schedule and delay."""
    spec = ctx.spec
    if spec.clock is None:
        return OracleResult("async-batch-equivalence", False, True,
                            "scenario carries no clock")
    why = _chaotic(spec)
    if why:
        return OracleResult("async-batch-equivalence", False, True, why)
    budget = min(spec.max_steps, 400)
    initials = ctx.probes[:2]
    sched = spec.clock.schedule()
    tau = spec.clock.signal_delay
    ens = run_async_ensemble(ctx.system, initials, schedule=sched,
                             signal_delay=tau, max_steps=budget,
                             tol=spec.tol)
    runner = AsynchronousRunner(ctx.system, sched, signal_delay=tau)
    for m in range(len(ens)):
        traj = runner.run(initials[m], max_steps=budget, tol=spec.tol)
        if ens.outcomes[m] is not traj.outcome:
            return OracleResult(
                "async-batch-equivalence", True, False,
                f"member {m}: ensemble outcome {ens.outcomes[m].value} "
                f"!= scalar {traj.outcome.value}")
        if int(ens.steps[m]) != traj.steps:
            return OracleResult(
                "async-batch-equivalence", True, False,
                f"member {m}: ensemble steps {int(ens.steps[m])} != "
                f"scalar {traj.steps}")
        if not np.array_equal(ens.finals[m], traj.final):
            diff = float(np.max(np.abs(ens.finals[m] - traj.final)))
            return OracleResult(
                "async-batch-equivalence", True, False,
                f"member {m}: final states differ by {diff:.3e} "
                f"(contract is bit-identity)")
    return OracleResult(
        "async-batch-equivalence", True, True,
        f"{len(ens)} members bit-identical to the scalar runner "
        f"under the {spec.clock.kind} clock, delay {tau} "
        f"({budget}-step budget)")


#: The oracle catalogue, in evaluation order.
ORACLES: Dict[str, Callable[[ScenarioContext], OracleResult]] = {
    "batch-equivalence": check_batch_equivalence,
    "ensemble-equivalence": check_ensemble_equivalence,
    "blocked-equivalence": check_blocked_equivalence,
    "kernel-equivalence": check_kernel_equivalence,
    "compiled-equivalence": check_compiled_equivalence,
    "fixed-point": check_fixed_point,
    "tsi": check_tsi,
    "fairness-manifold": check_fairness_manifold,
    "fs-floor": check_fs_floor,
    "stability": check_stability,
    "steady-signal": check_steady_signal,
    "fault-determinism": check_fault_determinism,
    "rcp-stability": check_rcp_stability,
    "tcp-oscillation": check_tcp_oscillation,
    "adversarial-floor": check_adversarial_floor,
    "async-fixed-point": check_async_fixed_point,
    "async-batch-equivalence": check_async_batch_equivalence,
}


def oracle_names() -> List[str]:
    return list(ORACLES)


def run_oracle(name: str, ctx: ScenarioContext) -> OracleResult:
    """Evaluate one oracle by name.  Raises
    :class:`~repro.errors.OracleError` for unknown names."""
    try:
        oracle = ORACLES[name]
    except KeyError:
        raise OracleError(
            f"unknown oracle {name!r} (known: {oracle_names()})") \
            from None
    return oracle(ctx)


def run_all_oracles(spec: ScenarioSpec,
                    oracles: Optional[Sequence[str]] = None,
                    system: Optional[FlowControlSystem] = None
                    ) -> List[OracleResult]:
    """Evaluate a scenario against (a subset of) the catalogue.

    ``system`` lets callers inject a pre-built (possibly instrumented)
    system — the mutation tests use this to plant a discrepancy between
    redundant paths and watch an oracle catch it.
    """
    names = oracle_names() if oracles is None else list(oracles)
    ctx = ScenarioContext(spec, system=system)
    return [run_oracle(name, ctx) for name in names]
