"""Greedy minimisation of failing fuzzing scenarios.

When a scenario violates an oracle, the raw spec is rarely the story —
a five-connection parking lot with seven-digit rates obscures a bug
that a two-connection single gateway with round rates would show just
as well.  :func:`shrink` repeatedly tries structure-removing and
value-simplifying edits, keeping an edit whenever the *same* oracles
still fail on the smaller spec:

1. drop a connection (with its rule, weight, initial rate, and any
   gateway left unused);
2. truncate a multi-hop path to its first gateway;
3. clear the fault plan;
4. zero all latencies;
5. homogenise the rule mix (everyone gets connection 0's rule);
6. round service rates and initial rates to 2, then 1, decimals.

The loop is greedy and deterministic: edits are tried in a fixed
order, each accepted edit restarts the pass, and the search stops at a
fixed point or after ``max_iters`` oracle evaluations.  Every
candidate is validated by the spec layer; candidates that no longer
form a buildable scenario are simply skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ReproError, ScenarioError
from .oracles import run_all_oracles
from .spec import ConnectionSpec, ScenarioSpec

__all__ = ["ShrinkResult", "failing_oracles", "shrink"]


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of one shrink search.

    Attributes:
        spec: the smallest failing spec found (the original when no
            edit could be accepted).
        oracles: the oracle names the shrunk spec still violates.
        evaluations: oracle-harness evaluations spent.
        accepted: number of edits that survived.
    """

    spec: ScenarioSpec
    oracles: Tuple[str, ...]
    evaluations: int
    accepted: int


def failing_oracles(spec: ScenarioSpec,
                    oracles: Optional[Sequence[str]] = None
                    ) -> Tuple[str, ...]:
    """Names of the oracles ``spec`` violates (empty when healthy)."""
    return tuple(res.name for res in run_all_oracles(spec, oracles)
                 if res.violated)


def _candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """All single-edit simplifications of ``spec``, simplest-first,
    skipping edits that do not change the spec or do not validate."""
    out: List[ScenarioSpec] = []

    def offer(make: Callable[[], ScenarioSpec]) -> None:
        try:
            candidate = make()
        except ReproError:
            return
        if candidate != spec:
            out.append(candidate)

    for i in range(spec.num_connections):
        offer(lambda i=i: spec.drop_connection(i))
    for i, conn in enumerate(spec.connections):
        if len(conn.path) > 1:
            def truncate(i=i, conn=conn):
                connections = list(spec.connections)
                connections[i] = ConnectionSpec(conn.name,
                                                (conn.path[0],))
                used = {g for c in connections for g in c.path}
                return replace(
                    spec,
                    connections=tuple(connections),
                    gateways=tuple(g for g in spec.gateways
                                   if g.name in used))
            offer(truncate)
    if spec.fault_plan is not None:
        offer(lambda: replace(spec, fault_plan=None))
    if any(g.latency != 0.0 for g in spec.gateways):
        offer(lambda: replace(
            spec,
            gateways=tuple(replace(g, latency=0.0)
                           for g in spec.gateways)))
    if not spec.homogeneous:
        offer(lambda: replace(
            spec, rules=(spec.rules[0],) * spec.num_connections))
    for decimals in (2, 1):
        offer(lambda d=decimals: spec.with_rounded_values(d))
    return out


def shrink(spec: ScenarioSpec,
           oracles: Optional[Sequence[str]] = None,
           max_iters: int = 200) -> ShrinkResult:
    """Greedily minimise a failing scenario.

    ``oracles`` restricts which oracles define "failing" (default: the
    full catalogue).  An edit is accepted only when every oracle that
    failed on the *current* spec still fails on the candidate, so the
    shrunk spec reproduces the original violation, not a new one.
    Raises :class:`~repro.errors.ScenarioError` when ``spec`` does not
    fail in the first place — shrinking a healthy spec is a harness
    bug, not a fuzzing outcome.
    """
    target = failing_oracles(spec, oracles)
    evaluations = 1
    if not target:
        raise ScenarioError(
            f"scenario {spec.name!r} violates no oracle; there is "
            f"nothing to shrink")
    accepted = 0
    current = spec
    progress = True
    while progress and evaluations < max_iters:
        progress = False
        for candidate in _candidates(current):
            if evaluations >= max_iters:
                break
            still_failing = failing_oracles(candidate, oracles)
            evaluations += 1
            if set(target) <= set(still_failing):
                current = candidate
                accepted += 1
                progress = True
                break
    return ShrinkResult(spec=current, oracles=target,
                        evaluations=evaluations, accepted=accepted)
