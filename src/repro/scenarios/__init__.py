"""Scenario fuzzing with differential and theorem oracles.

The subsystem has four layers:

* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, the
  serialisable, exactly-JSON-round-tripping description of one
  configuration (topology, rules, signal, discipline, initial state,
  optional fault plan);
* :mod:`~repro.scenarios.generator` — seeded deterministic generation
  of specs from the paper's configuration families;
* :mod:`~repro.scenarios.oracles` — the catalogue of cross-checks:
  engine-equivalence contracts and the paper's theorems as predicates;
* :mod:`~repro.scenarios.shrink` / :mod:`~repro.scenarios.harness` —
  greedy minimisation of failures and the ``python -m repro fuzz``
  driver.
"""

from .generator import generate, generate_spec, validate_budget
from .harness import FuzzReport, ScenarioOutcome, fuzz, run_scenario
from .oracles import (ORACLES, OracleResult, ScenarioContext, oracle_names,
                      run_all_oracles, run_oracle)
from .shrink import ShrinkResult, failing_oracles, shrink
from .spec import (SCENARIO_SCHEMA, AdversarySpec, ClockSpec,
                   ConnectionSpec, ControllerSpec, FaultPlanSpec,
                   GatewaySpec, InjectorSpec, RuleSpec, ScenarioSpec,
                   SignalSpec, StructuralInjectorSpec, StructuralPlanSpec)

__all__ = [
    "SCENARIO_SCHEMA",
    "GatewaySpec", "ConnectionSpec", "SignalSpec", "RuleSpec",
    "InjectorSpec", "FaultPlanSpec", "ControllerSpec", "ScenarioSpec",
    "AdversarySpec", "StructuralInjectorSpec", "StructuralPlanSpec",
    "ClockSpec",
    "generate", "generate_spec", "validate_budget",
    "ORACLES", "OracleResult", "ScenarioContext", "oracle_names",
    "run_oracle", "run_all_oracles",
    "ShrinkResult", "failing_oracles", "shrink",
    "ScenarioOutcome", "FuzzReport", "run_scenario", "fuzz",
]
