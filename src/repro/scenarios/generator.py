"""Seeded random generation of :class:`~repro.scenarios.ScenarioSpec` s.

The generator draws from the configuration families the paper actually
analyses — not arbitrary noise:

* **topologies** — single shared gateway, the two-gateway shared
  example, tandems, parking lots, and random connected multi-gateway
  networks (via :func:`~repro.core.topology.random_network`);
* **rules** — the paper's rate-adjustment families
  (:data:`~repro.scenarios.spec.RULE_KINDS`), mostly homogeneous so
  the theorem oracles apply, occasionally heterogeneous to exercise
  the robustness path;
* **signals, disciplines, styles** — every combination the engines
  support, including weighted Fair Share;
* **fault plans** — a minority of scenarios carry a small seeded
  fault plan so the fault-determinism contracts are fuzzed too;
* **chaos** — a minority of non-controller scenarios carry adversaries
  (only behind fair-share gateways, where Theorem 5 predicts the
  honest floors the adversarial-floor oracle asserts) or a structural
  plan (scheduled capacity degradations / blackholes, exercised by the
  fault-determinism oracle's structural branch);
* **clocks** — a minority of non-controller scenarios carry a
  heterogeneous update clock (:class:`~repro.scenarios.spec.ClockSpec`
  — slow/fast mixes, drifting, bursty, plus a small signal delay),
  exercised by the async fixed-point and scalar-vs-batch oracles.

Determinism contract: ``generate_spec(seed, i)`` depends only on
``(seed, i)`` — it seeds a fresh ``np.random.default_rng([seed, i])``
per scenario, so generation order, batching, and process boundaries
cannot change the specs.  ``generate(seed, count)`` is therefore
reproducible spec-for-spec, and any single scenario from a large sweep
can be regenerated alone.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.topology import random_network
from ..errors import SweepError
from .spec import (AdversarySpec, ClockSpec, ConnectionSpec,
                   ControllerSpec, FaultPlanSpec, GatewaySpec,
                   InjectorSpec, RuleSpec, ScenarioSpec, SignalSpec,
                   StructuralInjectorSpec, StructuralPlanSpec)

__all__ = ["validate_budget", "generate_spec", "generate"]

#: Hard cap on shrink-search evaluations; :func:`validate_budget` clamps
#: requests above it (see ISSUE: clamp, don't reject).
MAX_SHRINK_ITERS = 400


def validate_budget(seed: int, count: int,
                    max_shrink_iters: Optional[int] = None
                    ) -> Tuple[int, int, int]:
    """Validate a fuzzing budget, ``chunk_indices``-style.

    Rejects non-integer or boolean seeds/counts and ``count <= 0`` with
    :class:`~repro.errors.SweepError` (the orchestration-error class —
    never a bare ``ValueError``).  ``max_shrink_iters`` defaults to
    :data:`MAX_SHRINK_ITERS` and is *clamped* into
    ``[1, MAX_SHRINK_ITERS]`` rather than rejected.
    Returns the validated ``(seed, count, max_shrink_iters)``.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise SweepError(
            f"fuzz seed must be an integer, got {seed!r} "
            f"({type(seed).__name__})")
    if seed < 0:
        raise SweepError(f"fuzz seed must be >= 0, got {seed!r}")
    if not isinstance(count, (int, np.integer)) or isinstance(count, bool):
        raise SweepError(
            f"fuzz count must be an integer, got {count!r} "
            f"({type(count).__name__})")
    if count <= 0:
        raise SweepError(
            f"fuzz count must be positive, got {count!r}")
    if max_shrink_iters is None:
        max_shrink_iters = MAX_SHRINK_ITERS
    if not isinstance(max_shrink_iters, (int, np.integer)) \
            or isinstance(max_shrink_iters, bool):
        raise SweepError(
            f"max_shrink_iters must be an integer, got "
            f"{max_shrink_iters!r} ({type(max_shrink_iters).__name__})")
    max_shrink_iters = int(min(max(1, max_shrink_iters), MAX_SHRINK_ITERS))
    return int(seed), int(count), max_shrink_iters


def _round3(value: float) -> float:
    return round(float(value), 3)


def _draw_topology(rng: np.random.Generator):
    """One topology draw: gateway specs, connection specs."""
    family = rng.choice(
        ["single", "two-shared", "tandem", "parking-lot", "random"],
        p=[0.3, 0.15, 0.15, 0.15, 0.25])
    if family == "single":
        n = int(rng.integers(2, 7))
        mu = _round3(rng.uniform(0.5, 3.0))
        gws = (GatewaySpec("g0", mu),)
        conns = tuple(ConnectionSpec(f"c{i}", ("g0",)) for i in range(n))
    elif family == "two-shared":
        mu_a = _round3(rng.uniform(0.5, 2.0))
        mu_b = _round3(rng.uniform(0.5, 2.0))
        gws = (GatewaySpec("ga", mu_a), GatewaySpec("gb", mu_b))
        conns = (ConnectionSpec("long", ("ga", "gb")),
                 ConnectionSpec("a_only", ("ga",)),
                 ConnectionSpec("b_only", ("gb",)))
    elif family == "tandem":
        n_gw = int(rng.integers(2, 5))
        n = int(rng.integers(2, 6))
        mu = _round3(rng.uniform(0.8, 2.5))
        gws = tuple(GatewaySpec(f"g{k}", mu) for k in range(n_gw))
        path = tuple(g.name for g in gws)
        conns = tuple(ConnectionSpec(f"c{i}", path) for i in range(n))
    elif family == "parking-lot":
        n_hops = int(rng.integers(2, 5))
        mu = _round3(rng.uniform(0.8, 2.5))
        gws = tuple(GatewaySpec(f"g{k}", mu) for k in range(n_hops))
        long_path = tuple(g.name for g in gws)
        conns = [ConnectionSpec("long", long_path)]
        for k in range(n_hops):
            conns.append(ConnectionSpec(f"x{k}", (f"g{k}",)))
        conns = tuple(conns)
    else:
        # Resolve a random connected network into explicit specs; the
        # spec is the source of truth, the builder only a sampler.
        net = random_network(
            n_gateways=int(rng.integers(2, 6)),
            n_connections=int(rng.integers(2, 7)),
            seed=int(rng.integers(0, 2**31 - 1)),
            mu_range=(0.5, 2.5),
            latency_range=(0.0, 0.0),
            max_path_len=3)
        gws = tuple(GatewaySpec(g, _round3(net.mu(g)))
                    for g in net.gateway_names)
        conns = tuple(
            ConnectionSpec(f"c{i}", tuple(net.gamma(i)))
            for i in range(net.num_connections))
    return gws, conns


def _draw_rule(rng: np.random.Generator) -> RuleSpec:
    """One tame rule draw from the paper's families."""
    kind = rng.choice(
        ["proportional-target", "target", "decbit-rate", "binary-aimd"],
        p=[0.45, 0.25, 0.2, 0.1])
    if kind == "proportional-target":
        params = {"eta": _round3(rng.uniform(0.2, 0.8)),
                  "beta": _round3(rng.uniform(0.3, 0.6))}
    elif kind == "target":
        params = {"eta": _round3(rng.uniform(0.05, 0.3)),
                  "beta": _round3(rng.uniform(0.3, 0.6))}
    elif kind == "decbit-rate":
        params = {"eta": _round3(rng.uniform(0.02, 0.1)),
                  "beta": _round3(rng.uniform(0.3, 0.7))}
    else:
        params = {"increase": _round3(rng.uniform(0.005, 0.02)),
                  "decrease": _round3(rng.uniform(0.05, 0.2)),
                  "threshold": _round3(rng.uniform(0.4, 0.6))}
    return RuleSpec(str(kind), params)


def _draw_fault_plan(rng: np.random.Generator,
                     n_connections: int) -> FaultPlanSpec:
    """A small seeded fault plan (1-2 mild injectors)."""
    choices = ["loss", "quantise", "delay", "corrupt"]
    n_inj = int(rng.integers(1, 3))
    injectors = []
    for kind in rng.choice(choices, size=n_inj, replace=False):
        if kind == "loss":
            injectors.append(InjectorSpec("loss", {
                "rate": _round3(rng.uniform(0.05, 0.3))}))
        elif kind == "quantise":
            injectors.append(InjectorSpec("quantise", {
                "levels": int(rng.integers(4, 33))}))
        elif kind == "delay":
            injectors.append(InjectorSpec("delay", {
                "delay": int(rng.integers(1, 4)),
                "jitter": int(rng.integers(0, 3))}))
        else:
            injectors.append(InjectorSpec("corrupt", {
                "rate": _round3(rng.uniform(0.05, 0.2)),
                "amplitude": _round3(rng.uniform(0.01, 0.1))}))
    return FaultPlanSpec(seed=int(rng.integers(0, 2**31 - 1)),
                         injectors=tuple(injectors))


def _draw_adversaries(rng: np.random.Generator, n: int,
                      mu_min: float) -> Tuple[AdversarySpec, ...]:
    """1-2 misbehaving connections, parameters scaled to the topology."""
    n_adv = 1 if n < 4 else int(rng.integers(1, 3))
    indices = sorted(int(i) for i in
                     rng.choice(n, size=n_adv, replace=False))
    out = []
    for i in indices:
        kind = str(rng.choice(["blaster", "pinned", "sawtooth"]))
        if kind == "blaster":
            params = {"increment": _round3(rng.uniform(0.02, 0.1)),
                      "cap": _round3(rng.uniform(1.0, 3.0) * mu_min)}
        elif kind == "pinned":
            params = {"rate": _round3(rng.uniform(0.5, 1.5) * mu_min)}
        else:
            params = {"low": _round3(rng.uniform(0.05, 0.2)),
                      "high": _round3(rng.uniform(0.8, 2.0) * mu_min),
                      "increase": _round3(rng.uniform(0.05, 0.15))}
        out.append(AdversarySpec(i, kind, params))
    return tuple(out)


def _draw_structural_plan(rng: np.random.Generator,
                          gateway_names) -> StructuralPlanSpec:
    """1-2 scheduled topology faults over the scenario's gateways."""
    n_inj = int(rng.integers(1, 3))
    injectors = []
    for _ in range(n_inj):
        gw = str(rng.choice(gateway_names))
        start = int(rng.integers(10, 120))
        duration = int(rng.integers(5, 60))
        params = {"gateway": gw, "start": start, "duration": duration}
        if rng.random() < 0.3:
            params["period"] = duration + int(rng.integers(20, 80))
        if rng.random() < 0.3:
            params["jitter"] = int(rng.integers(1, 4))
        if rng.random() < 0.7:
            params["factor"] = _round3(rng.uniform(0.3, 0.9))
            injectors.append(StructuralInjectorSpec("degrade", params))
        else:
            injectors.append(StructuralInjectorSpec("blackhole", params))
    return StructuralPlanSpec(seed=int(rng.integers(0, 2**31 - 1)),
                              injectors=tuple(injectors))


def _draw_clock(rng: np.random.Generator) -> ClockSpec:
    """One heterogeneous update clock with tame tick rates."""
    kind = str(rng.choice(["mix", "drifting", "bursty", "uniform"],
                          p=[0.35, 0.25, 0.25, 0.15]))
    if kind == "mix":
        params = {"slow_rate": _round3(rng.uniform(0.1, 0.5)),
                  "fast_rate": _round3(rng.uniform(0.7, 1.0)),
                  "slow_fraction": _round3(rng.uniform(0.2, 0.8))}
    elif kind == "drifting":
        # Amplitude must keep every instantaneous rate inside (0, 1]:
        # bounded away from both base_rate and 1 - base_rate.
        base = _round3(rng.uniform(0.4, 0.7))
        amp_max = min(base, 1.0 - base) - 0.05
        params = {"base_rate": base,
                  "amplitude": _round3(rng.uniform(0.05, amp_max)),
                  "period": int(rng.integers(16, 129))}
    elif kind == "bursty":
        params = {"on_rate": _round3(rng.uniform(0.7, 1.0)),
                  "off_rate": _round3(rng.uniform(0.05, 0.4)),
                  "burst_len": int(rng.integers(4, 33))}
    else:
        params = {"rate": _round3(rng.uniform(0.3, 1.0))}
    params["seed"] = int(rng.integers(0, 2**31 - 1))
    return ClockSpec(kind, params,
                     signal_delay=int(rng.integers(0, 3)))


def generate_spec(seed: int, index: int) -> ScenarioSpec:
    """The ``index``-th scenario of the stream seeded by ``seed``.

    Deterministic in ``(seed, index)`` alone — uses
    ``np.random.default_rng([seed, index])``, so scenarios can be
    regenerated individually in any order.
    """
    seed, _, _ = validate_budget(seed, 1)
    if not isinstance(index, (int, np.integer)) or isinstance(index, bool) \
            or index < 0:
        raise SweepError(
            f"scenario index must be an integer >= 0, got {index!r}")
    rng = np.random.default_rng([int(seed), int(index)])

    gateways, connections = _draw_topology(rng)
    n = len(connections)

    homogeneous = rng.random() < 0.7
    if homogeneous:
        rules = (_draw_rule(rng),) * n
    else:
        rules = tuple(_draw_rule(rng) for _ in range(n))

    style = "individual" if rng.random() < 0.6 else "aggregate"

    signal_draw = rng.random()
    if signal_draw < 0.6:
        signal = SignalSpec("linear-saturating")
    elif signal_draw < 0.85:
        signal = SignalSpec("power-saturating",
                            _round3(rng.uniform(1.5, 3.0)))
    else:
        signal = SignalSpec("exponential", _round3(rng.uniform(0.5, 2.0)))

    disc_draw = rng.random()
    # Weighted Fair Share needs one global weight vector to be coherent
    # at every gateway, i.e. every connection crossing every gateway.
    full_crossing = all(
        sum(g.name in c.path for c in connections) == n for g in gateways)
    weights = None
    if disc_draw < 0.45:
        discipline = "fifo"
    elif disc_draw < 0.8 or not full_crossing:
        discipline = "fair-share"
    else:
        discipline = "weighted-fair-share"
        weights = tuple(_round3(rng.uniform(0.5, 2.0)) for _ in range(n))

    mu_min = min(g.mu for g in gateways)
    initial_rates = tuple(
        max(0.001, _round3(rng.uniform(0.05, 1.2) * mu_min / n))
        for _ in range(n))

    fault_plan = None
    if rng.random() < 0.3:
        fault_plan = _draw_fault_plan(rng, n)

    max_steps = int(rng.choice([800, 1500, 2500]))
    scenario_seed = int(rng.integers(0, 2**31 - 1))

    # Modern-controller zoo: a *final* draw occasionally converts the
    # scenario into a controller-driven (RCP) or TCP-like one.  The zoo
    # draws come after every classic draw, so for a given (seed, index)
    # the classic fields above are exactly what they were before the
    # zoo existed — pinned-seed tests and repro specs stay valid.
    controller = None
    zoo = rng.random()
    if zoo < 0.15:
        beta = (0.0 if rng.random() < 0.3
                else _round3(rng.uniform(0.02, 0.12)))
        controller = ControllerSpec("rcp", {
            "alpha": _round3(rng.uniform(0.3, 0.8)),
            "beta": beta,
            "fill": _round3(rng.uniform(0.3, 0.9))})
        rules = (RuleSpec("rcp-source"),) * n
        fault_plan = None
    elif zoo < 0.3:
        # Homogeneous TCP-like AIMD: gains chosen so the sawtooth
        # period stays well under the limit-cycle detector's window.
        rules = (RuleSpec("tcp-like", {
            "increase": _round3(rng.uniform(0.02, 0.08)),
            "decrease": _round3(rng.uniform(0.05, 0.2)),
            "threshold": _round3(rng.uniform(0.4, 0.6))}),) * n

    # Chaos draws come after *every* earlier draw (the zoo included),
    # so pre-chaos fields of a given (seed, index) are exactly what
    # they were before the chaos layer existed — pinned-seed tests and
    # archived repro specs stay valid.  Controllers exclude both chaos
    # dimensions; adversaries are drawn only behind fair-share
    # gateways, where Theorem 5 predicts the floors the
    # adversarial-floor oracle asserts.
    adversaries = ()
    structural_plan = None
    if controller is None:
        adv_draw = rng.random()
        struct_draw = rng.random()
        if adv_draw < 0.12 and discipline == "fair-share" and n >= 2:
            adversaries = _draw_adversaries(rng, n, mu_min)
        if struct_draw < 0.12:
            structural_plan = _draw_structural_plan(
                rng, [g.name for g in gateways])

    # Clock draws come after every earlier draw (zoo and chaos
    # included), so pre-clock fields of a given (seed, index) are
    # exactly what they were before the heterogeneous-clock engine
    # existed — pinned-seed tests and archived repro specs stay valid.
    # Controllers update at the gateways, so they exclude clocks.
    clock = None
    if controller is None and rng.random() < 0.25:
        clock = _draw_clock(rng)

    return ScenarioSpec(
        name=f"fuzz-{int(seed)}-{int(index)}",
        gateways=gateways,
        connections=connections,
        discipline=discipline,
        signal=signal,
        style=style,
        rules=rules,
        weights=weights,
        initial_rates=initial_rates,
        max_steps=max_steps,
        tol=1e-10,
        seed=scenario_seed,
        fault_plan=fault_plan,
        controller=controller,
        adversaries=adversaries,
        structural_plan=structural_plan,
        clock=clock,
    )


def generate(seed: int, count: int) -> List[ScenarioSpec]:
    """``count`` deterministic scenarios for ``seed``:
    ``[generate_spec(seed, 0), ..., generate_spec(seed, count - 1)]``."""
    seed, count, _ = validate_budget(seed, count)
    return [generate_spec(seed, i) for i in range(count)]
