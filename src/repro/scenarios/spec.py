"""Serialisable scenario specifications for the fuzzing subsystem.

A :class:`ScenarioSpec` is a *complete, standalone* description of one
flow-control configuration: the resolved topology (gateways and
connections, not a family name), the service discipline, the signal
function, the feedback style, one rate-adjustment rule per connection,
optional fair-share weights, the initial condition, the run budget, and
an optional fault plan.  It is the unit of currency of the fuzzing
harness:

* the generator emits specs;
* the differential/oracle harness consumes specs (via :meth:`build`);
* the shrinker transforms specs;
* a failing spec serialises to a single JSON document
  (:meth:`to_json`) that reproduces the failure exactly —
  ``ScenarioSpec.from_json(text)`` round-trips *equal*, field for
  field, so a bug report is one copy-pasteable blob.

All spec classes are frozen dataclasses built from tuples, so equality
is structural and specs are hashable and safe to share.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from ..chaos.adversaries import (AdversaryRule, BlasterRule,
                                 PinnedRateRule, SawtoothRule)
from ..chaos.structural import (CapacityDegradation, GatewayBlackhole,
                                StructuralFaultPlan)
from ..core.asynchronous import (BurstyClock, ClockModel, ClockSchedule,
                                 DriftingClock, RateMixClock,
                                 UniformClock)
from ..core.dynamics import FlowControlSystem
from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.ratecontrol import (BinaryAimdRule, DecbitRateRule,
                                DecbitWindowRule, ProportionalTargetRule,
                                RateAdjustment, RcpSourceRule, TargetRule,
                                TcpLikeRule)
from ..core.rcp import RcpController
from ..core.signals import (ExponentialSignal, FeedbackStyle,
                            LinearSaturating, PowerSaturating)
from ..core.topology import Connection, Gateway, Network
from ..core.weighted import WeightedFairShare
from ..errors import ReproError, ScenarioError
from ..faults import (ClockSkew, ExtraDelay, FaultPlan, GatewayOutage,
                      SignalLoss, SignalNoise, SignalQuantisation)

__all__ = [
    "SCENARIO_SCHEMA",
    "GatewaySpec",
    "ConnectionSpec",
    "SignalSpec",
    "RuleSpec",
    "ControllerSpec",
    "ClockSpec",
    "InjectorSpec",
    "FaultPlanSpec",
    "AdversarySpec",
    "StructuralInjectorSpec",
    "StructuralPlanSpec",
    "ScenarioSpec",
]

#: Schema identifier embedded in every serialised scenario.
SCENARIO_SCHEMA = "repro.scenario-spec/v1"

#: Rule kinds the spec layer knows how to build, with their parameter
#: names.  TSI kinds declare a target signal (Theorem 1) — the oracle
#: layer uses this to decide which theorem oracles apply.
RULE_KINDS = {
    "target": ("eta", "beta"),
    "proportional-target": ("eta", "beta"),
    "decbit-window": ("eta", "beta"),
    "decbit-rate": ("eta", "beta"),
    "binary-aimd": ("increase", "decrease", "threshold"),
    "tcp-like": ("increase", "decrease", "threshold"),
    "rcp-source": (),
}

_RULE_BUILDERS = {
    "target": TargetRule,
    "proportional-target": ProportionalTargetRule,
    "decbit-window": DecbitWindowRule,
    "decbit-rate": DecbitRateRule,
    "binary-aimd": BinaryAimdRule,
    "tcp-like": TcpLikeRule,
    "rcp-source": RcpSourceRule,
}

#: Router-side controller kinds and their parameter names.
CONTROLLER_KINDS = {
    "rcp": ("alpha", "beta", "fill"),
}

_CONTROLLER_BUILDERS = {
    "rcp": RcpController,
}

SIGNAL_KINDS = ("linear-saturating", "power-saturating", "exponential")

DISCIPLINE_KINDS = ("fifo", "fair-share", "weighted-fair-share")

INJECTOR_KINDS = {
    "delay": ("delay", "jitter"),
    "clock_skew": ("min_lag", "max_lag"),
    "outage": ("start", "duration", "period", "gateway"),
    "loss": ("rate", "connections"),
    "corrupt": ("rate", "amplitude"),
    "quantise": ("levels",),
}

_INJECTOR_BUILDERS = {
    "delay": ExtraDelay,
    "clock_skew": ClockSkew,
    "outage": GatewayOutage,
    "loss": SignalLoss,
    "corrupt": SignalNoise,
    "quantise": SignalQuantisation,
}

#: Adversary-zoo kinds (see :mod:`repro.chaos.adversaries`) and their
#: parameter names.
ADVERSARY_KINDS = {
    "blaster": ("increment", "cap"),
    "pinned": ("rate",),
    "sawtooth": ("low", "high", "increase"),
}

_ADVERSARY_BUILDERS = {
    "blaster": BlasterRule,
    "pinned": PinnedRateRule,
    "sawtooth": SawtoothRule,
}

#: Heterogeneous update-clock kinds (see
#: :mod:`repro.core.asynchronous`) and their parameter names.
CLOCK_KINDS = {
    "uniform": ("rate", "seed"),
    "mix": ("slow_rate", "fast_rate", "slow_fraction", "seed"),
    "drifting": ("base_rate", "amplitude", "period", "seed"),
    "bursty": ("on_rate", "off_rate", "burst_len", "seed"),
}

_CLOCK_BUILDERS = {
    "uniform": UniformClock,
    "mix": RateMixClock,
    "drifting": DriftingClock,
    "bursty": BurstyClock,
}

#: Structural injector kinds (see :mod:`repro.chaos.structural`) and
#: their parameter names.
STRUCTURAL_KINDS = {
    "degrade": ("gateway", "factor", "start", "duration", "period",
                "jitter"),
    "blackhole": ("gateway", "start", "duration", "period", "jitter"),
}

_STRUCTURAL_BUILDERS = {
    "degrade": CapacityDegradation,
    "blackhole": GatewayBlackhole,
}


def _params_tuple(kind: str, params, known) -> Tuple[Tuple[str, object], ...]:
    """Normalise a params mapping/pair-sequence into a sorted tuple."""
    if isinstance(params, dict):
        items = params.items()
    else:
        items = list(params)
    out = []
    for key, value in sorted(items):
        key = str(key)
        if key not in known:
            raise ScenarioError(
                f"{kind!r}: unknown parameter {key!r} "
                f"(known: {sorted(known)})")
        if isinstance(value, list):
            value = tuple(value)
        out.append((key, value))
    return tuple(out)


@dataclass(frozen=True)
class GatewaySpec:
    """One gateway of a scenario: ``(name, mu, latency)``."""

    name: str
    mu: float
    latency: float = 0.0

    def __post_init__(self):
        if not (isinstance(self.name, str) and self.name):
            raise ScenarioError(
                f"gateway name must be a nonempty string, got "
                f"{self.name!r}")
        if not (math.isfinite(self.mu) and self.mu > 0):
            raise ScenarioError(
                f"gateway {self.name!r}: mu must be finite and positive, "
                f"got {self.mu!r}")
        if not (math.isfinite(self.latency) and self.latency >= 0):
            raise ScenarioError(
                f"gateway {self.name!r}: latency must be finite and "
                f"nonnegative, got {self.latency!r}")

    def to_dict(self) -> dict:
        return {"name": self.name, "mu": self.mu, "latency": self.latency}

    @classmethod
    def from_dict(cls, data: dict) -> "GatewaySpec":
        return cls(name=data["name"], mu=data["mu"],
                   latency=data.get("latency", 0.0))


@dataclass(frozen=True)
class ConnectionSpec:
    """One connection of a scenario: ``(name, path)``."""

    name: str
    path: Tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "path", tuple(self.path))
        if not (isinstance(self.name, str) and self.name):
            raise ScenarioError(
                f"connection name must be a nonempty string, got "
                f"{self.name!r}")
        if not self.path:
            raise ScenarioError(
                f"connection {self.name!r}: path must not be empty")

    def to_dict(self) -> dict:
        return {"name": self.name, "path": list(self.path)}

    @classmethod
    def from_dict(cls, data: dict) -> "ConnectionSpec":
        return cls(name=data["name"], path=tuple(data["path"]))


@dataclass(frozen=True)
class SignalSpec:
    """The signal function ``B``: a kind plus its single parameter.

    ``param`` is the exponent for ``power-saturating``, the rate
    constant for ``exponential``, and must be 0 for
    ``linear-saturating`` (which has no parameter).
    """

    kind: str = "linear-saturating"
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in SIGNAL_KINDS:
            raise ScenarioError(
                f"unknown signal kind {self.kind!r} "
                f"(known: {SIGNAL_KINDS})")
        if self.kind == "linear-saturating":
            if self.param != 0.0:
                raise ScenarioError(
                    "linear-saturating takes no parameter; param must "
                    f"be 0, got {self.param!r}")
        elif not (math.isfinite(self.param) and self.param > 0):
            raise ScenarioError(
                f"signal {self.kind!r}: param must be finite and "
                f"positive, got {self.param!r}")

    def build(self):
        if self.kind == "linear-saturating":
            return LinearSaturating()
        if self.kind == "power-saturating":
            return PowerSaturating(p=self.param)
        return ExponentialSignal(k=self.param)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "param": self.param}

    @classmethod
    def from_dict(cls, data: dict) -> "SignalSpec":
        return cls(kind=data["kind"], param=data.get("param", 0.0))


@dataclass(frozen=True)
class RuleSpec:
    """One rate-adjustment rule: a kind plus its parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs
    so equality and hashing are structural; construct with either a
    mapping or a pair sequence.
    """

    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.kind not in RULE_KINDS:
            raise ScenarioError(
                f"unknown rule kind {self.kind!r} "
                f"(known: {sorted(RULE_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params, RULE_KINDS[self.kind]))

    @property
    def tsi(self) -> bool:
        """Theorem 1: does this rule declare a steady-state signal?"""
        return self.kind in ("target", "proportional-target")

    def target_signal(self) -> float:
        """The declared ``b_ss`` of a TSI rule."""
        if not self.tsi:
            raise ScenarioError(
                f"rule kind {self.kind!r} is not TSI; it has no target "
                f"signal")
        return float(dict(self.params)["beta"])

    def build(self) -> RateAdjustment:
        try:
            return _RULE_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"rule {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "RuleSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class ControllerSpec:
    """A router-side controller: a kind plus its parameters.

    Currently the only kind is ``"rcp"`` (see
    :class:`repro.core.rcp.RcpController`).  Scenarios carrying a
    controller must run ``rcp-source`` rules on every connection — the
    control law lives in the gateways, not the sources.
    """

    kind: str = "rcp"
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.kind not in CONTROLLER_KINDS:
            raise ScenarioError(
                f"unknown controller kind {self.kind!r} "
                f"(known: {sorted(CONTROLLER_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params,
                          CONTROLLER_KINDS[self.kind]))

    def build(self) -> RcpController:
        try:
            return _CONTROLLER_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"controller {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class ClockSpec:
    """A heterogeneous update clock: a :class:`~repro.core.asynchronous
    .ClockModel` kind plus its parameters, and the feedback staleness
    ``signal_delay``.

    The async oracles build it into a
    :class:`~repro.core.asynchronous.ClockSchedule` (via
    :meth:`schedule`) and run the scenario's system through both the
    scalar :class:`~repro.core.asynchronous.AsynchronousRunner` and the
    batched :func:`~repro.core.asynchronous.run_async_ensemble`.
    """

    kind: str = "uniform"
    params: Tuple[Tuple[str, object], ...] = ()
    signal_delay: int = 0

    def __post_init__(self):
        if self.kind not in CLOCK_KINDS:
            raise ScenarioError(
                f"unknown clock kind {self.kind!r} "
                f"(known: {sorted(CLOCK_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params,
                          CLOCK_KINDS[self.kind]))
        if not isinstance(self.signal_delay, int) \
                or isinstance(self.signal_delay, bool) \
                or self.signal_delay < 0:
            raise ScenarioError(
                f"clock signal_delay must be an int >= 0, got "
                f"{self.signal_delay!r}")

    def build(self) -> ClockModel:
        try:
            return _CLOCK_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"clock {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def schedule(self) -> ClockSchedule:
        """The spec's clock as an update schedule."""
        return ClockSchedule(self.build())

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params),
                "signal_delay": self.signal_delay}

    @classmethod
    def from_dict(cls, data: dict) -> "ClockSpec":
        return cls(kind=data["kind"], params=data.get("params", {}),
                   signal_delay=data.get("signal_delay", 0))


@dataclass(frozen=True)
class InjectorSpec:
    """One fault injector: a kind plus its parameters (see
    :mod:`repro.faults.injectors` for the semantics)."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.kind not in INJECTOR_KINDS:
            raise ScenarioError(
                f"unknown injector kind {self.kind!r} "
                f"(known: {sorted(INJECTOR_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params,
                          INJECTOR_KINDS[self.kind]))

    def build(self):
        try:
            return _INJECTOR_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"injector {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def to_dict(self) -> dict:
        params = {}
        for key, value in self.params:
            params[key] = list(value) if isinstance(value, tuple) else value
        return {"kind": self.kind, "params": params}

    @classmethod
    def from_dict(cls, data: dict) -> "InjectorSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class FaultPlanSpec:
    """A serialisable :class:`~repro.faults.FaultPlan` description."""

    seed: int = 0
    injectors: Tuple[InjectorSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "injectors", tuple(self.injectors))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ScenarioError(
                f"fault-plan seed must be an int >= 0, got {self.seed!r}")
        for inj in self.injectors:
            if not isinstance(inj, InjectorSpec):
                raise ScenarioError(
                    f"fault-plan entries must be InjectorSpec, got "
                    f"{inj!r}")

    def build(self) -> FaultPlan:
        return FaultPlan(
            injectors=tuple(inj.build() for inj in self.injectors),
            seed=self.seed)

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "injectors": [inj.to_dict() for inj in self.injectors]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlanSpec":
        return cls(seed=data.get("seed", 0),
                   injectors=tuple(InjectorSpec.from_dict(d)
                                   for d in data.get("injectors", ())))


@dataclass(frozen=True)
class AdversarySpec:
    """One misbehaving connection: which index runs which zoo member.

    An adversary *overrides* the rule at ``connections[index]`` when
    the scenario is built — the honest ``rules`` tuple stays intact,
    so the oracle layer can reason about the honest remainder (and the
    adversarial-floor oracle knows exactly who Theorem 5 protects).
    """

    index: int
    kind: str = "blaster"
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if not isinstance(self.index, int) or isinstance(self.index, bool) \
                or self.index < 0:
            raise ScenarioError(
                f"adversary index must be an int >= 0, got {self.index!r}")
        if self.kind not in ADVERSARY_KINDS:
            raise ScenarioError(
                f"unknown adversary kind {self.kind!r} "
                f"(known: {sorted(ADVERSARY_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params,
                          ADVERSARY_KINDS[self.kind]))

    def build(self) -> AdversaryRule:
        try:
            return _ADVERSARY_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"adversary {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def to_dict(self) -> dict:
        return {"index": self.index, "kind": self.kind,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "AdversarySpec":
        return cls(index=data["index"], kind=data["kind"],
                   params=data.get("params", {}))


@dataclass(frozen=True)
class StructuralInjectorSpec:
    """One structural injector: scheduled topology damage (see
    :mod:`repro.chaos.structural` for the degradation semantics)."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.kind not in STRUCTURAL_KINDS:
            raise ScenarioError(
                f"unknown structural injector kind {self.kind!r} "
                f"(known: {sorted(STRUCTURAL_KINDS)})")
        object.__setattr__(
            self, "params",
            _params_tuple(self.kind, self.params,
                          STRUCTURAL_KINDS[self.kind]))

    def gateway(self) -> Optional[str]:
        """The gateway this injector damages (``None`` when unset —
        caught at build time)."""
        return dict(self.params).get("gateway")

    def build(self):
        try:
            return _STRUCTURAL_BUILDERS[self.kind](**dict(self.params))
        except ReproError as exc:
            raise ScenarioError(
                f"structural injector {self.kind!r} with params "
                f"{dict(self.params)!r}: {exc}") from exc

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "StructuralInjectorSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class StructuralPlanSpec:
    """A serialisable :class:`~repro.chaos.StructuralFaultPlan`."""

    seed: int = 0
    injectors: Tuple[StructuralInjectorSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "injectors", tuple(self.injectors))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ScenarioError(
                f"structural-plan seed must be an int >= 0, got "
                f"{self.seed!r}")
        for inj in self.injectors:
            if not isinstance(inj, StructuralInjectorSpec):
                raise ScenarioError(
                    f"structural-plan entries must be "
                    f"StructuralInjectorSpec, got {inj!r}")

    def build(self) -> StructuralFaultPlan:
        try:
            return StructuralFaultPlan(
                injectors=tuple(inj.build() for inj in self.injectors),
                seed=self.seed)
        except ReproError as exc:
            raise ScenarioError(f"structural plan does not build: "
                                f"{exc}") from exc

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "injectors": [inj.to_dict() for inj in self.injectors]}

    @classmethod
    def from_dict(cls, data: dict) -> "StructuralPlanSpec":
        return cls(seed=data.get("seed", 0),
                   injectors=tuple(StructuralInjectorSpec.from_dict(d)
                                   for d in data.get("injectors", ())))


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible fuzzing scenario.

    Attributes:
        name: human-readable identifier (``fuzz-<seed>-<index>`` for
            generated scenarios).
        gateways / connections: the resolved topology.
        discipline: one of :data:`DISCIPLINE_KINDS`;
            ``weighted-fair-share`` requires ``weights``.
        signal: the signal function ``B``.
        style: ``"aggregate"`` or ``"individual"``.
        rules: one :class:`RuleSpec` per connection.  Equal specs are
            built as one shared rule *object*, so homogeneity is
            preserved and the batch engine's rule grouping stays
            effective.
        weights: optional per-connection fair-share weights.
        initial_rates: the starting rate vector, strictly positive.
        max_steps / tol: the trajectory budget used by the oracle
            harness.
        seed: the scenario's own RNG seed (packet-kernel runs, probe
            states).
        fault_plan: optional fault plan exercised by the
            fault-determinism oracle.
        controller: optional router-side controller
            (:class:`ControllerSpec`).  Requires every rule to be
            ``rcp-source`` and excludes ``fault_plan`` (controllers do
            not read the per-source signal path faults perturb).
        adversaries: optional misbehaving connections
            (:class:`AdversarySpec`).  Each overrides the rule at its
            index when the system is built; excluded by ``controller``.
        structural_plan: optional scheduled topology damage
            (:class:`StructuralPlanSpec`), exercised by the
            fault-determinism oracle; excluded by ``controller``.
        clock: optional heterogeneous update clock
            (:class:`ClockSpec`), exercised by the async fixed-point
            and scalar-vs-batch oracles; excluded by ``controller``
            (gateway-driven systems have no per-source clock).
    """

    name: str
    gateways: Tuple[GatewaySpec, ...]
    connections: Tuple[ConnectionSpec, ...]
    discipline: str
    signal: SignalSpec
    style: str
    rules: Tuple[RuleSpec, ...]
    initial_rates: Tuple[float, ...]
    weights: Optional[Tuple[float, ...]] = None
    max_steps: int = 2000
    tol: float = 1e-10
    seed: int = 0
    fault_plan: Optional[FaultPlanSpec] = None
    controller: Optional[ControllerSpec] = None
    adversaries: Tuple[AdversarySpec, ...] = ()
    structural_plan: Optional[StructuralPlanSpec] = None
    clock: Optional[ClockSpec] = None

    def __post_init__(self):
        object.__setattr__(self, "gateways", tuple(self.gateways))
        object.__setattr__(self, "connections", tuple(self.connections))
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "adversaries", tuple(self.adversaries))
        object.__setattr__(self, "initial_rates",
                           tuple(float(r) for r in self.initial_rates))
        if self.weights is not None:
            object.__setattr__(self, "weights",
                               tuple(float(w) for w in self.weights))
        if not self.gateways:
            raise ScenarioError("a scenario needs at least one gateway")
        if not self.connections:
            raise ScenarioError("a scenario needs at least one connection")
        gw_names = set()
        for gw in self.gateways:
            if gw.name in gw_names:
                raise ScenarioError(f"duplicate gateway {gw.name!r}")
            gw_names.add(gw.name)
        conn_names = set()
        for conn in self.connections:
            if conn.name in conn_names:
                raise ScenarioError(f"duplicate connection {conn.name!r}")
            conn_names.add(conn.name)
            unknown = set(conn.path) - gw_names
            if unknown:
                raise ScenarioError(
                    f"connection {conn.name!r} routed through unknown "
                    f"gateways {sorted(unknown)!r}")
            if len(set(conn.path)) != len(conn.path):
                raise ScenarioError(
                    f"connection {conn.name!r}: path visits a gateway "
                    f"twice")
        n = len(self.connections)
        if self.discipline not in DISCIPLINE_KINDS:
            raise ScenarioError(
                f"unknown discipline {self.discipline!r} "
                f"(known: {DISCIPLINE_KINDS})")
        if self.style not in ("aggregate", "individual"):
            raise ScenarioError(
                f"style must be 'aggregate' or 'individual', got "
                f"{self.style!r}")
        if len(self.rules) != n:
            raise ScenarioError(
                f"need one rule per connection ({n}), got "
                f"{len(self.rules)}")
        if len(self.initial_rates) != n:
            raise ScenarioError(
                f"need one initial rate per connection ({n}), got "
                f"{len(self.initial_rates)}")
        for r in self.initial_rates:
            if not (math.isfinite(r) and r > 0):
                raise ScenarioError(
                    f"initial rates must be finite and strictly "
                    f"positive, got {r!r}")
        if self.weights is not None:
            if len(self.weights) != n:
                raise ScenarioError(
                    f"need one weight per connection ({n}), got "
                    f"{len(self.weights)}")
            for w in self.weights:
                if not (math.isfinite(w) and w > 0):
                    raise ScenarioError(
                        f"weights must be finite and positive, got {w!r}")
        if self.discipline == "weighted-fair-share":
            if self.weights is None:
                raise ScenarioError(
                    "discipline 'weighted-fair-share' requires weights")
            # WeightedFairShare's weight vector is indexed like the
            # *local* rate vector at each gateway, so one global weight
            # vector is only coherent when every gateway carries every
            # connection.
            for gw in self.gateways:
                carried = sum(gw.name in c.path for c in self.connections)
                if carried != n:
                    raise ScenarioError(
                        f"discipline 'weighted-fair-share' requires "
                        f"every connection to cross every gateway, but "
                        f"{gw.name!r} carries {carried} of {n}")
        if not isinstance(self.max_steps, int) \
                or isinstance(self.max_steps, bool) or self.max_steps < 1:
            raise ScenarioError(
                f"max_steps must be an int >= 1, got {self.max_steps!r}")
        if not (isinstance(self.tol, float) and math.isfinite(self.tol)
                and self.tol > 0):
            raise ScenarioError(
                f"tol must be a finite positive float, got {self.tol!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ScenarioError(
                f"seed must be an int >= 0, got {self.seed!r}")
        if self.fault_plan is not None \
                and not isinstance(self.fault_plan, FaultPlanSpec):
            raise ScenarioError(
                f"fault_plan must be a FaultPlanSpec or None, got "
                f"{self.fault_plan!r}")
        seen_adv = set()
        for adv in self.adversaries:
            if not isinstance(adv, AdversarySpec):
                raise ScenarioError(
                    f"adversaries entries must be AdversarySpec, got "
                    f"{adv!r}")
            if adv.index >= n:
                raise ScenarioError(
                    f"adversary index {adv.index} out of range "
                    f"0..{n - 1}")
            if adv.index in seen_adv:
                raise ScenarioError(
                    f"duplicate adversary at connection {adv.index}")
            seen_adv.add(adv.index)
        if self.structural_plan is not None:
            if not isinstance(self.structural_plan, StructuralPlanSpec):
                raise ScenarioError(
                    f"structural_plan must be a StructuralPlanSpec or "
                    f"None, got {self.structural_plan!r}")
            for inj in self.structural_plan.injectors:
                gw = inj.gateway()
                if gw not in gw_names:
                    raise ScenarioError(
                        f"structural injector {inj.kind!r} names "
                        f"unknown gateway {gw!r} "
                        f"(known: {sorted(gw_names)})")
        if self.clock is not None \
                and not isinstance(self.clock, ClockSpec):
            raise ScenarioError(
                f"clock must be a ClockSpec or None, got "
                f"{self.clock!r}")
        if self.controller is not None:
            if not isinstance(self.controller, ControllerSpec):
                raise ScenarioError(
                    f"controller must be a ControllerSpec or None, got "
                    f"{self.controller!r}")
            if self.fault_plan is not None:
                raise ScenarioError(
                    "a controller-driven scenario cannot carry a fault "
                    "plan: faults perturb the per-source signal path, "
                    "which the controller does not read")
            if self.structural_plan is not None:
                raise ScenarioError(
                    "a controller-driven scenario cannot carry a "
                    "structural plan: structural faults damage the "
                    "per-source signal/delay path, which "
                    "controller-driven systems replace with router-side "
                    "state")
            if self.adversaries:
                raise ScenarioError(
                    "a controller-driven scenario cannot carry "
                    "adversaries: every rule must be 'rcp-source'")
            if self.clock is not None:
                raise ScenarioError(
                    "a controller-driven scenario cannot carry a "
                    "clock: the control law updates at the gateways, "
                    "so there is no per-source clock to skew")
            bad = [r.kind for r in self.rules if r.kind != "rcp-source"]
            if bad:
                raise ScenarioError(
                    f"controller-driven scenarios require every rule to "
                    f"be 'rcp-source', got {sorted(set(bad))!r}")
        elif any(r.kind == "rcp-source" for r in self.rules):
            raise ScenarioError(
                "'rcp-source' rules need a controller: without one the "
                "dynamics would be the identity map")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def num_connections(self) -> int:
        return len(self.connections)

    @property
    def homogeneous(self) -> bool:
        """Do all connections run the same (structurally equal) rule?"""
        return all(rule == self.rules[0] for rule in self.rules)

    @property
    def all_tsi(self) -> bool:
        """Is every rule time-scale invariant (declares a target)?"""
        return all(rule.tsi for rule in self.rules)

    @property
    def chaotic(self) -> bool:
        """Does the scenario carry adversaries or structural damage?
        Theorem oracles gate on this — their hypotheses assume honest
        sources on an intact network."""
        return bool(self.adversaries) or self.structural_plan is not None

    def adversary_indices(self) -> Tuple[int, ...]:
        """The misbehaving connection indices, sorted."""
        return tuple(sorted(adv.index for adv in self.adversaries))

    def honest_indices(self) -> Tuple[int, ...]:
        """The connection indices Theorem 5 actually protects."""
        bad = {adv.index for adv in self.adversaries}
        return tuple(i for i in range(self.num_connections)
                     if i not in bad)

    def network(self) -> Network:
        return Network(
            gateways=[Gateway(g.name, g.mu, g.latency)
                      for g in self.gateways],
            connections=[Connection(c.name, c.path)
                         for c in self.connections])

    def build(self) -> FlowControlSystem:
        """Materialise the scenario into a live system.

        Structurally equal :class:`RuleSpec` s share one rule object so
        the batch engine's per-rule column grouping (and the
        ``homogeneous`` fast paths) behave exactly as for hand-built
        systems.
        """
        network = self.network()
        if self.discipline == "fifo":
            discipline = Fifo()
        elif self.discipline == "fair-share":
            discipline = FairShare()
        else:
            discipline = WeightedFairShare(self.weights)
        built: dict = {}
        rules = []
        for rule_spec in self.rules:
            if rule_spec not in built:
                built[rule_spec] = rule_spec.build()
            rules.append(built[rule_spec])
        for adv in self.adversaries:
            if adv not in built:
                built[adv] = adv.build()
            rules[adv.index] = built[adv]
        try:
            return FlowControlSystem(
                network, discipline, self.signal.build(), rules,
                style=FeedbackStyle(self.style), weights=self.weights,
                controller=(None if self.controller is None
                            else self.controller.build()))
        except ReproError as exc:
            raise ScenarioError(f"scenario {self.name!r} does not "
                                f"build: {exc}") from exc

    def build_fault_plan(self) -> FaultPlan:
        """The scenario's fault plan (the empty plan when unset)."""
        if self.fault_plan is None:
            return FaultPlan()
        return self.fault_plan.build()

    def build_structural_plan(self) -> StructuralFaultPlan:
        """The scenario's structural plan (the empty plan when unset)."""
        if self.structural_plan is None:
            return StructuralFaultPlan()
        return self.structural_plan.build()

    def initial(self) -> np.ndarray:
        return np.asarray(self.initial_rates, dtype=float)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "gateways": [g.to_dict() for g in self.gateways],
            "connections": [c.to_dict() for c in self.connections],
            "discipline": self.discipline,
            "signal": self.signal.to_dict(),
            "style": self.style,
            "rules": [r.to_dict() for r in self.rules],
            "weights": None if self.weights is None else list(self.weights),
            "initial_rates": list(self.initial_rates),
            "max_steps": self.max_steps,
            "tol": self.tol,
            "seed": self.seed,
            "fault_plan": (None if self.fault_plan is None
                           else self.fault_plan.to_dict()),
            "controller": (None if self.controller is None
                           else self.controller.to_dict()),
            "adversaries": [a.to_dict() for a in self.adversaries],
            "structural_plan": (None if self.structural_plan is None
                                else self.structural_plan.to_dict()),
            "clock": (None if self.clock is None
                      else self.clock.to_dict()),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Strict-JSON serialisation; exact round-trip via
        :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ScenarioError(
                f"scenario spec must be a dict, got "
                f"{type(data).__name__}")
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ScenarioError(
                f"unsupported scenario schema {schema!r} "
                f"(expected {SCENARIO_SCHEMA!r})")
        try:
            return cls(
                name=data["name"],
                gateways=tuple(GatewaySpec.from_dict(g)
                               for g in data["gateways"]),
                connections=tuple(ConnectionSpec.from_dict(c)
                                  for c in data["connections"]),
                discipline=data["discipline"],
                signal=SignalSpec.from_dict(data["signal"]),
                style=data["style"],
                rules=tuple(RuleSpec.from_dict(r) for r in data["rules"]),
                weights=(None if data.get("weights") is None
                         else tuple(data["weights"])),
                initial_rates=tuple(data["initial_rates"]),
                max_steps=data.get("max_steps", 2000),
                tol=data.get("tol", 1e-10),
                seed=data.get("seed", 0),
                fault_plan=(None if data.get("fault_plan") is None
                            else FaultPlanSpec.from_dict(
                                data["fault_plan"])),
                controller=(None if data.get("controller") is None
                            else ControllerSpec.from_dict(
                                data["controller"])),
                adversaries=tuple(AdversarySpec.from_dict(a)
                                  for a in data.get("adversaries", ())),
                structural_plan=(
                    None if data.get("structural_plan") is None
                    else StructuralPlanSpec.from_dict(
                        data["structural_plan"])),
                clock=(None if data.get("clock") is None
                       else ClockSpec.from_dict(data["clock"])),
            )
        except KeyError as exc:
            raise ScenarioError(
                f"scenario spec is missing field {exc.args[0]!r}") \
                from None
        except TypeError as exc:
            raise ScenarioError(
                f"scenario spec is malformed: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"scenario spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # structural edits (used by the shrinker)
    # ------------------------------------------------------------------
    def drop_connection(self, index: int) -> "ScenarioSpec":
        """A copy without connection ``index`` (and without gateways
        that no longer carry any connection).  Raises
        :class:`~repro.errors.ScenarioError` when it is the last one.
        """
        n = self.num_connections
        if not (0 <= index < n):
            raise ScenarioError(
                f"connection index {index!r} out of range 0..{n - 1}")
        if n == 1:
            raise ScenarioError("cannot drop the last connection")
        keep = [i for i in range(n) if i != index]
        connections = tuple(self.connections[i] for i in keep)
        used = {g for c in connections for g in c.path}
        gateways = tuple(g for g in self.gateways if g.name in used)
        # Adversaries on the dropped connection disappear; the rest
        # shift down with their connections.  Structural injectors on
        # pruned gateways disappear with the gateway.
        adversaries = tuple(
            replace(a, index=a.index - (1 if a.index > index else 0))
            for a in self.adversaries if a.index != index)
        structural_plan = self.structural_plan
        if structural_plan is not None:
            kept = tuple(inj for inj in structural_plan.injectors
                         if inj.gateway() in used)
            structural_plan = (None if not kept else
                               replace(structural_plan, injectors=kept))
        return replace(
            self,
            gateways=gateways,
            connections=connections,
            rules=tuple(self.rules[i] for i in keep),
            initial_rates=tuple(self.initial_rates[i] for i in keep),
            weights=(None if self.weights is None
                     else tuple(self.weights[i] for i in keep)),
            adversaries=adversaries,
            structural_plan=structural_plan,
        )

    def with_rounded_values(self, decimals: int) -> "ScenarioSpec":
        """A copy with service rates and initial rates rounded to
        ``decimals`` places (guarding against rounding to zero)."""

        def rounded(value: float, lo: float) -> float:
            return max(lo, round(float(value), decimals))

        lo = 10.0 ** (-decimals)
        return replace(
            self,
            gateways=tuple(
                GatewaySpec(g.name, rounded(g.mu, lo),
                            max(0.0, round(g.latency, decimals)))
                for g in self.gateways),
            initial_rates=tuple(rounded(r, lo)
                                for r in self.initial_rates),
        )
