"""The fuzzing harness: generate, cross-check, shrink, record.

:func:`fuzz` is the entry point behind ``python -m repro fuzz``: it
generates ``count`` deterministic scenarios for ``seed``, evaluates
the full oracle catalogue on each, optionally shrinks every failure to
a minimal reproducer, and (with ``json_dir``) writes one schema-valid
experiment artifact per scenario plus a ``*.repro.json`` spec for each
failure — the file a bug report should contain.

Budget validation is strict (:func:`~repro.scenarios.generator.
validate_budget`): bad seeds/counts raise
:class:`~repro.errors.SweepError` before any work happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..observability import collect
from ..observability.artifacts import experiment_artifact, write_artifact
from .generator import generate_spec, validate_budget
from .oracles import OracleResult, run_all_oracles
from .shrink import ShrinkResult, shrink
from .spec import ScenarioSpec

__all__ = ["ScenarioOutcome", "FuzzReport", "run_scenario", "fuzz"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's pass through the oracle catalogue."""

    spec: ScenarioSpec
    results: Tuple[OracleResult, ...]
    shrunk: Optional[ShrinkResult] = None

    @property
    def violations(self) -> Tuple[OracleResult, ...]:
        return tuple(res for res in self.results if res.violated)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def repro_spec(self) -> ScenarioSpec:
        """The spec to reproduce with: the shrunk one when available."""
        return self.shrunk.spec if self.shrunk is not None else self.spec


@dataclass
class FuzzReport:
    """The outcome of one :func:`fuzz` sweep."""

    seed: int
    count: int
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    artifacts: List[Path] = field(default_factory=list)

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def num_violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def passed(self) -> bool:
        return not self.failures

    def checked(self) -> int:
        """Applicable oracle evaluations across the sweep."""
        return sum(1 for o in self.outcomes for res in o.results
                   if res.applicable)

    def summary_lines(self) -> List[str]:
        lines = [
            f"fuzz seed={self.seed} count={self.count}: "
            f"{len(self.outcomes)} scenarios, {self.checked()} "
            f"applicable oracle checks, {self.num_violations} "
            f"violations"]
        for outcome in self.failures:
            names = ", ".join(res.name for res in outcome.violations)
            lines.append(f"  FAIL {outcome.spec.name}: {names}")
            for res in outcome.violations:
                lines.append(f"       {res.name}: {res.detail}")
            if outcome.shrunk is not None:
                lines.append(
                    f"       shrunk to {outcome.repro_spec.num_connections}"
                    f" connection(s) / "
                    f"{len(outcome.repro_spec.gateways)} gateway(s) in "
                    f"{outcome.shrunk.evaluations} evaluations")
        return lines


def run_scenario(spec: ScenarioSpec,
                 oracles: Optional[Sequence[str]] = None
                 ) -> ScenarioOutcome:
    """Evaluate one scenario against (a subset of) the catalogue."""
    return ScenarioOutcome(
        spec=spec, results=tuple(run_all_oracles(spec, oracles)))


class _FuzzScenarioResult:
    """Adapter presenting one scenario's oracle verdicts in the shape
    :func:`~repro.observability.artifacts.experiment_artifact` expects."""

    def __init__(self, spec: ScenarioSpec,
                 outcome: ScenarioOutcome) -> None:
        self.experiment_id = spec.name
        self.title = (f"Fuzz scenario {spec.name}: "
                      f"{spec.discipline}/{spec.style}, "
                      f"{spec.num_connections} connections")
        self.columns = ("oracle", "applicable", "passed", "detail")
        self.rows = [res.to_row() for res in outcome.results]
        self.checks = {res.name: (res.passed or not res.applicable)
                       for res in outcome.results}
        self.notes = [spec.to_json(indent=None)]


def fuzz(seed: int, count: int, shrink_failures: bool = False,
         json_dir: Optional[Union[str, Path]] = None,
         oracles: Optional[Sequence[str]] = None,
         max_shrink_iters: Optional[int] = None,
         progress: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run the fuzzing sweep.

    Raises :class:`~repro.errors.SweepError` for an invalid budget.
    Oracle violations do *not* raise — they are collected in the
    returned :class:`FuzzReport` (the CLI turns them into a nonzero
    exit code).
    """
    seed, count, max_shrink_iters = validate_budget(seed, count,
                                                    max_shrink_iters)
    say = progress if progress is not None else (lambda _msg: None)
    directory = None
    if json_dir is not None:
        directory = Path(json_dir)
        directory.mkdir(parents=True, exist_ok=True)

    report = FuzzReport(seed=seed, count=count)
    for index in range(count):
        spec = generate_spec(seed, index)
        with collect() as session:
            outcome = run_scenario(spec, oracles)
        if not outcome.passed and shrink_failures:
            say(f"{spec.name}: shrinking "
                f"{len(outcome.violations)} violation(s)...")
            result = shrink(
                spec,
                oracles=[res.name for res in outcome.violations],
                max_iters=max_shrink_iters)
            outcome = ScenarioOutcome(spec=spec, results=outcome.results,
                                      shrunk=result)
        report.outcomes.append(outcome)
        if directory is not None:
            artifact = experiment_artifact(
                _FuzzScenarioResult(spec, outcome), session=session,
                seed=seed,
                config={"seed": seed, "index": index, "count": count})
            report.artifacts.append(write_artifact(
                artifact, directory / f"{spec.name}.json"))
            if not outcome.passed:
                repro_path = directory / f"{spec.name}.repro.json"
                repro_path.write_text(
                    outcome.repro_spec.to_json() + "\n")
                report.artifacts.append(repro_path)
        status = ("ok" if outcome.passed else
                  "FAIL " + ",".join(res.name
                                     for res in outcome.violations))
        say(f"{spec.name}: {status}")
    return report
