"""Closed-loop feedback flow control over the packet simulator.

The analytic model assumes instant queue equilibration and synchronous,
delay-free signalling.  This driver removes those idealisations: the
rate-adjustment rules are fed *measured* congestion signals computed
from time-averaged queue lengths over each control interval, exactly as
a DECbit-style deployment would average over round trips.

Each control step:

1. run the packet simulation for ``control_interval`` time units;
2. per gateway, turn the measured per-connection mean queues into
   congestion measures (aggregate sum, or the individual
   ``sum_k min(Q_k, Q_i)``) and signals ``b^a_i = B(C^a_i)``;
3. per connection, take the bottleneck maximum along the path and the
   measured mean round-trip delay;
4. apply each connection's rule ``r <- max(floor, r + f(r, b, d))``.

A small positive rate floor keeps silent connections probing — in a
packet system a source at exactly zero rate would never learn that the
congestion cleared (the paper's model sidesteps this by assuming signal
delivery regardless).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from ..core.ratecontrol import RateAdjustment
from ..core.signals import (FeedbackStyle, SignalFunction,
                            aggregate_congestion, individual_congestion)
from ..core.topology import Network
from ..errors import SimulationError
from ..observability import RunRecord, emit_run_record, is_collecting
from .network_sim import NetworkSimulation

__all__ = ["ClosedLoopResult", "run_closed_loop"]


@dataclass
class ClosedLoopResult:
    """Trajectory and final measurements of a closed-loop run."""

    times: np.ndarray                #: control-step boundary times
    rate_history: np.ndarray         #: (steps + 1, N) commanded rates
    signal_history: np.ndarray       #: (steps, N) observed signals
    final_rates: np.ndarray          #: commanded rates after the last step
    final_throughput: np.ndarray     #: measured deliveries/time, last step
    final_delays: np.ndarray         #: measured mean delays, last step
    fault_events: list = None        #: injected FaultEvents, or None

    @property
    def steps(self) -> int:
        return self.signal_history.shape[0]

    def tail_mean_rates(self, k: int) -> np.ndarray:
        """Average commanded rates over the last ``k`` control steps."""
        if k < 1:
            raise SimulationError(f"tail length must be >= 1, got {k!r}")
        return self.rate_history[-k:].mean(axis=0)


def run_closed_loop(network: Network,
                    rules: Union[RateAdjustment, Sequence[RateAdjustment]],
                    signal_fn: SignalFunction,
                    style: FeedbackStyle = FeedbackStyle.INDIVIDUAL,
                    discipline_kind: str = "fair-share",
                    initial_rates: Sequence[float] = None,
                    control_interval: float = 200.0,
                    n_steps: int = 60,
                    seed: int = 0,
                    rate_floor: float = 1e-3,
                    rate_mode: str = "oracle",
                    signal_source: str = "queue",
                    buffer_sizes=None,
                    drop_policy: str = "tail",
                    faults=None,
                    engine: str = "auto") -> ClosedLoopResult:
    """Drive feedback flow control with measured signals; see module doc.

    ``signal_source`` selects the congestion observable:

    * ``"queue"`` (default) — the paper's explicit signalling: windowed
      mean queues through ``signal_fn``;
    * ``"drops"`` — implicit Jacobson-style feedback: the signal is the
      measured drop fraction at drop-tail gateways (``buffer_sizes``
      must then bound the buffers), bypassing ``signal_fn``.  Aggregate
      style uses the gateway-wide drop fraction, individual style the
      per-connection one.

    ``faults`` injects a :class:`~repro.faults.FaultPlan` into the
    measured feedback: the per-connection signal vector of each control
    step is perturbed before the rules see it (step index = control
    step, 1-based), and the injected events come back on
    ``ClosedLoopResult.fault_events``.  ``None`` and the empty plan
    leave the run bit-identical to the fault-free path.

    ``engine`` selects the simulation engine (see
    :class:`~repro.simulation.network_sim.NetworkSimulation`):
    ``"auto"`` uses the fast kernel whenever the configuration allows,
    with bit-identical trajectories to ``"legacy"``.

    When an :func:`repro.observability.collect` session is active, a
    :class:`~repro.observability.RunRecord` is emitted whose
    ``phase_seconds`` splits the wall time into ``"simulate"`` (the
    packet engine), ``"signals"`` (congestion-measure extraction), and
    ``"rules"`` (rate updates) — the breakdown the kernel benchmarks
    watch.
    """
    if signal_source not in ("queue", "drops"):
        raise SimulationError(
            f"signal_source must be 'queue' or 'drops', got "
            f"{signal_source!r}")
    if signal_source == "drops" and buffer_sizes is None:
        raise SimulationError(
            "drop-based feedback needs finite buffer_sizes")
    n = network.num_connections
    if isinstance(rules, RateAdjustment):
        rule_list: List[RateAdjustment] = [rules] * n
    else:
        rule_list = list(rules)
        if len(rule_list) != n:
            raise SimulationError(
                f"need one rule per connection, got {len(rule_list)} "
                f"for {n}")
    if initial_rates is None:
        initial_rates = np.full(
            n, 0.1 * min(network.mu(g) for g in network.gateway_names))
    rates = np.maximum(np.asarray(initial_rates, dtype=float), rate_floor)

    sim = NetworkSimulation(network, discipline_kind=discipline_kind,
                            seed=seed, initial_rates=rates,
                            rate_mode=rate_mode,
                            buffer_sizes=buffer_sizes,
                            drop_policy=drop_policy,
                            engine=engine)
    style = FeedbackStyle(style)
    fault_state = (faults.start(network=network, member=0)
                   if faults is not None else None)
    rec = (RunRecord.begin("run", 1, n, n_steps, 0.0, 0)
           if is_collecting() else None)

    times = [0.0]
    rate_history = [rates.copy()]
    signal_history = []
    throughput = np.zeros(n)
    delays = np.full(n, np.nan)

    for step_index in range(1, n_steps + 1):
        t0 = time.perf_counter() if rec is not None else 0.0
        sim.reset_statistics()
        sim.run_for(control_interval)
        queues = sim.mean_queue_lengths()
        if rec is not None:
            t1 = time.perf_counter()
            rec.add_phase("simulate", t1 - t0)

        b = np.zeros(n, dtype=float)
        if signal_source == "drops":
            for gname, fractions in sim.drop_fractions().items():
                monitor = sim.monitors[gname]
                if style is FeedbackStyle.AGGREGATE:
                    values = np.full(fractions.shape[0],
                                     monitor.aggregate_drop_fraction())
                else:
                    values = fractions
                local = sim.network.connections_at(gname)
                for pos, conn in enumerate(local):
                    b[conn] = max(b[conn], float(values[pos]))
        else:
            for gname, q in queues.items():
                if style is FeedbackStyle.AGGREGATE:
                    congestion = np.full(q.shape[0],
                                         aggregate_congestion(q))
                else:
                    congestion = individual_congestion(q)
                local = sim.network.connections_at(gname)
                for pos, conn in enumerate(local):
                    b[conn] = max(b[conn],
                                  signal_fn(float(congestion[pos])))

        if fault_state is not None:
            b = fault_state.apply(step_index, b)

        delays_measured = sim.mean_delays()
        throughput = sim.throughput()
        fallback = np.array([network.path_latency(i) for i in range(n)])
        d = np.where(np.isnan(delays_measured), fallback + 1.0 /
                     np.array([min(network.mu(g) for g in network.gamma(i))
                               for i in range(n)]),
                     delays_measured)
        delays = delays_measured
        if rec is not None:
            t2 = time.perf_counter()
            rec.add_phase("signals", t2 - t1)

        new_rates = np.array([
            max(rate_floor,
                rates[i] + rule_list[i].delta(float(rates[i]), float(b[i]),
                                              float(d[i])))
            for i in range(n)
        ])
        rates = new_rates
        if rate_mode == "measured":
            sim.refresh_measured_rates()
        sim.set_rates(rates)
        times.append(sim.now)
        rate_history.append(rates.copy())
        signal_history.append(b.copy())
        if rec is not None:
            rec.add_phase("rules", time.perf_counter() - t2)

    if rec is not None:
        rec.finish(n_steps, {"completed": 1})
        emit_run_record(rec)

    return ClosedLoopResult(
        times=np.asarray(times),
        rate_history=np.asarray(rate_history),
        signal_history=np.asarray(signal_history),
        final_rates=rates.copy(),
        final_throughput=np.asarray(throughput, dtype=float),
        final_delays=np.asarray(delays, dtype=float),
        fault_events=(fault_state.events if fault_state is not None
                      else None),
    )
