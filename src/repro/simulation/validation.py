"""Cross-validation of the analytic queue laws against the simulator.

The analytic layer asserts closed forms for ``Q_i(r)`` under FIFO, Fair
Share, and fixed preemptive priority.  These helpers run the packet
simulator at fixed rates and compare the time-averaged per-connection
occupancy to the formulas — the F12 experiment and the statistical
integration tests build on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.fairshare import FairShare
from ..core.fifo import Fifo
from ..core.service import PreemptivePriority, ServiceDiscipline
from ..core.topology import single_gateway
from ..errors import InfeasibleLoadError, SimulationError
from .network_sim import NetworkSimulation

__all__ = ["QueueValidation", "analytic_counterpart",
           "validate_single_gateway", "mm1k_blocking_probability",
           "mm1k_mean_queue", "FiniteBufferValidation",
           "validate_finite_buffer"]


@dataclass
class QueueValidation:
    """Measured vs expected mean queues at one gateway."""

    discipline_kind: str
    rates: np.ndarray
    mu: float
    horizon: float
    measured: np.ndarray
    expected: np.ndarray

    @property
    def absolute_errors(self) -> np.ndarray:
        return np.abs(self.measured - self.expected)

    @property
    def relative_errors(self) -> np.ndarray:
        """Per-connection relative error, guarded against tiny queues."""
        scale = np.maximum(np.abs(self.expected), 0.05)
        return self.absolute_errors / scale

    @property
    def worst_relative_error(self) -> float:
        return float(np.max(self.relative_errors))


def mm1k_blocking_probability(rho: float, k: int) -> float:
    """M/M/1/K blocking (drop) probability.

    ``p_K = rho^K (1 - rho) / (1 - rho^{K+1})`` for ``rho != 1`` and
    ``1 / (K + 1)`` at ``rho = 1``.  ``K`` counts the whole system
    (queue + server).
    """
    if k < 1:
        raise SimulationError(f"buffer size must be >= 1, got {k!r}")
    if rho < 0:
        raise SimulationError(f"utilisation must be >= 0, got {rho!r}")
    if abs(rho - 1.0) < 1e-12:
        return 1.0 / (k + 1)
    return (rho ** k) * (1.0 - rho) / (1.0 - rho ** (k + 1))


def mm1k_mean_queue(rho: float, k: int) -> float:
    """Mean number in system of an M/M/1/K queue.

    ``E[N] = rho/(1-rho) - (K+1) rho^{K+1} / (1 - rho^{K+1})`` for
    ``rho != 1`` and ``K/2`` at ``rho = 1``.
    """
    if k < 1:
        raise SimulationError(f"buffer size must be >= 1, got {k!r}")
    if rho < 0:
        raise SimulationError(f"utilisation must be >= 0, got {rho!r}")
    if abs(rho - 1.0) < 1e-12:
        return k / 2.0
    return (rho / (1.0 - rho)
            - (k + 1) * rho ** (k + 1) / (1.0 - rho ** (k + 1)))


@dataclass
class FiniteBufferValidation:
    """Measured vs M/M/1/K drop fraction and occupancy."""

    rho: float
    buffer_size: int
    measured_drop_fraction: float
    expected_drop_fraction: float
    measured_mean_queue: float
    expected_mean_queue: float

    @property
    def drop_error(self) -> float:
        return abs(self.measured_drop_fraction
                   - self.expected_drop_fraction)

    @property
    def queue_relative_error(self) -> float:
        scale = max(self.expected_mean_queue, 0.05)
        return abs(self.measured_mean_queue
                   - self.expected_mean_queue) / scale


def validate_finite_buffer(rate: float, mu: float, buffer_size: int,
                           horizon: float = 20000.0,
                           warmup: float = 2000.0,
                           seed: int = 0,
                           engine: str = "auto") -> FiniteBufferValidation:
    """Single connection at a drop-tail gateway vs the M/M/1/K formulas.

    Unlike the infinite-buffer validation, overload is allowed: a full
    buffer simply drops, and the analytic blocking formula covers
    ``rho >= 1``.
    """
    network = single_gateway(1, mu=mu)
    sim = NetworkSimulation(network, discipline_kind="fifo", seed=seed,
                            initial_rates=np.array([rate]),
                            buffer_sizes=buffer_size, engine=engine)
    sim.run_for(warmup)
    sim.reset_statistics()
    sim.run_for(horizon)
    rho = rate / mu
    return FiniteBufferValidation(
        rho=rho,
        buffer_size=buffer_size,
        measured_drop_fraction=float(
            sim.drop_fractions()["g0"][0]),
        expected_drop_fraction=mm1k_blocking_probability(rho,
                                                         buffer_size),
        measured_mean_queue=float(sim.mean_queue_lengths()["g0"][0]),
        expected_mean_queue=mm1k_mean_queue(rho, buffer_size),
    )


def analytic_counterpart(discipline_kind: str,
                         n_connections: int) -> ServiceDiscipline:
    """The analytic queue law matching a simulator discipline name."""
    if discipline_kind == "fifo":
        return Fifo()
    if discipline_kind == "fair-share":
        return FairShare()
    if discipline_kind == "fixed-priority":
        return PreemptivePriority(list(range(n_connections)))
    raise SimulationError(
        f"no analytic counterpart for discipline {discipline_kind!r} "
        f"(fair-queueing is approximated by fair-share, compare manually)")


def validate_single_gateway(rates: Sequence[float], mu: float,
                            discipline_kind: str = "fifo",
                            horizon: float = 20000.0,
                            warmup: float = 2000.0,
                            seed: int = 0,
                            engine: str = "auto") -> QueueValidation:
    """Simulate one gateway at fixed rates; compare mean queues.

    Raises :class:`~repro.errors.InfeasibleLoadError` when the offered
    load is at or above capacity — time averages would not converge.
    """
    r = np.asarray(rates, dtype=float)
    if float(np.sum(r)) >= mu:
        raise InfeasibleLoadError(
            f"offered load {float(np.sum(r))} >= mu {mu}; the validation "
            f"needs a stable queue")
    network = single_gateway(r.shape[0], mu=mu)
    sim = NetworkSimulation(network, discipline_kind=discipline_kind,
                            seed=seed, initial_rates=r, engine=engine)
    sim.run_for(warmup)
    sim.reset_statistics()
    sim.run_for(horizon)
    measured = sim.mean_queue_lengths()["g0"]
    analytic = analytic_counterpart(discipline_kind, r.shape[0])
    expected = analytic.queue_lengths(r, mu)
    if not np.all(np.isfinite(expected)):
        raise InfeasibleLoadError("analytic law is infinite at these rates")
    return QueueValidation(
        discipline_kind=discipline_kind,
        rates=r,
        mu=mu,
        horizon=horizon,
        measured=np.asarray(measured, dtype=float),
        expected=np.asarray(expected, dtype=float),
    )
