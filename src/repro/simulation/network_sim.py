"""Packet-level simulation of a whole network (the model's substrate).

:class:`NetworkSimulation` instantiates, for a
:class:`~repro.core.topology.Network`, the physical system the analytic
model abstracts: Poisson sources, exponential-server gateways with a
chosen queueing discipline, line latencies applied after each gateway's
service, and per-gateway / end-to-end monitors.

Sending rates can be changed while the simulation runs (Poisson
memorylessness makes rescheduling the pending arrival exact), which is
what the closed-loop feedback driver builds on.

Fair Share gateways need the connection rates to define their substream
classes.  Two modes:

* ``rate_mode="oracle"`` — gateways read the true current sending rates
  (the analytic model's assumption);
* ``rate_mode="measured"`` — gateways use arrival-rate estimates
  gathered by their own monitors over the previous measurement window
  (what a real router could do).

Two interchangeable engines run the system (``engine=`` selects):

* ``"legacy"`` — the original object engine: callback
  :class:`~repro.simulation.events.Scheduler`, :class:`Packet`
  dataclasses, per-draw numpy crossings;
* ``"fast"`` — the :class:`~repro.simulation.kernel.FastEngine` on the
  struct-of-arrays calendar, pooled packet ids and buffered random
  streams.  Same seed ⇒ bit-identical trajectories (same draws, same
  event order, same float arithmetic).
* ``"auto"`` (default) — the fast engine whenever it supports the
  configuration (FIFO / Fair Share / fixed-priority with drop-tail
  buffers); Fair Queueing and drop-from-longest fall back to legacy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.topology import Network
from ..errors import SimulationError
from .events import EventHandle, Scheduler
from .kernel import FastEngine, KernelServerView, supports_fast_engine
from .monitors import EndToEndMonitor, GatewayMonitor
from .packet import Packet
from .queues import make_discipline
from .rng import RandomStreams
from .server import GatewayServer

__all__ = ["NetworkSimulation"]


class NetworkSimulation:
    """An executable network: sources, gateways, routing, monitors."""

    def __init__(self, network: Network, discipline_kind: str = "fifo",
                 seed: int = 0,
                 initial_rates: Optional[Sequence[float]] = None,
                 rate_mode: str = "oracle",
                 buffer_sizes=None,
                 drop_policy: str = "tail",
                 engine: str = "auto"):
        if rate_mode not in ("oracle", "measured"):
            raise SimulationError(
                f"rate_mode must be 'oracle' or 'measured', got {rate_mode!r}")
        if drop_policy not in ("tail", "longest"):
            raise SimulationError(
                f"drop_policy must be 'tail' or 'longest', "
                f"got {drop_policy!r}")
        if engine not in ("auto", "fast", "compiled", "legacy"):
            raise SimulationError(
                f"engine must be 'auto', 'fast', 'compiled' or "
                f"'legacy', got {engine!r}")
        if buffer_sizes is None or isinstance(buffer_sizes, dict):
            buffer_map = dict(buffer_sizes or {})
        else:
            buffer_map = {g: int(buffer_sizes)
                          for g in network.gateway_names}
        self.network = network
        self.discipline_kind = discipline_kind
        self.rate_mode = rate_mode
        self.streams = RandomStreams(seed)
        n = network.num_connections

        if initial_rates is None:
            self._rates = np.zeros(n, dtype=float)
        else:
            self._rates = np.asarray(initial_rates, dtype=float).copy()
            if self._rates.shape != (n,):
                raise SimulationError(
                    f"initial_rates must have length {n}")
            if np.any(self._rates < 0) or not np.all(
                    np.isfinite(self._rates)):
                raise SimulationError("initial rates must be finite and >= 0")

        fast_ok = supports_fast_engine(discipline_kind, buffer_map,
                                       drop_policy)
        if engine in ("fast", "compiled") and not fast_ok:
            raise SimulationError(
                f"the {engine} engine does not support "
                f"discipline {discipline_kind!r} with "
                f"drop_policy {drop_policy!r} here; use engine='legacy'")
        if engine == "compiled":
            self.engine = "compiled"
        else:
            self.engine = "fast" if (engine != "legacy" and fast_ok) \
                else "legacy"

        # Rates the Fair Share classifier sees, per gateway (local order).
        self._fs_rates: Dict[str, np.ndarray] = {}
        for gname in network.gateway_names:
            local = network.connections_at(gname)
            self._fs_rates[gname] = self._rates[list(local)].copy()

        if self.engine in ("fast", "compiled"):
            if self.engine == "compiled":
                # Same construction, compiled FIFO hot loop (with a
                # graceful per-call fallback to the Python loop when
                # no C tier could be built).
                from .kernel_compiled import CompiledFifoEngine
                engine_cls = CompiledFifoEngine
            else:
                engine_cls = FastEngine
            self._engine: Optional[FastEngine] = engine_cls(
                network, discipline_kind, self.streams, self._rates,
                buffer_map, drop_policy)
            self.scheduler = None
            self.e2e = self._engine.e2e_stats
            self.monitors = {g: self._engine.gw_stats[k]
                             for k, g in enumerate(network.gateway_names)}
            self.servers = {g: KernelServerView(self._engine, k)
                            for k, g in enumerate(network.gateway_names)}
            return

        self._engine = None
        self.scheduler = Scheduler()
        self.e2e = EndToEndMonitor(n)
        self.monitors: Dict[str, GatewayMonitor] = {}
        self.servers: Dict[str, GatewayServer] = {}

        for gname in network.gateway_names:
            local = network.connections_at(gname)
            monitor = GatewayMonitor(local)
            self.monitors[gname] = monitor
            if discipline_kind == "fixed-priority":
                # Priority by local position: the analytic counterpart is
                # PreemptivePriority(range(N)) at a single gateway.
                discipline = make_discipline(
                    discipline_kind,
                    class_of_conn={conn: pos
                                   for pos, conn in enumerate(local)})
            else:
                discipline = make_discipline(discipline_kind)
            discipline.bind(
                local,
                rate_provider=self._make_rate_provider(gname),
                rng=self.streams.stream(f"thinning:{gname}"),
            )
            self.servers[gname] = GatewayServer(
                name=gname,
                mu=network.mu(gname),
                discipline=discipline,
                scheduler=self.scheduler,
                service_rng=self.streams.stream(f"service:{gname}"),
                monitor=monitor,
                forward=self._make_forwarder(gname),
                buffer_size=buffer_map.get(gname),
                drop_policy=drop_policy,
            )

        self._pending: list = [None] * n
        self._seq = np.zeros(n, dtype=int)
        for i in range(n):
            self._schedule_next_arrival(i)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _make_rate_provider(self, gname: str):
        def provider() -> np.ndarray:
            return self._fs_rates[gname]
        return provider

    def _make_forwarder(self, gname: str):
        latency = self.network.gateway(gname).latency

        def forward(pkt: Packet) -> None:
            path = self.network.gamma(pkt.conn)
            next_hop = pkt.hop + 1
            if next_hop < len(path):
                def deliver(p=pkt, h=next_hop):
                    p.hop = h
                    self.servers[path[h]].arrive(p)
                self.scheduler.schedule_after(latency, deliver)
            else:
                def sink(p=pkt):
                    self.e2e.on_delivery(p.conn, p.created,
                                         self.scheduler.now)
                self.scheduler.schedule_after(latency, sink)
        return forward

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self, conn: int) -> None:
        rate = float(self._rates[conn])
        if rate <= 0.0:
            self._pending[conn] = None
            return
        gap = float(self.streams.stream(f"arrival:c{conn}")
                    .exponential(1.0 / rate))

        def emit():
            self._emit(conn)
        self._pending[conn] = self.scheduler.schedule_after(gap, emit)

    def _emit(self, conn: int) -> None:
        pkt = Packet(conn=conn, seq=int(self._seq[conn]),
                     created=self.scheduler.now, hop=0)
        self._seq[conn] += 1
        first = self.network.gamma(conn)[0]
        self.servers[first].arrive(pkt)
        self._schedule_next_arrival(conn)

    # ------------------------------------------------------------------
    # control surface
    # ------------------------------------------------------------------
    @property
    def rates(self) -> np.ndarray:
        """Current sending rates (copy)."""
        return self._rates.copy()

    def set_rates(self, rates: Sequence[float]) -> None:
        """Change all sending rates, effective immediately.

        Pending next-arrival events are resampled at the new rates —
        exact for Poisson sources by memorylessness.
        """
        vec = np.asarray(rates, dtype=float)
        if vec.shape != self._rates.shape:
            raise SimulationError(
                f"rate vector must have length {self._rates.shape[0]}")
        if np.any(vec < 0) or not np.all(np.isfinite(vec)):
            raise SimulationError("rates must be finite and >= 0")
        self._rates[:] = vec
        if self._engine is not None:
            self._engine.resample_arrivals(self._rates)
        else:
            for conn in range(vec.shape[0]):
                pending: Optional[EventHandle] = self._pending[conn]
                if pending is not None:
                    pending.cancel()
                self._schedule_next_arrival(conn)
        if self.rate_mode == "oracle":
            self._push_oracle_rates()

    def _push_oracle_rates(self) -> None:
        for gname in self.network.gateway_names:
            local = list(self.network.connections_at(gname))
            self._fs_rates[gname] = self._rates[local].copy()
        if self._engine is not None:
            self._engine.rebuild_fs_tables(
                [self._fs_rates[g] for g in self.network.gateway_names])

    def refresh_measured_rates(self) -> None:
        """In ``measured`` mode: update the Fair Share classifier rates
        from each gateway monitor's arrival-rate estimate."""
        now = self.now
        for gname, monitor in self.monitors.items():
            estimate = monitor.arrival_rates(now)
            self._fs_rates[gname] = estimate
        if self._engine is not None:
            self._engine.rebuild_fs_tables(
                [self._fs_rates[g] for g in self.network.gateway_names])

    # ------------------------------------------------------------------
    # running & measuring
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._engine is not None:
            return self._engine.now
        return self.scheduler.now

    @property
    def events_processed(self) -> int:
        """Events executed since construction (either engine)."""
        if self._engine is not None:
            return self._engine.events_processed
        return self.scheduler.events_processed

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` time units."""
        if duration < 0:
            raise SimulationError("duration must be nonnegative")
        if self._engine is not None:
            self._engine.run_until(self._engine.now + duration)
        else:
            self.scheduler.run_until(self.scheduler.now + duration)

    def reset_statistics(self) -> None:
        """Discard all accumulated statistics (e.g. after warm-up)."""
        now = self.now
        for monitor in self.monitors.values():
            monitor.reset_statistics(now)
        self.e2e.reset_statistics(now)

    def mean_queue_lengths(self) -> Dict[str, np.ndarray]:
        """Time-average per-connection queues per gateway since reset."""
        now = self.now
        return {g: m.mean_queue_lengths(now)
                for g, m in self.monitors.items()}

    def measured_arrival_rates(self) -> Dict[str, np.ndarray]:
        now = self.now
        return {g: m.arrival_rates(now) for g, m in self.monitors.items()}

    def drop_fractions(self) -> Dict[str, np.ndarray]:
        """Per-connection drop fractions per gateway since the reset
        (all zeros for infinite-buffer gateways)."""
        return {g: m.drop_fractions() for g, m in self.monitors.items()}

    def throughput(self) -> np.ndarray:
        """Delivered end-to-end packets per unit time since reset."""
        return self.e2e.throughput(self.now)

    def mean_delays(self) -> np.ndarray:
        """Mean end-to-end delays since reset (``nan`` when silent)."""
        return self.e2e.mean_delays()
