"""Packets and per-connection bookkeeping for the simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass
class Packet:
    """One packet travelling through the simulated network.

    Attributes:
        conn: index of the owning connection.
        seq: per-connection sequence number.
        created: simulation time the source emitted the packet.
        hop: index into the connection's path of the gateway currently
            holding (or about to receive) the packet.
        service_time: total service requirement at the current gateway,
            sampled on arrival there (exponential with the gateway's
            rate).
        remaining: service still owed at the current gateway; equals
            ``service_time`` until the packet is preempted, after which
            it tracks the unserved remainder (preemptive *resume*).
        priority_class: class assigned by a priority-style discipline at
            the current gateway (0 is the highest priority).
    """

    conn: int
    seq: int
    created: float
    hop: int = 0
    service_time: float = 0.0
    remaining: float = 0.0
    priority_class: int = 0

    def __repr__(self):
        return (f"Packet(conn={self.conn}, seq={self.seq}, "
                f"created={self.created:.4f}, hop={self.hop})")
