"""Packets and per-connection bookkeeping for the simulator.

:class:`Packet` is the legacy object engine's per-packet dataclass.
:class:`PacketPool` is the fast kernel's struct-of-arrays replacement:
packet fields live in parallel columns indexed by an integer packet id,
and delivered/dropped ids return to a free-list, so a steady-state run
recycles a bounded working set of slots instead of allocating one
object per packet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet", "PacketPool"]


@dataclass
class Packet:
    """One packet travelling through the simulated network.

    Attributes:
        conn: index of the owning connection.
        seq: per-connection sequence number.
        created: simulation time the source emitted the packet.
        hop: index into the connection's path of the gateway currently
            holding (or about to receive) the packet.
        service_time: total service requirement at the current gateway,
            sampled on arrival there (exponential with the gateway's
            rate).
        remaining: service still owed at the current gateway; equals
            ``service_time`` until the packet is preempted, after which
            it tracks the unserved remainder (preemptive *resume*).
        priority_class: class assigned by a priority-style discipline at
            the current gateway (0 is the highest priority).
    """

    conn: int
    seq: int
    created: float
    hop: int = 0
    service_time: float = 0.0
    remaining: float = 0.0
    priority_class: int = 0

    def __repr__(self):
        return (f"Packet(conn={self.conn}, seq={self.seq}, "
                f"created={self.created:.4f}, hop={self.hop})")


class PacketPool:
    """Struct-of-arrays packet storage with a free-list.

    Columns mirror :class:`Packet`'s fields (``service_time`` is not
    stored — the kernel only ever needs the preemptive-resume
    ``remaining``).  :meth:`alloc` hands out a recycled slot when one
    is free and grows the columns otherwise; :meth:`free` returns a
    slot once the packet is delivered or dropped.
    """

    __slots__ = ("conn", "seq", "created", "hop", "remaining", "klass",
                 "_free")

    def __init__(self):
        self.conn: list = []
        self.seq: list = []
        self.created: list = []
        self.hop: list = []
        self.remaining: list = []
        self.klass: list = []
        self._free: list = []

    def alloc(self, conn: int, seq: int, created: float) -> int:
        """A packet id for a fresh packet (hop 0, no service sampled)."""
        free = self._free
        if free:
            pid = free.pop()
            self.conn[pid] = conn
            self.seq[pid] = seq
            self.created[pid] = created
            self.hop[pid] = 0
            self.remaining[pid] = 0.0
            self.klass[pid] = 0
        else:
            pid = len(self.conn)
            self.conn.append(conn)
            self.seq.append(seq)
            self.created.append(created)
            self.hop.append(0)
            self.remaining.append(0.0)
            self.klass.append(0)
        return pid

    def free(self, pid: int) -> None:
        """Recycle ``pid``; the caller must hold no further references."""
        self._free.append(pid)

    @property
    def capacity(self) -> int:
        """Total slots ever allocated (in-flight + recyclable)."""
        return len(self.conn)

    @property
    def in_flight(self) -> int:
        """Slots currently holding an un-freed packet."""
        return len(self.conn) - len(self._free)
