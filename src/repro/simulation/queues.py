"""Queueing disciplines for the simulated gateways.

Four disciplines mirror the analytic layer:

* :class:`FifoQueue` — arrival order, non-preemptive.
* :class:`FixedPriorityQueue` — preemptive-resume head-of-line priority
  with a static connection-to-class map (the analytic
  :class:`~repro.core.service.PreemptivePriority`).
* :class:`FairShareQueue` — the paper's Fair Share: each arriving packet
  is assigned a priority class by *thinning* its connection's stream
  into the rate-ordered substreams of Table 1; the server then runs
  preemptive-resume priority over the classes.  Class boundaries come
  from a rate provider (oracle sending rates, or a measurement-based
  estimator), so the discipline works inside the closed feedback loop.
* :class:`FairQueueingQueue` — Demers–Keshav–Shenker Fair Queueing via
  virtual finish times (non-preemptive weighted fair queueing with equal
  weights), the "realistic version of Fair Share" the paper points to.

A discipline holds packets; the server (see
:mod:`repro.simulation.server`) owns the in-service packet and the
preemption mechanics.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .packet import Packet

__all__ = [
    "SimDiscipline",
    "FifoQueue",
    "FixedPriorityQueue",
    "FairShareQueue",
    "FairQueueingQueue",
    "make_discipline",
]

#: Signature of the rate oracle handed to rate-aware disciplines: given
#: nothing, return the current sending-rate estimates of the *local*
#: connections (indexed like the gateway's ``Gamma(a)`` order).
RateProvider = Callable[[], np.ndarray]


class SimDiscipline(abc.ABC):
    """A gateway queue: holds waiting packets, picks the next to serve."""

    #: Whether an arrival may preempt the packet in service.
    preemptive = False

    # Filled in by :meth:`bind`; present here so unbound use fails with
    # a library error instead of an AttributeError.
    _rate_provider: Optional[RateProvider] = None
    _rng: Optional[np.random.Generator] = None

    def bind(self, local_conns: Sequence[int],
             rate_provider: Optional[RateProvider],
             rng: Optional[np.random.Generator]) -> None:
        """Attach gateway context before the simulation starts.

        ``local_conns`` are the global connection indices at this
        gateway; rate-aware disciplines also receive a rate provider and
        a private random stream.
        """
        self._local_index: Dict[int, int] = {
            conn: k for k, conn in enumerate(local_conns)}
        self._rate_provider = rate_provider
        self._rng = rng

    @abc.abstractmethod
    def push(self, pkt: Packet, now: float) -> None:
        """Admit an arriving packet."""

    @abc.abstractmethod
    def pop(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet to serve, or ``None``."""

    @abc.abstractmethod
    def requeue_front(self, pkt: Packet) -> None:
        """Return a preempted packet to the head of its queue."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of waiting packets (excluding the one in service)."""

    def would_preempt(self, serving: Packet, arriving: Packet) -> bool:
        """Should ``arriving`` interrupt ``serving``?  Default: never."""
        return False

    def remove_recent(self, conn: int) -> Optional[Packet]:
        """Remove and return the most recently queued packet of
        ``conn``, or ``None`` if it has no waiting packets.

        Needed by the drop-from-longest-queue buffer policy (Nagle
        [Nag87]): on overflow the gateway evicts from the hog instead
        of refusing the newcomer.  Disciplines that cannot support
        eviction raise.
        """
        raise SimulationError(
            f"{type(self).__name__} does not support eviction")


class FifoQueue(SimDiscipline):
    """Serve in arrival order; no preemption."""

    name = "fifo"

    def __init__(self):
        self._queue: Deque[Packet] = deque()

    def push(self, pkt, now):
        self._queue.append(pkt)

    def pop(self, now):
        return self._queue.popleft() if self._queue else None

    def requeue_front(self, pkt):
        self._queue.appendleft(pkt)

    def remove_recent(self, conn):
        for idx in range(len(self._queue) - 1, -1, -1):
            if self._queue[idx].conn == conn:
                pkt = self._queue[idx]
                del self._queue[idx]
                return pkt
        return None

    def __len__(self):
        return len(self._queue)


class _ClassQueue(SimDiscipline):
    """Shared mechanics of class-based preemptive-resume priority."""

    preemptive = True

    def __init__(self):
        self._classes: List[Deque[Packet]] = []

    def _ensure_class(self, klass: int) -> None:
        while len(self._classes) <= klass:
            self._classes.append(deque())

    def _classify(self, pkt: Packet, now: float) -> int:
        raise NotImplementedError

    def push(self, pkt, now):
        pkt.priority_class = self._classify(pkt, now)
        self._ensure_class(pkt.priority_class)
        self._classes[pkt.priority_class].append(pkt)

    def pop(self, now):
        for queue in self._classes:
            if queue:
                return queue.popleft()
        return None

    def requeue_front(self, pkt):
        self._ensure_class(pkt.priority_class)
        self._classes[pkt.priority_class].appendleft(pkt)

    def would_preempt(self, serving, arriving):
        return arriving.priority_class < serving.priority_class

    def remove_recent(self, conn):
        # Evict from the *lowest-priority* end first: the hog's excess
        # lives in its deepest substream classes.
        for queue in reversed(self._classes):
            for idx in range(len(queue) - 1, -1, -1):
                if queue[idx].conn == conn:
                    pkt = queue[idx]
                    del queue[idx]
                    return pkt
        return None

    def __len__(self):
        return sum(len(q) for q in self._classes)


class FixedPriorityQueue(_ClassQueue):
    """Static priority by connection: class = position in a fixed order."""

    name = "fixed-priority"

    def __init__(self, class_of_conn: Dict[int, int]):
        super().__init__()
        self._class_of_conn = dict(class_of_conn)

    def _classify(self, pkt, now):
        try:
            return self._class_of_conn[pkt.conn]
        except KeyError:
            raise SimulationError(
                f"no priority class for connection {pkt.conn}") from None


class FairShareQueue(_ClassQueue):
    """Fair Share: thin each connection into rate-ordered substreams.

    With local rates sorted increasingly ``r_(1) <= ... <= r_(N)``, a
    packet from the connection of sorted rank ``j`` belongs to class
    ``k <= j`` with probability ``(r_(k) - r_(k-1)) / r_j`` — the
    substream widths of Table 1.  Thinning a Poisson stream yields
    independent Poisson substreams, so the simulated system is exactly
    the preemptive-priority construction behind the analytic
    :class:`~repro.core.fairshare.FairShare` queue law.
    """

    name = "fair-share"

    def _classify(self, pkt, now):
        if self._rate_provider is None or self._rng is None:
            raise SimulationError(
                "FairShareQueue used without binding a rate provider")
        rates = np.asarray(self._rate_provider(), dtype=float)
        local = self._local_index[pkt.conn]
        own = float(rates[local])
        if own <= 0.0:
            # A packet from a (currently believed) silent connection:
            # treat as highest priority; it cannot be thinned.
            return 0
        sorted_rates = np.sort(rates)
        prev = np.concatenate(([0.0], sorted_rates[:-1]))
        widths = np.clip(np.minimum(own, sorted_rates) - prev, 0.0, None)
        total = float(widths.sum())
        if total <= 0.0:
            return 0
        u = self._rng.random() * total
        acc = 0.0
        for klass, width in enumerate(widths):
            acc += float(width)
            if u <= acc:
                return klass
        return int(np.max(np.nonzero(widths)[0]))


class FairQueueingQueue(SimDiscipline):
    """Fair Queueing (DKS '89) via virtual finish times, equal weights.

    The virtual clock advances at rate ``1 / |backlogged flows|``; an
    arriving packet is stamped
    ``finish = max(V, last_finish[flow]) + service_time`` and the
    smallest stamp is served next, non-preemptively.  When the gateway
    drains completely the virtual clock and stamps reset (a new busy
    period).
    """

    name = "fair-queueing"

    def __init__(self):
        self._heap: List = []
        self._counter = 0
        self._virtual = 0.0
        self._last_update = 0.0
        self._last_finish: Dict[int, float] = {}
        self._backlog: Dict[int, int] = {}
        self._size = 0

    def _advance(self, now: float) -> None:
        active = sum(1 for v in self._backlog.values() if v > 0)
        if active > 0:
            self._virtual += (now - self._last_update) / active
        self._last_update = now

    def push(self, pkt, now):
        import heapq

        self._advance(now)
        start = max(self._virtual, self._last_finish.get(pkt.conn, 0.0))
        finish = start + pkt.service_time
        self._last_finish[pkt.conn] = finish
        self._counter += 1
        heapq.heappush(self._heap, (finish, self._counter, pkt))
        self._backlog[pkt.conn] = self._backlog.get(pkt.conn, 0) + 1
        self._size += 1

    def pop(self, now):
        import heapq

        self._advance(now)
        if not self._heap:
            return None
        _, _, pkt = heapq.heappop(self._heap)
        self._size -= 1
        return pkt

    def release(self, pkt: Packet, now: float) -> None:
        """Notify that ``pkt`` finished service (backlog bookkeeping)."""
        self._advance(now)
        count = self._backlog.get(pkt.conn, 0) - 1
        self._backlog[pkt.conn] = max(count, 0)
        if self._size == 0 and all(v == 0 for v in self._backlog.values()):
            self._virtual = 0.0
            self._last_finish.clear()

    def requeue_front(self, pkt):
        raise SimulationError("Fair Queueing is non-preemptive")

    def __len__(self):
        return self._size


def make_discipline(kind: str, **kwargs) -> SimDiscipline:
    """Factory by name: ``fifo``, ``fair-share``, ``fair-queueing``,
    ``fixed-priority`` (needs ``class_of_conn=...``)."""
    kinds = {
        "fifo": FifoQueue,
        "fair-share": FairShareQueue,
        "fair-queueing": FairQueueingQueue,
        "fixed-priority": FixedPriorityQueue,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise SimulationError(
            f"unknown discipline {kind!r}; choose from {sorted(kinds)}"
        ) from None
    return cls(**kwargs)
