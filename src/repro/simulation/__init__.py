"""Packet-level discrete-event simulation substrate.

The paper's model treats queues as instantly-equilibrated closed forms;
this subpackage provides the physical system underneath: Poisson
sources, exponential-server gateways with FIFO / Fair Share (substream
thinning) / fixed-priority / Fair Queueing disciplines, line latencies,
and a closed-loop driver that runs the rate-adjustment rules on
*measured*, delayed congestion signals.
"""

from .closed_loop import ClosedLoopResult, run_closed_loop
from .events import EventHandle, Scheduler
from .monitors import EndToEndMonitor, GatewayMonitor
from .network_sim import NetworkSimulation
from .packet import Packet
from .queues import (FairQueueingQueue, FairShareQueue, FifoQueue,
                     FixedPriorityQueue, SimDiscipline, make_discipline)
from .rng import RandomStreams
from .server import GatewayServer
from .stats import BatchMeansEstimate, batch_means, measure_queue_ci
from .validation import (QueueValidation, analytic_counterpart,
                         validate_single_gateway)

__all__ = [
    "Scheduler", "EventHandle", "RandomStreams", "Packet",
    "SimDiscipline", "FifoQueue", "FixedPriorityQueue", "FairShareQueue",
    "FairQueueingQueue", "make_discipline",
    "GatewayMonitor", "EndToEndMonitor", "GatewayServer",
    "NetworkSimulation",
    "ClosedLoopResult", "run_closed_loop",
    "QueueValidation", "analytic_counterpart", "validate_single_gateway",
    "BatchMeansEstimate", "batch_means", "measure_queue_ci",
]
