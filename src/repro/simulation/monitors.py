"""Measurement infrastructure: time-weighted queues, delays, throughput.

:class:`GatewayMonitor` integrates per-connection *number in system*
(waiting + in service) over time, yielding the simulated counterpart of
the analytic ``Q^a_i(r)``.  :class:`EndToEndMonitor` tallies delivered
packets and source-to-sink delays.  Both support a statistics reset so a
warm-up transient can be discarded.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["GatewayMonitor", "EndToEndMonitor"]


class GatewayMonitor:
    """Per-gateway, per-connection time-average queue statistics."""

    def __init__(self, local_conns: Sequence[int]):
        self._conns = list(local_conns)
        self._pos = {conn: k for k, conn in enumerate(self._conns)}
        n = len(self._conns)
        self._in_system = np.zeros(n, dtype=int)
        self._integral = np.zeros(n, dtype=float)
        self._arrivals = np.zeros(n, dtype=int)
        self._departures = np.zeros(n, dtype=int)
        self._drops = np.zeros(n, dtype=int)
        self._last_time = 0.0
        self._start_time = 0.0

    def _accumulate(self, now: float) -> None:
        dt = now - self._last_time
        if dt < 0:
            raise SimulationError(
                f"monitor time went backwards: {now} < {self._last_time}")
        if dt > 0:
            self._integral += self._in_system * dt
            self._last_time = now

    def on_arrival(self, conn: int, now: float) -> None:
        self._accumulate(now)
        self._in_system[self._pos[conn]] += 1
        self._arrivals[self._pos[conn]] += 1

    def on_departure(self, conn: int, now: float) -> None:
        self._accumulate(now)
        pos = self._pos[conn]
        if self._in_system[pos] <= 0:
            raise SimulationError(
                f"departure of connection {conn} with empty gateway count")
        self._in_system[pos] -= 1
        self._departures[pos] += 1

    def on_drop(self, conn: int, now: float) -> None:
        """A packet was refused admission (finite buffer overflow)."""
        self._accumulate(now)
        self._drops[self._pos[conn]] += 1

    def on_evict(self, conn: int, now: float) -> None:
        """An already-admitted packet was evicted (longest-queue drop).

        The packet leaves the system and its earlier arrival is
        reclassified as a drop, so ``offered = arrivals + drops`` stays
        consistent with what the sources actually sent.
        """
        self._accumulate(now)
        pos = self._pos[conn]
        if self._in_system[pos] <= 0:
            raise SimulationError(
                f"eviction of connection {conn} with empty gateway count")
        self._in_system[pos] -= 1
        if self._arrivals[pos] > 0:
            self._arrivals[pos] -= 1
        self._drops[pos] += 1

    def reset_statistics(self, now: float) -> None:
        """Discard everything accumulated so far; occupancy is kept."""
        self._accumulate(now)
        self._integral[:] = 0.0
        self._arrivals[:] = 0
        self._departures[:] = 0
        self._drops[:] = 0
        self._start_time = now
        self._last_time = now

    def mean_queue_lengths(self, now: float) -> np.ndarray:
        """Time-average number in system per local connection."""
        self._accumulate(now)
        horizon = now - self._start_time
        if horizon <= 0:
            return np.zeros(len(self._conns), dtype=float)
        return self._integral / horizon

    def arrival_rates(self, now: float) -> np.ndarray:
        """Measured arrival rate per local connection since the reset.

        Drops count as arrivals (they did arrive); the offered load is
        what a rate estimator at the gateway input would see.
        """
        horizon = now - self._start_time
        if horizon <= 0:
            return np.zeros(len(self._conns), dtype=float)
        return (self._arrivals + self._drops) / horizon

    def drop_fractions(self) -> np.ndarray:
        """Per-connection fraction of offered packets dropped since the
        reset (0 where nothing was offered)."""
        offered = self._arrivals + self._drops
        with np.errstate(invalid="ignore"):
            return np.where(offered > 0,
                            self._drops / np.maximum(offered, 1), 0.0)

    @property
    def drops(self) -> np.ndarray:
        return self._drops.copy()

    def aggregate_drop_fraction(self) -> float:
        """Gateway-wide dropped / offered since the reset (0 if idle)."""
        offered = int(self._arrivals.sum() + self._drops.sum())
        if offered == 0:
            return 0.0
        return float(self._drops.sum()) / offered

    @property
    def local_conns(self) -> List[int]:
        return list(self._conns)

    def occupancy(self) -> np.ndarray:
        """Current number-in-system per local connection (copy)."""
        return self._in_system.copy()

    def snapshot(self, now: float) -> Dict[str, object]:
        """Plain-data view of everything measured since the reset.

        JSON-serialisable (lists and floats only), suitable for the
        observability artifact writer.
        """
        return {
            "local_conns": list(self._conns),
            "mean_queue_lengths": [float(q) for q in
                                   self.mean_queue_lengths(now)],
            "arrival_rates": [float(a) for a in self.arrival_rates(now)],
            "drop_fractions": [float(d) for d in self.drop_fractions()],
            "drops": [int(d) for d in self._drops],
            "occupancy": [int(c) for c in self._in_system],
            "aggregate_drop_fraction": self.aggregate_drop_fraction(),
            "horizon": float(now - self._start_time),
        }


class EndToEndMonitor:
    """Delivered-packet counts and source-to-sink delays per connection."""

    def __init__(self, n_connections: int):
        self._delivered = np.zeros(n_connections, dtype=int)
        self._delay_sum = np.zeros(n_connections, dtype=float)
        self._start_time = 0.0

    def on_delivery(self, conn: int, created: float, now: float) -> None:
        self._delivered[conn] += 1
        self._delay_sum[conn] += now - created

    def reset_statistics(self, now: float) -> None:
        self._delivered[:] = 0
        self._delay_sum[:] = 0.0
        self._start_time = now

    def throughput(self, now: float) -> np.ndarray:
        """Delivered packets per unit time since the reset."""
        horizon = now - self._start_time
        if horizon <= 0:
            return np.zeros_like(self._delay_sum)
        return self._delivered / horizon

    def mean_delays(self, now: float = 0.0) -> np.ndarray:
        """Mean end-to-end delay; ``nan`` for connections with no
        deliveries (the caller decides how to treat silence)."""
        with np.errstate(invalid="ignore"):
            return np.where(self._delivered > 0,
                            self._delay_sum / np.maximum(self._delivered, 1),
                            np.nan)

    @property
    def delivered(self) -> np.ndarray:
        return self._delivered.copy()

    def snapshot(self, now: float) -> Dict[str, object]:
        """Plain-data view (JSON-serialisable; ``nan`` delays → None)."""
        delays = self.mean_delays(now)
        return {
            "delivered": [int(d) for d in self._delivered],
            "throughput": [float(t) for t in self.throughput(now)],
            "mean_delays": [None if np.isnan(d) else float(d)
                            for d in delays],
            "horizon": float(now - self._start_time),
        }
