"""Discrete-event calendars.

Two implementations share one semantics — a binary-heap event list with
lazy cancellation (cancelled events stay in the heap but are skipped
when popped) and ties in time broken by insertion order, so runs are
fully deterministic given the random streams:

* :class:`Scheduler` — the legacy object engine: one Python callback
  closure and one :class:`EventHandle` per event.
* :class:`EventCalendar` — the fast kernel's struct-of-arrays calendar:
  events live in parallel ``array`` columns (float time, int kind, two
  int operands, a liveness flag) indexed by a heap of
  ``(time, seq, slot)`` tuples, with freed slots recycled through a
  free-list so steady-state runs allocate O(1) objects.  Dispatch on
  the integer ``kind`` is the caller's job.
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from typing import Callable, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventHandle", "Scheduler", "EventCalendar"]


class EventHandle:
    """Opaque handle returned by :meth:`Scheduler.schedule`.

    Holds the cancellation flag; callers should treat it as opaque apart
    from :meth:`cancel` / :attr:`cancelled`.
    """

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Event loop: schedule callbacks at absolute times, run in order."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}")
        handle = EventHandle(time)
        heapq.heappush(self._heap, (time, next(self._counter),
                                    action, handle))
        return handle

    def schedule_after(self, delay: float,
                       action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after a nonnegative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be nonnegative, got {delay!r}")
        return self.schedule(self._now + delay, action)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the heap is empty."""
        while self._heap:
            time, _, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def run_until(self, t_end: float, max_events: int = 50_000_000) -> None:
        """Process events in time order until ``t_end`` (inclusive).

        The clock is advanced to ``t_end`` at the end even if the last
        event fires earlier, so time-weighted monitors integrate the
        full horizon.
        """
        if t_end < self._now:
            raise SimulationError(
                f"t_end {t_end} is before current time {self._now}")
        processed = 0
        while self._heap:
            time, _, action, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if time > t_end:
                break
            heapq.heappop(self._heap)
            self._now = time
            action()
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={t_end}; "
                    f"runaway simulation?")
        self._now = t_end


class EventCalendar:
    """Struct-of-arrays event calendar for the fast simulation kernel.

    Each scheduled event occupies one *slot* across four parallel typed
    columns — time (``'d'``), kind (``'b'``), and two signed-int
    operands (``'q'``, e.g. a connection or gateway index and a packet
    id) — plus a liveness byte.  A binary heap of ``(time, seq, slot)``
    tuples orders the slots; cancellation just clears the liveness flag
    and the dead heap entry is discarded when it surfaces.  Popped and
    cancelled slots go on a free-list, so a long run recycles a small
    working set of slots instead of allocating per event.

    The fast kernel's FIFO loop additionally pushes events it can never
    cancel (completions, deliveries) straight onto the heap as
    self-describing *payload* entries ``(time, seq, -1, kind, a[, b])``
    — slot ``-1`` marks them, and they skip the slot columns entirely.
    :meth:`peek_time` and :meth:`pop` understand both forms.
    """

    __slots__ = ("_time", "_kind", "_a", "_b", "_live",
                 "_free", "_heap", "_seq")

    def __init__(self):
        self._time = array("d")
        self._kind = array("b")
        self._a = array("q")
        self._b = array("q")
        self._live = array("b")
        self._free: list = []
        self._heap: list = []
        self._seq = 0

    def __len__(self) -> int:
        """Number of live (pending) slot events.

        Payload entries pushed directly by the kernel are not counted
        (they have no slot; the kernel never needs this count).
        """
        return sum(self._live)

    @property
    def capacity(self) -> int:
        """Total slots ever allocated (live + recyclable)."""
        return len(self._time)

    def schedule(self, time: float, kind: int, a: int = 0,
                 b: int = 0) -> int:
        """Schedule an event; returns its slot id (pass to :meth:`cancel`)."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        free = self._free
        if free:
            slot = free.pop()
            self._time[slot] = time
            self._kind[slot] = kind
            self._a[slot] = a
            self._b[slot] = b
            self._live[slot] = 1
        else:
            slot = len(self._time)
            self._time.append(time)
            self._kind.append(kind)
            self._a.append(a)
            self._b.append(b)
            self._live.append(1)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, slot))
        return slot

    def cancel(self, slot: int) -> None:
        """Cancel the pending event in ``slot``.

        Lazy: the heap entry stays until it surfaces, at which point the
        slot is recycled.  Only *pending* events may be cancelled —
        once an event has been popped its slot may already host a new
        event, so callers must drop their slot references when the
        event fires (the kernel tracks at most one live slot per
        source/server and overwrites it on every transition).
        """
        self._live[slot] = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if empty.

        Dead heap entries encountered on the way are popped and their
        slots recycled.
        """
        heap = self._heap
        live = self._live
        while heap:
            entry = heap[0]
            slot = entry[2]
            if slot < 0 or live[slot]:
                return entry[0]
            heapq.heappop(heap)
            self._free.append(slot)
        return None

    def pop(self) -> Optional[Tuple[float, int, int, int]]:
        """Remove and return the next live event as ``(time, kind, a, b)``.

        Returns ``None`` when no live events remain.  The slot is
        recycled immediately, so callers must copy out any field they
        need before scheduling again.
        """
        heap = self._heap
        live = self._live
        free = self._free
        while heap:
            entry = heapq.heappop(heap)
            slot = entry[2]
            if slot < 0:  # payload entry: (time, seq, -1, kind, a[, b])
                return (entry[0], entry[3], entry[4],
                        entry[5] if len(entry) > 5 else 0)
            if live[slot]:
                live[slot] = 0
                free.append(slot)
                return (self._time[slot], self._kind[slot],
                        self._a[slot], self._b[slot])
            free.append(slot)
        return None
