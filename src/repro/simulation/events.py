"""A minimal discrete-event scheduler.

The engine is a binary-heap event list with lazy cancellation: cancelled
events stay in the heap but are skipped when popped.  Ties in time are
broken by insertion order, so runs are fully deterministic given the
random streams.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

from ..errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]


class EventHandle:
    """Opaque handle returned by :meth:`Scheduler.schedule`.

    Holds the cancellation flag; callers should treat it as opaque apart
    from :meth:`cancel` / :attr:`cancelled`.
    """

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Event loop: schedule callbacks at absolute times, run in order."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}")
        handle = EventHandle(time)
        heapq.heappush(self._heap, (time, next(self._counter),
                                    action, handle))
        return handle

    def schedule_after(self, delay: float,
                       action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after a nonnegative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be nonnegative, got {delay!r}")
        return self.schedule(self._now + delay, action)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the heap is empty."""
        while self._heap:
            time, _, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def run_until(self, t_end: float, max_events: int = 50_000_000) -> None:
        """Process events in time order until ``t_end`` (inclusive).

        The clock is advanced to ``t_end`` at the end even if the last
        event fires earlier, so time-weighted monitors integrate the
        full horizon.
        """
        if t_end < self._now:
            raise SimulationError(
                f"t_end {t_end} is before current time {self._now}")
        processed = 0
        while self._heap:
            time, _, action, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if time > t_end:
                break
            heapq.heappop(self._heap)
            self._now = time
            action()
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={t_end}; "
                    f"runaway simulation?")
        self._now = t_end
