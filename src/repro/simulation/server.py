"""The exponential gateway server with pluggable queueing discipline.

The server owns the in-service packet and the preemption mechanics; the
discipline (see :mod:`repro.simulation.queues`) owns the waiting room.
Service requirements are sampled exponentially (rate ``mu``) on arrival
at the gateway; preemption is *resume*: the preempted packet keeps its
unserved remainder (exact, no memoryless re-sampling shortcut).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import SimulationError
from .events import EventHandle, Scheduler
from .monitors import GatewayMonitor
from .packet import Packet
from .queues import FairQueueingQueue, SimDiscipline

__all__ = ["GatewayServer"]


class GatewayServer:
    """One gateway: exponential server + discipline + monitor."""

    def __init__(self, name: str, mu: float, discipline: SimDiscipline,
                 scheduler: Scheduler, service_rng: np.random.Generator,
                 monitor: GatewayMonitor,
                 forward: Callable[[Packet], None],
                 buffer_size: Optional[int] = None,
                 drop_policy: str = "tail"):
        if mu <= 0:
            raise SimulationError(f"gateway {name!r}: mu must be positive")
        if buffer_size is not None and buffer_size < 1:
            raise SimulationError(
                f"gateway {name!r}: buffer size must be >= 1 (room for "
                f"the packet in service), got {buffer_size!r}")
        if drop_policy not in ("tail", "longest"):
            raise SimulationError(
                f"gateway {name!r}: drop_policy must be 'tail' or "
                f"'longest', got {drop_policy!r}")
        self.name = name
        self.mu = float(mu)
        self.discipline = discipline
        self._scheduler = scheduler
        self._service_rng = service_rng
        self.monitor = monitor
        self._forward = forward
        self.buffer_size = buffer_size
        self.drop_policy = drop_policy
        self._serving: Optional[Packet] = None
        self._completion: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._serving is not None

    @property
    def in_system(self) -> int:
        """Waiting packets plus the one in service."""
        return len(self.discipline) + (1 if self.busy else 0)

    def arrive(self, pkt: Packet) -> None:
        """Handle a packet arriving at this gateway.

        With a finite ``buffer_size`` (counting the packet in service),
        a full gateway sheds one packet per arrival: under the ``tail``
        policy it refuses the newcomer (classic drop-tail, the implicit
        signal of Jacobson-style schemes); under ``longest`` it admits
        the newcomer and evicts the most recent packet of the
        connection holding the most packets — Nagle's fairness-
        preserving buffer policy [Nag87].
        """
        now = self._scheduler.now
        if (self.buffer_size is not None
                and self.in_system >= self.buffer_size):
            if self.drop_policy == "longest" and self._evict_hog(pkt):
                pass  # room was made; fall through and admit
            else:
                self.monitor.on_drop(pkt.conn, now)
                return
        pkt.service_time = float(self._service_rng.exponential(1.0 / self.mu))
        pkt.remaining = pkt.service_time
        self.monitor.on_arrival(pkt.conn, now)
        self.discipline.push(pkt, now)
        if not self.busy:
            self._start_next()
        elif (self.discipline.preemptive
              and self.discipline.would_preempt(self._serving, pkt)):
            self._preempt()

    def _evict_hog(self, arriving: Packet) -> bool:
        """Make room by evicting from the most-occupying connection.

        Picks the connection with the most packets in system here; if
        its only packet is the one in service (never evicted), falls
        back to refusing the arrival.  Returns True when a slot was
        freed for ``arriving``.
        """
        now = self._scheduler.now
        counts = self.monitor.occupancy()
        order = list(np.argsort(-counts))
        local = self.monitor.local_conns
        for pos in order:
            if counts[pos] <= 0:
                break
            conn = local[pos]
            victim = self.discipline.remove_recent(conn)
            if victim is not None:
                self.monitor.on_evict(conn, now)
                return True
        return False

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        now = self._scheduler.now
        pkt = self.discipline.pop(now)
        if pkt is None:
            self._serving = None
            self._completion = None
            return
        self._serving = pkt
        self._completion = self._scheduler.schedule_after(
            pkt.remaining, self._complete)

    def _preempt(self) -> None:
        now = self._scheduler.now
        serving = self._serving
        if serving is None or self._completion is None:
            raise SimulationError("preemption with no packet in service")
        serving.remaining = max(self._completion.time - now, 0.0)
        self._completion.cancel()
        self.discipline.requeue_front(serving)
        self._serving = None
        self._completion = None
        self._start_next()

    def _complete(self) -> None:
        now = self._scheduler.now
        pkt = self._serving
        if pkt is None:
            raise SimulationError("completion event with idle server")
        self._serving = None
        self._completion = None
        if isinstance(self.discipline, FairQueueingQueue):
            self.discipline.release(pkt, now)
        self.monitor.on_departure(pkt.conn, now)
        self._forward(pkt)
        self._start_next()
