"""Deterministic random-stream management for the simulator.

Every stochastic component (each source's arrival process, each
gateway's service process, each gateway's Fair Share thinning) draws
from its own named substream spawned from a single root seed, so results
are reproducible and adding a component never perturbs the draws of the
others.

Two draw surfaces share each substream:

* the scalar calls (:meth:`RandomStreams.exponential`,
  :meth:`RandomStreams.uniform`) used by the legacy object engine; and
* the batched calls (:meth:`RandomStreams.exponentials`,
  :meth:`RandomStreams.uniforms`) plus the refillable
  :class:`VariateBuffer` used by the fast kernel, which cross into
  numpy once per *block* instead of once per variate.

**Buffering contract** (what makes the two surfaces bit-identical): a
numpy ``Generator`` fills an array with the same bitstream consumption
as the equivalent sequence of scalar draws, and
``Generator.exponential(scale)`` equals
``scale * Generator.standard_exponential()`` exactly.  So the k-th
variate popped from a buffer equals the k-th scalar draw from the same
stream — provided each named stream is used for **one draw kind only**
(exponential *or* uniform, never both).  The simulator's stream naming
(``arrival:c{i}``, ``service:{g}``, ``thinning:{g}``) guarantees this.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

from ..errors import SimulationError

__all__ = ["RandomStreams", "VariateBuffer"]

#: Default number of variates drawn per buffer refill.
_BLOCK = 512


class VariateBuffer:
    """A refillable block of variates from one ``Generator``.

    The hot loop calls :meth:`next_exponential` /
    :meth:`next_uniform` — plain attribute arithmetic on a prefetched
    Python list — and only crosses into
    ``Generator.standard_exponential(size=block)`` (or
    ``Generator.random(size=block)``) once per ``block`` draws.

    One buffer must serve one draw kind only; mixing exponential and
    uniform pops on the same buffer would interleave two block caches
    over one bitstream and break reproducibility, so it raises.
    """

    __slots__ = ("_gen", "_block", "_values", "_index", "_kind")

    def __init__(self, generator: np.random.Generator, block: int = _BLOCK):
        if block < 1:
            raise SimulationError(
                f"buffer block size must be >= 1, got {block!r}")
        self._gen = generator
        self._block = int(block)
        self._values: list = []
        self._index = 0
        self._kind: str = ""

    def _refill(self, kind: str) -> None:
        if self._kind and self._kind != kind:
            raise SimulationError(
                f"variate buffer already serves {self._kind!r} draws; "
                f"a stream must be used for one draw kind only")
        self._kind = kind
        if kind == "exponential":
            block = self._gen.standard_exponential(self._block)
        else:
            block = self._gen.random(self._block)
        self._values = block.tolist()
        self._index = 0

    def next_exponential(self, scale: float) -> float:
        """The next ``Exp(1/scale)`` variate: ``scale * Exp(1)``."""
        i = self._index
        if i >= len(self._values) or self._kind != "exponential":
            self._refill("exponential")
            i = 0
        self._index = i + 1
        return scale * self._values[i]

    def next_uniform(self) -> float:
        """The next U(0,1) variate."""
        i = self._index
        if i >= len(self._values) or self._kind != "uniform":
            self._refill("uniform")
            i = 0
        self._index = i + 1
        return self._values[i]


def _validate_rate(rate: float) -> float:
    rate = float(rate)
    if not rate > 0.0 or rate != rate or rate == float("inf"):
        raise SimulationError(
            f"exponential rate must be a finite positive number, "
            f"got {rate!r}")
    return rate


class RandomStreams:
    """A registry of independent named :class:`numpy.random.Generator` s."""

    __slots__ = ("_root", "_streams", "_buffers")

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._buffers: Dict[Tuple[str, int], VariateBuffer] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created and cached on first use.

        The substream seed is derived from the root seed and the name,
        so the mapping is stable across runs and independent of the
        order in which streams are first requested.  Repeat lookups are
        a single dict hit — the ``SeedSequence`` spawn happens once per
        name.
        """
        try:
            return self._streams[name]
        except KeyError:
            pass
        digest = hashlib.md5(name.encode("utf-8")).digest()
        key = (int.from_bytes(digest[:8], "little"),
               int.from_bytes(digest[8:], "little"))
        child = np.random.SeedSequence(entropy=self._root.entropy,
                                       spawn_key=key)
        gen = np.random.default_rng(child)
        self._streams[name] = gen
        return gen

    def buffer(self, name: str, block: int = _BLOCK) -> VariateBuffer:
        """The (cached) :class:`VariateBuffer` over stream ``name``.

        The buffer wraps the *same* generator :meth:`stream` returns,
        so buffered and scalar draws from one stream consume one
        bitstream; per the buffering contract, do not mix the two
        surfaces on the same stream within one simulation.
        """
        key = (name, int(block))
        try:
            return self._buffers[key]
        except KeyError:
            buf = VariateBuffer(self.stream(name), block=block)
            self._buffers[key] = buf
            return buf

    def exponential(self, name: str, rate: float) -> float:
        """One exponential variate with the given rate from stream
        ``name``.  Raises :class:`~repro.errors.SimulationError` for a
        non-positive (or non-finite) rate."""
        rate = _validate_rate(rate)
        return float(self.stream(name).exponential(1.0 / rate))

    def exponentials(self, name: str, rate: float, n: int) -> np.ndarray:
        """``n`` exponential variates with the given rate, one numpy
        call.  Bit-identical to ``n`` successive scalar
        :meth:`exponential` draws from the same stream."""
        rate = _validate_rate(rate)
        if not (isinstance(n, (int, np.integer)) and n >= 0):
            raise SimulationError(
                f"draw count must be a nonnegative int, got {n!r}")
        return self.stream(name).exponential(1.0 / rate, size=int(n))

    def uniform(self, name: str) -> float:
        """One U(0,1) variate from stream ``name``."""
        return float(self.stream(name).random())

    def uniforms(self, name: str, n: int) -> np.ndarray:
        """``n`` U(0,1) variates from stream ``name``, one numpy call."""
        if not (isinstance(n, (int, np.integer)) and n >= 0):
            raise SimulationError(
                f"draw count must be a nonnegative int, got {n!r}")
        return self.stream(name).random(size=int(n))
