"""Deterministic random-stream management for the simulator.

Every stochastic component (each source's arrival process, each
gateway's service process, each gateway's Fair Share thinning) draws
from its own named substream spawned from a single root seed, so results
are reproducible and adding a component never perturbs the draws of the
others.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent named :class:`numpy.random.Generator` s."""

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The substream seed is derived from the root seed and the name,
        so the mapping is stable across runs and independent of the
        order in which streams are first requested.
        """
        if name not in self._streams:
            digest = hashlib.md5(name.encode("utf-8")).digest()
            key = (int.from_bytes(digest[:8], "little"),
                   int.from_bytes(digest[8:], "little"))
            child = np.random.SeedSequence(entropy=self._root.entropy,
                                           spawn_key=key)
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def exponential(self, name: str, rate: float) -> float:
        """One exponential variate with the given rate from stream ``name``."""
        return float(self.stream(name).exponential(1.0 / rate))

    def uniform(self, name: str) -> float:
        """One U(0,1) variate from stream ``name``."""
        return float(self.stream(name).random())
