"""The fast packet-simulation kernel.

:class:`FastEngine` re-implements the legacy object engine
(:mod:`repro.simulation.server` + :class:`Scheduler`) on flat data:

* events live in the struct-of-arrays :class:`~repro.simulation.events.
  EventCalendar` and are dispatched on an integer kind — no callback
  closures, no :class:`EventHandle` objects;
* packets live in the :class:`~repro.simulation.packet.PacketPool`
  columns and travel as integer ids recycled through a free-list;
* every random variate comes from a per-stream
  :class:`~repro.simulation.rng.VariateBuffer`, so the hot loop never
  crosses into numpy one float at a time;
* statistics accumulate in plain Python lists owned by the engine;
  :class:`KernelGatewayStats` / :class:`KernelEndToEndStats` are views
  over them exposing the exact read API of the legacy monitors;
* a FIFO **burst fast path** (:meth:`FastEngine._run_fifo`, a single
  monolithic loop with the calendar, pool, RNG buffers and statistics
  all inlined into locals) services back-to-back departures at a
  gateway without touching the calendar whenever the next completion
  *strictly* precedes every pending event; ties and the preemptive
  class disciplines take the general path.

Correctness bar: given the same seed, the kernel consumes every random
stream in the same order and performs the same float arithmetic as the
legacy engine, so trajectories are **bit-identical** — for FIFO, Fair
Share and fixed-priority alike (the equivalence tests assert 0 ulp).
The burst path is exact, not approximate: when the next completion
strictly precedes all pending events, the legacy engine would pop that
completion next anyway, and on a tie the kernel falls back to the
calendar where the fresh completion's later insertion sequence loses
the tie exactly as it would have under the legacy scheduler.

Unsupported configurations (Fair Queueing, drop-from-longest with
finite buffers) stay on the legacy engine; see
``NetworkSimulation(engine="auto")``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.topology import Network
from ..errors import SimulationError
from .events import EventCalendar
from .packet import PacketPool
from .rng import RandomStreams

__all__ = [
    "FastEngine",
    "KernelGatewayStats",
    "KernelEndToEndStats",
    "KernelServerView",
    "supports_fast_engine",
]

# Event kinds (the calendar's integer ``kind`` column).
_EMIT = 0      # a = connection index
_COMPLETE = 1  # a = gateway index
_HANDOFF = 2   # a = packet id, b = next hop index on its path
_SINK = 3      # a = packet id

#: Disciplines the kernel implements (Fair Queueing's virtual-clock
#: bookkeeping is left to the legacy engine).
_FAST_DISCIPLINES = ("fifo", "fair-share", "fixed-priority")


def supports_fast_engine(discipline_kind: str,
                         buffer_map: Dict[str, Optional[int]],
                         drop_policy: str) -> bool:
    """Can :class:`FastEngine` run this configuration exactly?

    Everything except Fair Queueing and the drop-from-longest eviction
    policy (which only matters when some buffer is finite).
    """
    if discipline_kind not in _FAST_DISCIPLINES:
        return False
    has_finite = any(v is not None for v in buffer_map.values())
    if drop_policy == "longest" and has_finite:
        return False
    return True


class KernelGatewayStats:
    """Monitor-compatible view of one gateway's engine-owned statistics.

    Mirrors :class:`~repro.simulation.monitors.GatewayMonitor` method
    for method — same accumulation formulae evaluated scalar-wise (a
    loop of ``integral[j] += count[j] * dt`` is bit-identical to the
    monitor's elementwise ``integral += in_system * dt``), so the fast
    and legacy engines report identical floats.  The data itself lives
    in :class:`FastEngine` parallel lists, which the kernel's inlined
    run loops mutate directly.
    """

    __slots__ = ("_e", "_g", "local_conns_", "pos")

    def __init__(self, engine: "FastEngine", g: int):
        self._e = engine
        self._g = g
        self.local_conns_ = list(engine.local_conns[g])
        self.pos = {conn: k for k, conn in enumerate(self.local_conns_)}

    # -- mutation (the generic engine path) ----------------------------
    def accumulate(self, now: float) -> None:
        e, g = self._e, self._g
        dt = now - e.st_last[g]
        if dt > 0.0:
            count = e.st_count[g]
            integral = e.st_integral[g]
            # Skipping zero counts is bitwise exact: the integral only
            # ever accumulates positive products, so it is never -0.0
            # and adding 0.0 would not change it.
            for j, c in enumerate(count):
                if c:
                    integral[j] += c * dt
            e.st_last[g] = now
        elif dt < 0.0:
            raise SimulationError(
                f"monitor time went backwards: {now} < {e.st_last[g]}")

    def on_arrival(self, conn: int, now: float) -> None:
        self.accumulate(now)
        e, g, pos = self._e, self._g, self.pos[conn]
        e.st_count[g][pos] += 1
        e.st_arrivals[g][pos] += 1

    def on_departure(self, conn: int, now: float) -> None:
        self.accumulate(now)
        e, g, pos = self._e, self._g, self.pos[conn]
        if e.st_count[g][pos] <= 0:
            raise SimulationError(
                f"departure of connection {conn} with empty gateway count")
        e.st_count[g][pos] -= 1
        e.st_departures[g][pos] += 1

    def on_drop(self, conn: int, now: float) -> None:
        self.accumulate(now)
        self._e.st_drops[self._g][self.pos[conn]] += 1

    def reset_statistics(self, now: float) -> None:
        self.accumulate(now)
        e, g = self._e, self._g
        n = len(self.local_conns_)
        # In-place so the engine's hoisted list references stay valid.
        e.st_integral[g][:] = [0.0] * n
        e.st_arrivals[g][:] = [0] * n
        e.st_departures[g][:] = [0] * n
        e.st_drops[g][:] = [0] * n
        e.st_start[g] = now
        e.st_last[g] = now

    # -- reads (the GatewayMonitor API) --------------------------------
    def mean_queue_lengths(self, now: float) -> np.ndarray:
        self.accumulate(now)
        e, g = self._e, self._g
        horizon = now - e.st_start[g]
        if horizon <= 0:
            return np.zeros(len(self.local_conns_), dtype=float)
        return np.array([v / horizon for v in e.st_integral[g]],
                        dtype=float)

    def arrival_rates(self, now: float) -> np.ndarray:
        e, g = self._e, self._g
        horizon = now - e.st_start[g]
        if horizon <= 0:
            return np.zeros(len(self.local_conns_), dtype=float)
        return np.array(
            [(a + d) / horizon
             for a, d in zip(e.st_arrivals[g], e.st_drops[g])], dtype=float)

    def drop_fractions(self) -> np.ndarray:
        e, g = self._e, self._g
        return np.array(
            [d / (a + d) if (a + d) > 0 else 0.0
             for a, d in zip(e.st_arrivals[g], e.st_drops[g])], dtype=float)

    @property
    def drops(self) -> np.ndarray:
        return np.array(self._e.st_drops[self._g], dtype=int)

    def aggregate_drop_fraction(self) -> float:
        e, g = self._e, self._g
        offered = sum(e.st_arrivals[g]) + sum(e.st_drops[g])
        if offered == 0:
            return 0.0
        return float(sum(e.st_drops[g])) / offered

    @property
    def local_conns(self) -> List[int]:
        return list(self.local_conns_)

    def occupancy(self) -> np.ndarray:
        return np.array(self._e.st_count[self._g], dtype=int)

    def snapshot(self, now: float) -> Dict[str, object]:
        e, g = self._e, self._g
        return {
            "local_conns": list(self.local_conns_),
            "mean_queue_lengths": [float(q) for q in
                                   self.mean_queue_lengths(now)],
            "arrival_rates": [float(a) for a in self.arrival_rates(now)],
            "drop_fractions": [float(d) for d in self.drop_fractions()],
            "drops": [int(d) for d in e.st_drops[g]],
            "occupancy": [int(c) for c in e.st_count[g]],
            "aggregate_drop_fraction": self.aggregate_drop_fraction(),
            "horizon": float(now - e.st_start[g]),
        }


class KernelEndToEndStats:
    """Monitor-compatible view of the engine's end-to-end tallies.

    The :class:`~repro.simulation.monitors.EndToEndMonitor` read API;
    scalar adds in the kernel are bit-identical to the monitor's
    elementwise updates.
    """

    __slots__ = ("_e",)

    def __init__(self, engine: "FastEngine"):
        self._e = engine

    def on_delivery(self, conn: int, created: float, now: float) -> None:
        e = self._e
        e.e2e_delivered[conn] += 1
        e.e2e_delay[conn] += now - created

    def reset_statistics(self, now: float) -> None:
        e = self._e
        n = len(e.e2e_delivered)
        e.e2e_delivered[:] = [0] * n
        e.e2e_delay[:] = [0.0] * n
        e.e2e_start = now

    def throughput(self, now: float) -> np.ndarray:
        e = self._e
        horizon = now - e.e2e_start
        if horizon <= 0:
            return np.zeros(len(e.e2e_delivered), dtype=float)
        return np.array([c / horizon for c in e.e2e_delivered], dtype=float)

    def mean_delays(self, now: float = 0.0) -> np.ndarray:
        e = self._e
        return np.array(
            [s / c if c > 0 else np.nan
             for c, s in zip(e.e2e_delivered, e.e2e_delay)], dtype=float)

    @property
    def delivered(self) -> np.ndarray:
        return np.array(self._e.e2e_delivered, dtype=int)

    def snapshot(self, now: float) -> Dict[str, object]:
        e = self._e
        delays = self.mean_delays(now)
        return {
            "delivered": [int(d) for d in e.e2e_delivered],
            "throughput": [float(t) for t in self.throughput(now)],
            "mean_delays": [None if np.isnan(d) else float(d)
                            for d in delays],
            "horizon": float(now - e.e2e_start),
        }


class KernelServerView:
    """Read-only :class:`GatewayServer`-shaped view of one kernel gateway."""

    __slots__ = ("name", "mu", "buffer_size", "drop_policy",
                 "_engine", "_g")

    def __init__(self, engine: "FastEngine", g: int):
        self._engine = engine
        self._g = g
        self.name = engine.gw_names[g]
        self.mu = 1.0 / engine.mu_scale[g]
        self.buffer_size = engine.buffer_size[g]
        self.drop_policy = engine.drop_policy

    @property
    def busy(self) -> bool:
        return self._engine.serving[self._g] >= 0

    @property
    def in_system(self) -> int:
        """Waiting packets plus the one in service."""
        return self._engine.in_system_count[self._g]


class FastEngine:
    """Flat-data discrete-event engine behind ``NetworkSimulation``.

    Replicates the legacy engine's event and random-draw order exactly
    (see the module docstring); everything here is an implementation
    detail of :class:`~repro.simulation.network_sim.NetworkSimulation`,
    which owns validation and the public measurement surface.
    """

    def __init__(self, network: Network, discipline_kind: str,
                 streams: RandomStreams, rates: np.ndarray,
                 buffer_map: Dict[str, Optional[int]], drop_policy: str):
        if discipline_kind not in _FAST_DISCIPLINES:
            raise SimulationError(
                f"fast engine does not implement {discipline_kind!r}")
        gw_names = list(network.gateway_names)
        n_gw = len(gw_names)
        n = network.num_connections
        gw_index = {g: k for k, g in enumerate(gw_names)}

        self.network = network
        self.discipline_kind = discipline_kind
        self.drop_policy = drop_policy
        self.gw_names = gw_names
        self.n_conn = n

        self.local_conns = [list(network.connections_at(g))
                            for g in gw_names]
        self.local_pos = [{c: p for p, c in enumerate(lc)}
                          for lc in self.local_conns]
        # Flat connection -> local-position tables (-1 where foreign):
        # a list index beats a dict hash in the hot loop.
        self.local_pos_flat = [[pos.get(c, -1) for c in range(n)]
                               for pos in self.local_pos]
        self.latency = [float(network.gateway(g).latency) for g in gw_names]
        self.mu_scale = [1.0 / float(network.mu(g)) for g in gw_names]
        self.paths = [[gw_index[g] for g in network.gamma(i)]
                      for i in range(n)]
        self.first_hop = [p[0] for p in self.paths]
        self.path_len = [len(p) for p in self.paths]
        self.buffer_size: List[Optional[int]] = []
        for g in gw_names:
            size = buffer_map.get(g)
            if size is not None and size < 1:
                raise SimulationError(
                    f"gateway {g!r}: buffer size must be >= 1 (room for "
                    f"the packet in service), got {size!r}")
            self.buffer_size.append(size)
        # Sentinel caps (2**62 ~ infinite) make the hot loop's overflow
        # test a single integer comparison.
        self.buffer_cap = [s if s is not None else (1 << 62)
                           for s in self.buffer_size]

        # Queues: one deque per gateway (FIFO) or one per priority
        # class (the class-based disciplines never need more classes
        # than local connections).
        if discipline_kind == "fifo":
            self.queues: Optional[List[deque]] = [deque() for _ in gw_names]
            self.cqueues = None
        else:
            self.queues = None
            self.cqueues = [[deque() for _ in lc] for lc in self.local_conns]

        # Server state: packet id in service (or -1), its scheduled
        # completion (calendar slot + absolute time), number in system.
        self.serving = [-1] * n_gw
        self.completion_slot = [-1] * n_gw
        self.completion_time = [0.0] * n_gw
        self.in_system_count = [0] * n_gw

        # Buffered random streams — same names, hence same bitstreams,
        # as the legacy engine's scalar draws.
        self.svc_buf = [streams.buffer(f"service:{g}") for g in gw_names]
        self.arr_buf = [streams.buffer(f"arrival:c{i}") for i in range(n)]
        self.thin_buf = ([streams.buffer(f"thinning:{g}") for g in gw_names]
                         if discipline_kind == "fair-share" else None)
        # Prime the exponential buffers: prefetching a block does not
        # change which variate is the k-th draw from a stream, and it
        # lets the hot loop test ``index >= block`` instead of calling
        # ``len`` on the value list.
        for buf in self.svc_buf + self.arr_buf:
            if not buf._values:
                buf._refill("exponential")

        # Statistics (engine-owned parallel lists; the Kernel*Stats
        # views give them the legacy monitors' read API).
        self.st_count = [[0] * len(lc) for lc in self.local_conns]
        self.st_integral = [[0.0] * len(lc) for lc in self.local_conns]
        self.st_arrivals = [[0] * len(lc) for lc in self.local_conns]
        self.st_departures = [[0] * len(lc) for lc in self.local_conns]
        self.st_drops = [[0] * len(lc) for lc in self.local_conns]
        self.st_last = [0.0] * n_gw
        self.st_start = [0.0] * n_gw
        self.e2e_delivered = [0] * n
        self.e2e_delay = [0.0] * n
        self.e2e_start = 0.0
        self.gw_stats = [KernelGatewayStats(self, g) for g in range(n_gw)]
        self.e2e_stats = KernelEndToEndStats(self)

        self.calendar = EventCalendar()
        self.pool = PacketPool()
        self.now = 0.0
        self.events_processed = 0

        # Sources: 1/rate (0.0 marks a silent source), per-connection
        # sequence numbers, and the pending-arrival bookkeeping.  The
        # class disciplines track the pending calendar slot; FIFO
        # instead validates arrival payload entries against a
        # per-connection epoch (bumped on resample), so its hot loop
        # never touches the slot columns at all.
        self.scale = [0.0] * n
        self.seq_counter = [0] * n
        self.pending_slot = [-1] * n
        self.arr_epoch = [0] * n

        # Fair Share thinning tables, per gateway per local position:
        # None => class 0 with no uniform consumed, else
        # (widths, total, fallback_class); rebuilt on rate pushes.
        self.fs_tables: List[list] = [[] for _ in gw_names]
        if discipline_kind == "fair-share":
            self.rebuild_fs_tables(
                [rates[list(lc)].copy() for lc in self.local_conns])

        for i in range(n):
            r = float(rates[i])
            self.scale[i] = 1.0 / r if r > 0.0 else 0.0
            self._schedule_next_arrival(i)

    # ------------------------------------------------------------------
    # sources & rate pushes
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self, conn: int) -> None:
        scale = self.scale[conn]
        if scale <= 0.0:
            self.pending_slot[conn] = -1
            return
        gap = self.arr_buf[conn].next_exponential(scale)
        if self.queues is not None:
            # FIFO: epoch-validated payload entry (no calendar slot).
            cal = self.calendar
            heapq.heappush(cal._heap, (self.now + gap, cal._seq, -1,
                                       _EMIT, conn, self.arr_epoch[conn]))
            cal._seq += 1
        else:
            self.pending_slot[conn] = self.calendar.schedule(
                self.now + gap, _EMIT, conn)

    def resample_arrivals(self, rates: np.ndarray) -> None:
        """Adopt new sending rates; resample every pending arrival
        (exact for Poisson sources by memorylessness — and the same
        per-connection draws the legacy engine makes)."""
        scale = self.scale
        cancel = self.calendar.cancel
        fifo = self.queues is not None
        for i in range(self.n_conn):
            r = float(rates[i])
            scale[i] = 1.0 / r if r > 0.0 else 0.0
            if fifo:
                # Invalidate the pending payload arrival: its epoch no
                # longer matches, so the loop skips it unprocessed.
                self.arr_epoch[i] += 1
            else:
                slot = self.pending_slot[i]
                if slot >= 0:
                    cancel(slot)
            self._schedule_next_arrival(i)

    def rebuild_fs_tables(self,
                          per_gateway_rates: Sequence[np.ndarray]) -> None:
        """Recompute the Fair Share thinning tables from per-gateway
        local rate vectors (oracle push or measured refresh).

        Same numpy pipeline as ``FairShareQueue._classify`` — sort,
        substream widths, total — evaluated once per rate push instead
        of once per packet, so the per-packet walk sees identical
        floats.
        """
        if self.discipline_kind != "fair-share":
            return
        for g, local_rates in enumerate(per_gateway_rates):
            rates = np.asarray(local_rates, dtype=float)
            sorted_rates = np.sort(rates)
            prev = np.concatenate(([0.0], sorted_rates[:-1]))
            table = []
            for p in range(rates.shape[0]):
                own = float(rates[p])
                if own <= 0.0:
                    table.append(None)
                    continue
                widths = np.clip(
                    np.minimum(own, sorted_rates) - prev, 0.0, None)
                total = float(widths.sum())
                if total <= 0.0:
                    table.append(None)
                    continue
                table.append(([float(w) for w in widths], total,
                              int(np.max(np.nonzero(widths)[0]))))
            self.fs_tables[g] = table

    # ------------------------------------------------------------------
    # general-path event handlers (class-based disciplines)
    # ------------------------------------------------------------------
    def _arrive(self, g: int, pid: int, now: float) -> None:
        """A packet reaches gateway ``g`` — the legacy ``arrive`` order:
        buffer check (drop before any draw), service draw, monitor,
        enqueue, then start or preempt."""
        pool = self.pool
        conn = pool.conn[pid]
        stats = self.gw_stats[g]
        size = self.buffer_size[g]
        if size is not None and self.in_system_count[g] >= size:
            stats.on_drop(conn, now)
            pool.free(pid)
            return
        pool.remaining[pid] = self.svc_buf[g].next_exponential(
            self.mu_scale[g])
        stats.on_arrival(conn, now)
        self.in_system_count[g] += 1

        # Classify into a priority class.
        pos = self.local_pos[g][conn]
        if self.thin_buf is not None:  # fair-share thinning
            entry = self.fs_tables[g][pos]
            if entry is None:
                klass = 0
            else:
                widths, total, fallback = entry
                u = self.thin_buf[g].next_uniform() * total
                acc = 0.0
                klass = fallback
                for k, width in enumerate(widths):
                    acc += width
                    if u <= acc:
                        klass = k
                        break
        else:  # fixed-priority: class = local position
            klass = pos
        pool.klass[pid] = klass
        self.cqueues[g][klass].append(pid)
        serving = self.serving[g]
        if serving < 0:
            self._start_next(g, now)
        elif klass < pool.klass[serving]:
            # Preemptive resume: bank the unserved remainder, cancel
            # the stale completion, push the victim back at the front
            # of its class, serve the best head.
            pool.remaining[serving] = max(
                self.completion_time[g] - now, 0.0)
            self.calendar.cancel(self.completion_slot[g])
            self.cqueues[g][pool.klass[serving]].appendleft(serving)
            self.serving[g] = -1
            self.completion_slot[g] = -1
            self._start_next(g, now)

    def _start_next(self, g: int, now: float) -> None:
        pid = -1
        for q in self.cqueues[g]:
            if q:
                pid = q.popleft()
                break
        if pid < 0:
            self.serving[g] = -1
            self.completion_slot[g] = -1
            return
        self.serving[g] = pid
        t = now + self.pool.remaining[pid]
        self.completion_time[g] = t
        self.completion_slot[g] = self.calendar.schedule(t, _COMPLETE, g)

    def _emit(self, conn: int, now: float) -> None:
        pid = self.pool.alloc(conn, self.seq_counter[conn], now)
        self.seq_counter[conn] += 1
        self._arrive(self.first_hop[conn], pid, now)
        self._schedule_next_arrival(conn)

    def _complete(self, g: int, now: float) -> None:
        """A service completion at gateway ``g`` (general path)."""
        pool = self.pool
        pid = self.serving[g]
        if pid < 0:
            raise SimulationError("completion event with idle server")
        self.serving[g] = -1
        self.completion_slot[g] = -1
        conn = pool.conn[pid]
        self.gw_stats[g].on_departure(conn, now)
        self.in_system_count[g] -= 1
        path = self.paths[conn]
        next_hop = pool.hop[pid] + 1
        if next_hop < len(path):
            self.calendar.schedule(now + self.latency[g], _HANDOFF,
                                   pid, next_hop)
        else:
            self.calendar.schedule(now + self.latency[g], _SINK, pid)
        self._start_next(g, now)

    # ------------------------------------------------------------------
    # main loops
    # ------------------------------------------------------------------
    def run_until(self, t_end: float, max_events: int = 50_000_000) -> None:
        """Process events in time order until ``t_end`` (inclusive);
        the clock then advances to ``t_end`` exactly like the legacy
        :meth:`Scheduler.run_until`."""
        if t_end < self.now:
            raise SimulationError(
                f"t_end {t_end} is before current time {self.now}")
        if self.queues is not None:
            self._run_fifo(t_end, max_events)
        else:
            self._run_general(t_end, max_events)
        self.now = t_end

    def _run_general(self, t_end: float, max_events: int) -> None:
        cal = self.calendar
        heap = cal._heap
        live = cal._live
        free = cal._free
        ev_kind = cal._kind
        ev_a = cal._a
        ev_b = cal._b
        pool = self.pool
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                time, _, slot = heap[0]
                if not live[slot]:
                    heappop(heap)
                    free.append(slot)
                    continue
                if time > t_end:
                    break
                heappop(heap)
                kind = ev_kind[slot]
                a = ev_a[slot]
                b = ev_b[slot]
                live[slot] = 0
                free.append(slot)
                self.now = time
                processed += 1
                if kind == _COMPLETE:
                    self._complete(a, time)
                elif kind == _EMIT:
                    self._emit(a, time)
                elif kind == _HANDOFF:
                    pool.hop[a] = b
                    self._arrive(self.paths[pool.conn[a]][b], a, time)
                else:  # _SINK
                    self.e2e_stats.on_delivery(pool.conn[a],
                                               pool.created[a], time)
                    pool.free(a)
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events before t={t_end}; "
                        f"runaway simulation?")
        finally:
            self.events_processed += processed


    def _run_fifo(self, t_end: float, max_events: int) -> None:
        """The FIFO hot loop: every data structure inlined into locals.

        In FIFO mode *every* event rides the heap as a self-describing
        payload tuple ``(time, seq, -1, kind, a[, b])`` — the slot
        columns are bypassed entirely.  That is possible because FIFO's
        only cancellable events are source arrivals, and those are
        invalidated by bumping the connection's epoch
        (``resample_arrivals``) rather than by clearing a slot's
        liveness flag; a stale arrival is skipped, uncounted, when it
        surfaces.  The burst branch in the COMPLETE case absorbs a
        departure chain without any heap traffic whenever the next
        completion strictly precedes every pending event — exactly the
        events the legacy scheduler would pop next anyway.
        """
        cal = self.calendar
        heap = cal._heap
        seq = cal._seq
        pool = self.pool
        p_conn = pool.conn
        p_seq = pool.seq
        p_created = pool.created
        p_hop = pool.hop
        p_rem = pool.remaining
        p_free = pool._free
        heappop = heapq.heappop
        heappush = heapq.heappush

        paths = self.paths
        path_len = self.path_len
        first_hop = self.first_hop
        latency = self.latency
        mu_scale = self.mu_scale
        buffer_cap = self.buffer_cap
        queues = self.queues
        serving = self.serving
        in_sys = self.in_system_count
        svc_buf = self.svc_buf
        arr_buf = self.arr_buf
        scale = self.scale
        arr_epoch = self.arr_epoch
        pos_flat = self.local_pos_flat
        st_count = self.st_count
        st_integral = self.st_integral
        st_arrivals = self.st_arrivals
        st_departures = self.st_departures
        st_drops = self.st_drops
        st_last = self.st_last
        e2e_delivered = self.e2e_delivered
        e2e_delay = self.e2e_delay

        now = self.now
        processed = 0
        # One-gateway cache: most events hit the same gateway as their
        # predecessor (always, on single-gateway topologies), so the
        # per-gateway structure lookups are reloaded only on a gateway
        # switch.  ``serving``/``in_sys``/``st_last`` mutate per event
        # and stay list-indexed.
        cg = -1
        c_q = c_cnt = c_integ = c_deps = c_arrs = c_drops = c_pos = None
        c_svc = None
        c_lat = c_mu = 0.0
        c_cap = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > t_end:
                    break
                heappop(heap)
                kind = entry[3]
                a = entry[4]

                if kind == _EMIT:
                    conn = a
                    if entry[5] != arr_epoch[conn]:
                        continue  # arrival cancelled by a rate change
                    now = time
                    processed += 1
                    # packet allocation (inlined pool.alloc; the
                    # diagnostic ``seq`` column is not maintained here)
                    if p_free:
                        pid = p_free.pop()
                        p_conn[pid] = conn
                        p_created[pid] = now
                        p_hop[pid] = 0
                    else:
                        pid = len(p_conn)
                        p_conn.append(conn)
                        p_seq.append(0)
                        p_created.append(now)
                        p_hop.append(0)
                        p_rem.append(0.0)
                        pool.klass.append(0)
                    g = first_hop[conn]
                    if g != cg:
                        cg = g
                        c_q = queues[g]
                        c_lat = latency[g]
                        c_cnt = st_count[g]
                        c_integ = st_integral[g]
                        c_deps = st_departures[g]
                        c_arrs = st_arrivals[g]
                        c_drops = st_drops[g]
                        c_pos = pos_flat[g]
                        c_svc = svc_buf[g]
                        c_mu = mu_scale[g]
                        c_cap = buffer_cap[g]
                    # --- arrive at g (inlined) ---
                    if in_sys[g] >= c_cap:
                        dt = now - st_last[g]
                        if dt > 0.0:
                            for j, c in enumerate(c_cnt):
                                if c:
                                    c_integ[j] += c * dt
                            st_last[g] = now
                        c_drops[c_pos[conn]] += 1
                        p_free.append(pid)
                    else:
                        i = c_svc._index
                        vals = c_svc._values
                        if i >= c_svc._block:
                            c_svc._refill("exponential")
                            vals = c_svc._values
                            i = 0
                        c_svc._index = i + 1
                        p_rem[pid] = c_mu * vals[i]
                        dt = now - st_last[g]
                        if dt > 0.0:
                            if in_sys[g]:  # all counts zero when empty
                                for j, c in enumerate(c_cnt):
                                    if c:
                                        c_integ[j] += c * dt
                            st_last[g] = now
                        pos = c_pos[conn]
                        c_cnt[pos] += 1
                        c_arrs[pos] += 1
                        in_sys[g] += 1
                        if serving[g] < 0:
                            serving[g] = pid
                            heappush(heap, (now + p_rem[pid], seq, -1,
                                            _COMPLETE, g))
                            seq += 1
                        else:
                            c_q.append(pid)
                    # --- schedule the next arrival of conn
                    # (epoch-validated payload; a rate change cancels
                    # it by bumping the connection's epoch) ---
                    buf = arr_buf[conn]
                    i = buf._index
                    vals = buf._values
                    if i >= buf._block:
                        buf._refill("exponential")
                        vals = buf._values
                        i = 0
                    buf._index = i + 1
                    heappush(heap, (now + scale[conn] * vals[i], seq, -1,
                                    _EMIT, conn, arr_epoch[conn]))
                    seq += 1

                elif kind == _COMPLETE:
                    now = time
                    processed += 1
                    g = a
                    if g != cg:
                        cg = g
                        c_q = queues[g]
                        c_lat = latency[g]
                        c_cnt = st_count[g]
                        c_integ = st_integral[g]
                        c_deps = st_departures[g]
                        c_arrs = st_arrivals[g]
                        c_drops = st_drops[g]
                        c_pos = pos_flat[g]
                        c_svc = svc_buf[g]
                        c_mu = mu_scale[g]
                        c_cap = buffer_cap[g]
                    while True:
                        pid = serving[g]
                        if pid < 0:
                            raise SimulationError(
                                "completion event with idle server")
                        conn = p_conn[pid]
                        # departure statistics (inlined accumulate)
                        dt = now - st_last[g]
                        if dt > 0.0:
                            for j, c in enumerate(c_cnt):
                                if c:
                                    c_integ[j] += c * dt
                            st_last[g] = now
                        pos = c_pos[conn]
                        c_cnt[pos] -= 1
                        c_deps[pos] += 1
                        in_sys[g] -= 1
                        # forward (payload: handoff or sink)
                        h = p_hop[pid] + 1
                        t = now + c_lat
                        if h < path_len[conn]:
                            heappush(heap, (t, seq, -1, _HANDOFF, pid, h))
                            seq += 1
                        elif t <= t_end:
                            # Eager delivery: a sink only touches its
                            # connection's end-to-end counters, so it
                            # commutes with every other event — process
                            # it here (same timestamp arithmetic, same
                            # per-connection accumulation order) and
                            # skip the heap round-trip entirely.
                            e2e_delivered[conn] += 1
                            e2e_delay[conn] += t - p_created[pid]
                            p_free.append(pid)
                            processed += 1
                        else:
                            heappush(heap, (t, seq, -1, _SINK, pid))
                            seq += 1
                        # next in FIFO order
                        if not c_q:
                            serving[g] = -1
                            break
                        nxt = c_q.popleft()
                        serving[g] = nxt
                        t_next = now + p_rem[nxt]
                        # burst: absorb the next completion without
                        # heap traffic when it strictly precedes every
                        # pending event.
                        if t_next <= t_end and processed < max_events:
                            if not heap or t_next < heap[0][0]:
                                now = t_next
                                processed += 1
                                continue
                        heappush(heap, (t_next, seq, -1, _COMPLETE, g))
                        seq += 1
                        break

                elif kind == _HANDOFF:
                    now = time
                    processed += 1
                    pid = a
                    conn = p_conn[pid]
                    b = entry[5]
                    p_hop[pid] = b
                    g = paths[conn][b]
                    if g != cg:
                        cg = g
                        c_q = queues[g]
                        c_lat = latency[g]
                        c_cnt = st_count[g]
                        c_integ = st_integral[g]
                        c_deps = st_departures[g]
                        c_arrs = st_arrivals[g]
                        c_drops = st_drops[g]
                        c_pos = pos_flat[g]
                        c_svc = svc_buf[g]
                        c_mu = mu_scale[g]
                        c_cap = buffer_cap[g]
                    # --- arrive at g (inlined, same as EMIT's) ---
                    if in_sys[g] >= c_cap:
                        dt = now - st_last[g]
                        if dt > 0.0:
                            for j, c in enumerate(c_cnt):
                                if c:
                                    c_integ[j] += c * dt
                            st_last[g] = now
                        c_drops[c_pos[conn]] += 1
                        p_free.append(pid)
                    else:
                        i = c_svc._index
                        vals = c_svc._values
                        if i >= c_svc._block:
                            c_svc._refill("exponential")
                            vals = c_svc._values
                            i = 0
                        c_svc._index = i + 1
                        p_rem[pid] = c_mu * vals[i]
                        dt = now - st_last[g]
                        if dt > 0.0:
                            if in_sys[g]:  # all counts zero when empty
                                for j, c in enumerate(c_cnt):
                                    if c:
                                        c_integ[j] += c * dt
                            st_last[g] = now
                        pos = c_pos[conn]
                        c_cnt[pos] += 1
                        c_arrs[pos] += 1
                        in_sys[g] += 1
                        if serving[g] < 0:
                            serving[g] = pid
                            heappush(heap, (now + p_rem[pid], seq, -1,
                                            _COMPLETE, g))
                            seq += 1
                        else:
                            c_q.append(pid)

                else:  # _SINK
                    now = time
                    processed += 1
                    pid = a
                    conn = p_conn[pid]
                    e2e_delivered[conn] += 1
                    e2e_delay[conn] += now - p_created[pid]
                    p_free.append(pid)

                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events before t={t_end}; "
                        f"runaway simulation?")
        finally:
            self.now = now
            self.events_processed += processed
            cal._seq = seq
