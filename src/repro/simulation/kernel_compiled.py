"""Compiled FIFO engine: ``NetworkSimulation(engine="compiled")``.

:class:`CompiledFifoEngine` is a :class:`~repro.simulation.kernel.
FastEngine` whose ``_run_fifo`` executes inside the runtime-compiled C
library from :mod:`repro.backends._cext` instead of the Python
bytecode loop.  Everything else — construction, rate pushes, the
general (class-discipline) loop, the measurement surface — is
inherited unchanged, and when the C library is unavailable (no
compiler, failed build) every call falls back to the inherited Python
loop, so ``engine="compiled"`` degrades gracefully to ``engine="fast"``
behaviour with identical results.

Bit-identity is by construction, not accident:

* the C loop is a statement-for-statement transcription of
  ``_run_fifo`` (same drop-before-draw order, same statistics
  accumulation order, same eager-sink and burst-absorption branches),
  compiled with FMA contraction disabled;
* heap entries are ordered by the unique key ``(time, seq)``, so any
  valid binary min-heap — python's ``heapq`` array or the C one —
  pops the identical event sequence, and the array handed back is a
  valid ``heapq`` heap for the next Python-side push;
* random variates never cross the language boundary as state: the C
  loop consumes the pre-drawn :class:`~repro.simulation.rng.
  VariateBuffer` blocks and *yields back to Python* before any event
  whose draws would exhaust a block, so the generator objects (and
  hence the exact bitstream, shared with the legacy and fast engines)
  advance only via the normal ``_refill`` path.

The marshal cost is O(state size) per ``run_until`` call — amortised
over the thousands-to-millions of events a call processes.
"""

from __future__ import annotations

import numpy as np

from ..backends import _cext, compiled
from ..errors import SimulationError
from .kernel import _EMIT, _HANDOFF, FastEngine

__all__ = ["CompiledFifoEngine"]


class CompiledFifoEngine(FastEngine):
    """FastEngine with the FIFO hot loop in compiled C."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Times a ``_run_fifo`` call fell back to the Python loop.
        self.fifo_fallbacks = 0
        # Resolve (and if necessary build) the library once up front
        # so compile time lands in construction, not the first run.
        self._lib = compiled.fifo_lib()
        compiled.warmup()

    # -- the compiled hot loop -----------------------------------------
    def _run_fifo(self, t_end: float, max_events: int) -> None:
        lib = self._lib
        bufs = self.svc_buf + self.arr_buf
        block = bufs[0]._block if bufs else 0
        if (lib is None or block <= 0
                or any(b._block != block or len(b._values) != block
                       for b in bufs)):
            self.fifo_fallbacks += 1
            return super()._run_fifo(t_end, max_events)

        i8, f8 = np.int64, np.float64
        n_gw = len(self.gw_names)
        n = self.n_conn
        pool = self.pool
        cal = self.calendar

        # ---- fixed-size state: numpy buffers the C loop mutates ----
        latency = np.asarray(self.latency, f8)
        mu_scale = np.asarray(self.mu_scale, f8)
        buffer_cap = np.asarray(self.buffer_cap, i8)
        pos_flat = np.asarray(self.local_pos_flat, i8).reshape(-1)
        first_hop = np.asarray(self.first_hop, i8)
        gw_ptr = np.zeros(n_gw + 1, i8)
        gw_ptr[1:] = np.cumsum([len(lc) for lc in self.local_conns])
        path_ptr = np.zeros(n + 1, i8)
        path_ptr[1:] = np.cumsum(self.path_len)
        path_arr = np.asarray(
            [g for p in self.paths for g in p], i8)
        serving = np.asarray(self.serving, i8)
        in_sys = np.asarray(self.in_system_count, i8)
        arr_epoch = np.asarray(self.arr_epoch, i8)
        st_last = np.asarray(self.st_last, f8)
        st_integral = np.asarray(
            [x for row in self.st_integral for x in row], f8)
        st_count = np.asarray(
            [x for row in self.st_count for x in row], i8)
        st_arrivals = np.asarray(
            [x for row in self.st_arrivals for x in row], i8)
        st_departures = np.asarray(
            [x for row in self.st_departures for x in row], i8)
        st_drops = np.asarray(
            [x for row in self.st_drops for x in row], i8)
        e2e_delivered = np.asarray(self.e2e_delivered, i8)
        e2e_delay = np.asarray(self.e2e_delay, f8)
        scale = np.asarray(self.scale, f8)

        # ---- queues as intrusive chains over packet ids ----
        pool_len = len(pool.conn)
        q_head = np.full(n_gw, -1, i8)
        q_tail = np.full(n_gw, -1, i8)
        q_next = np.full(max(pool_len, 1), -1, i8)
        for g, dq in enumerate(self.queues):
            prev = -1
            for pid in dq:
                if prev < 0:
                    q_head[g] = pid
                else:
                    q_next[prev] = pid
                prev = pid
            q_tail[g] = prev

        # ---- RNG blocks (values only; generators stay in Python) ----
        rng_vals = np.empty((len(bufs), block), f8)
        rng_idx = np.empty(len(bufs), i8)
        for s_i, buf in enumerate(bufs):
            rng_vals[s_i, :] = buf._values
            rng_idx[s_i] = buf._index

        # ---- event heap and packet pool, column form ----
        hp = cal._heap
        hl = len(hp)
        h_time = np.empty(hl, f8)
        h_seq = np.empty(hl, i8)
        h_kind = np.empty(hl, i8)
        h_a = np.empty(hl, i8)
        h_b = np.empty(hl, i8)
        for j, e in enumerate(hp):
            h_time[j] = e[0]
            h_seq[j] = e[1]
            h_kind[j] = e[3]
            h_a[j] = e[4]
            h_b[j] = e[5] if len(e) > 5 else -1
        p_conn = np.asarray(pool.conn, i8)
        p_created = np.asarray(pool.created, f8)
        p_hop = np.asarray(pool.hop, i8)
        p_rem = np.asarray(pool.remaining, f8)
        p_free = np.asarray(pool._free, i8)

        handle = lib.fifo_enter(
            n_gw, n, block, float(t_end), int(max_events),
            float(self.now), int(cal._seq),
            latency.ctypes.data, mu_scale.ctypes.data,
            buffer_cap.ctypes.data,
            pos_flat.ctypes.data, first_hop.ctypes.data,
            gw_ptr.ctypes.data, path_ptr.ctypes.data,
            path_arr.ctypes.data,
            serving.ctypes.data, in_sys.ctypes.data,
            arr_epoch.ctypes.data,
            st_last.ctypes.data, st_integral.ctypes.data,
            st_count.ctypes.data, st_arrivals.ctypes.data,
            st_departures.ctypes.data, st_drops.ctypes.data,
            e2e_delivered.ctypes.data, e2e_delay.ctypes.data,
            q_head.ctypes.data, q_tail.ctypes.data,
            q_next.ctypes.data,
            scale.ctypes.data, rng_vals.ctypes.data,
            rng_idx.ctypes.data,
            h_time.ctypes.data, h_seq.ctypes.data,
            h_kind.ctypes.data, h_a.ctypes.data, h_b.ctypes.data, hl,
            p_conn.ctypes.data, p_created.ctypes.data,
            p_hop.ctypes.data, p_rem.ctypes.data, pool_len,
            p_free.ctypes.data, len(pool._free))
        if not handle:
            self.fifo_fallbacks += 1
            return super()._run_fifo(t_end, max_events)

        try:
            with compiled.metrics().timer("run.fifo").time():
                status = lib.fifo_run(handle)
                while status == _cext.ST_REFILL:
                    s_i = int(lib.fifo_need_stream(handle))
                    buf = bufs[s_i]
                    buf._refill("exponential")
                    rng_vals[s_i, :] = buf._values
                    rng_idx[s_i] = 0
                    status = lib.fifo_run(handle)

            # ---- sync back (the `finally` contract of _run_fifo) ----
            self.now = float(lib.fifo_now(handle))
            self.events_processed += int(lib.fifo_processed(handle))
            cal._seq = int(lib.fifo_seq(handle))
            self.serving[:] = serving.tolist()
            self.in_system_count[:] = in_sys.tolist()
            self.st_last[:] = st_last.tolist()
            for g in range(n_gw):
                s0, s1 = int(gw_ptr[g]), int(gw_ptr[g + 1])
                self.st_count[g][:] = st_count[s0:s1].tolist()
                self.st_integral[g][:] = st_integral[s0:s1].tolist()
                self.st_arrivals[g][:] = st_arrivals[s0:s1].tolist()
                self.st_departures[g][:] = \
                    st_departures[s0:s1].tolist()
                self.st_drops[g][:] = st_drops[s0:s1].tolist()
            self.e2e_delivered[:] = e2e_delivered.tolist()
            self.e2e_delay[:] = e2e_delay.tolist()
            for s_i, buf in enumerate(bufs):
                buf._index = int(rng_idx[s_i])

            hl2 = int(lib.fifo_heap_len(handle))
            pl2 = int(lib.fifo_pool_len(handle))
            fl2 = int(lib.fifo_free_len(handle))
            ht2 = np.empty(hl2, f8)
            hs2 = np.empty(hl2, i8)
            hk2 = np.empty(hl2, i8)
            ha2 = np.empty(hl2, i8)
            hb2 = np.empty(hl2, i8)
            pc2 = np.empty(pl2, i8)
            pcr2 = np.empty(pl2, f8)
            php2 = np.empty(pl2, i8)
            prm2 = np.empty(pl2, f8)
            pf2 = np.empty(fl2, i8)
            qn2 = np.empty(pl2, i8)
            lib.fifo_extract(
                handle, ht2.ctypes.data, hs2.ctypes.data,
                hk2.ctypes.data, ha2.ctypes.data, hb2.ctypes.data,
                pc2.ctypes.data, pcr2.ctypes.data, php2.ctypes.data,
                prm2.ctypes.data, pf2.ctypes.data, qn2.ctypes.data)
            # Heap entries reconstructed by kind: EMIT carries its
            # epoch and HANDOFF its hop (6-tuples); COMPLETE/SINK are
            # 5-tuples.  The C array satisfies the binary-heap
            # invariant, so it is a valid heapq list as-is.
            tl, sl = ht2.tolist(), hs2.tolist()
            kl, al, bl = hk2.tolist(), ha2.tolist(), hb2.tolist()
            new_heap = []
            for j in range(hl2):
                k = kl[j]
                if k == _EMIT or k == _HANDOFF:
                    new_heap.append((tl[j], sl[j], -1, k, al[j],
                                     bl[j]))
                else:
                    new_heap.append((tl[j], sl[j], -1, k, al[j]))
            cal._heap[:] = new_heap
            pool.conn[:] = pc2.tolist()
            pool.created[:] = pcr2.tolist()
            pool.hop[:] = php2.tolist()
            pool.remaining[:] = prm2.tolist()
            if pl2 > len(pool.seq):
                # the hot loop does not maintain the diagnostic
                # seq/klass columns; grown slots get the same zeros
                # the Python loop appends
                pool.seq.extend([0] * (pl2 - len(pool.seq)))
                pool.klass.extend([0] * (pl2 - len(pool.klass)))
            pool._free[:] = pf2.tolist()
            qh2 = q_head.tolist()
            qn_list = qn2.tolist()
            for g, dq in enumerate(self.queues):
                dq.clear()
                pid = qh2[g]
                while pid >= 0:
                    dq.append(pid)
                    pid = qn_list[pid]
        finally:
            lib.fifo_release(handle)

        if status == _cext.ST_MAX_EVENTS:
            raise SimulationError(
                f"exceeded {max_events} events before t={t_end}; "
                f"runaway simulation?")
        if status == _cext.ST_IDLE_SERVER:
            raise SimulationError("completion event with idle server")
        if status == _cext.ST_OOM:
            raise MemoryError("compiled FIFO kernel ran out of memory")
