"""Output analysis for simulation estimates: batch means and CIs.

Time averages from a single long run are autocorrelated, so the naive
sample variance wildly understates the estimator error (the F12-style
comparisons need honest tolerances).  The standard remedy is the
*batch means* method: split the horizon into ``k`` contiguous batches,
treat the batch averages as approximately independent, and build a
Student-t confidence interval from their spread.

:func:`batch_means` works on any per-batch statistic;
:func:`measure_queue_ci` wires it to the network simulator's
per-connection mean-queue measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from ..core.topology import Network
from ..errors import SimulationError
from .network_sim import NetworkSimulation

__all__ = ["BatchMeansEstimate", "batch_means", "measure_queue_ci"]


@dataclass
class BatchMeansEstimate:
    """A point estimate with a batch-means confidence interval."""

    mean: np.ndarray           #: estimate (per component)
    half_width: np.ndarray     #: CI half-width (per component)
    confidence: float          #: e.g. 0.95
    n_batches: int

    @property
    def lower(self) -> np.ndarray:
        return self.mean - self.half_width

    @property
    def upper(self) -> np.ndarray:
        return self.mean + self.half_width

    def contains(self, value: Sequence[float]) -> np.ndarray:
        """Elementwise: does the CI cover ``value``?"""
        v = np.asarray(value, dtype=float)
        return (self.lower <= v) & (v <= self.upper)


def batch_means(batches: Sequence[Sequence[float]],
                confidence: float = 0.95) -> BatchMeansEstimate:
    """Student-t CI from per-batch averages (rows = batches)."""
    arr = np.asarray(batches, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    k = arr.shape[0]
    if k < 2:
        raise SimulationError(
            f"batch means needs at least 2 batches, got {k}")
    if not 0.0 < confidence < 1.0:
        raise SimulationError(
            f"confidence must lie in (0, 1), got {confidence!r}")
    mean = arr.mean(axis=0)
    std_err = arr.std(axis=0, ddof=1) / math.sqrt(k)
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=k - 1))
    return BatchMeansEstimate(mean=mean, half_width=t_crit * std_err,
                              confidence=confidence, n_batches=k)


def measure_queue_ci(network: Network, rates: Sequence[float],
                     discipline_kind: str = "fifo",
                     gateway: str = None,
                     n_batches: int = 10,
                     batch_length: float = 3000.0,
                     warmup: float = 2000.0, seed: int = 0,
                     confidence: float = 0.95) -> BatchMeansEstimate:
    """Per-connection mean queues at one gateway, with a CI.

    Runs one simulation, discards ``warmup``, then records the
    time-average queue vector over ``n_batches`` batches of
    ``batch_length`` each.
    """
    if gateway is None:
        gateway = network.gateway_names[0]
    sim = NetworkSimulation(network, discipline_kind=discipline_kind,
                            seed=seed,
                            initial_rates=np.asarray(rates, dtype=float))
    sim.run_for(warmup)
    batches = []
    for _ in range(n_batches):
        sim.reset_statistics()
        sim.run_for(batch_length)
        batches.append(sim.mean_queue_lengths()[gateway].copy())
    return batch_means(batches, confidence=confidence)
