"""Rate-adjustment algorithms (paper Sections 2.3.2, 3.1 and 4).

At each synchronous step every source applies

    ``r_i <- max(0, r_i + f(r_i, b_i, d_i))``

where ``f`` may use only the source's local state: its current rate, its
bottleneck congestion signal, and its mean round-trip delay.  ``f`` must
never be insensitive to the signal (``df/db != 0``).

Theorem 1 characterises the **time-scale invariant** (TSI) rules: ``f``
vanishes at exactly one signal value ``b_ss``, for *all* rates and
delays.  The module provides the paper's named examples:

* :class:`TargetRule` — ``f = eta (beta - b)``: TSI; the Section 3.3
  instability example (unilateral margin ``|1 - eta|``, systemic
  eigenvalue ``1 - eta N`` at a shared gateway with ``B(C)=C/(C+1)``).
* :class:`ProportionalTargetRule` — ``f = eta r (beta - b)``: TSI and
  *guaranteed unilaterally stable* for ``eta < 2`` with
  ``B(C)=C/(C+1)``.
* :class:`DecbitWindowRule` — ``f = (1-b) eta / d - beta b r``: the
  window-interpreted linear-increase multiplicative-decrease rule of the
  original DECbit/Jacobson schemes; neither TSI nor fair (latency
  sensitivity through ``d``).
* :class:`DecbitRateRule` — ``f = (1-b) eta - beta b r``: the rate
  reinterpretation; guaranteed fair (steady rate
  ``eta (1-b)/(beta b)`` is the same for all sharers) but not TSI.
* :class:`BinaryAimdRule` — Chiu–Jain style additive-increase
  multiplicative-decrease driven by a thresholded (binary) signal; never
  admits ``f = 0``, so its asymptotics are a limit cycle, not a steady
  state (why the paper's steady-state analysis excludes it).
* :class:`TcpLikeRule` — the window-interpreted AIMD of Andrews and
  Slivkins (arXiv:0812.1321): one packet per round trip of additive
  increase (``increase / d``) below the congestion threshold, a
  multiplicative cut above it.  Like :class:`BinaryAimdRule` it never
  admits ``f = 0`` (perpetual sawtooth), and the ``1/d`` factor makes it
  latency-biased.
* :class:`RcpSourceRule` — the degenerate source half of RCP: sources do
  not self-adjust at all (``f = 0``); the network's per-gateway
  controller (:mod:`repro.core.rcp`) sets their rates explicitly.  Only
  valid inside a controlled :class:`~repro.core.dynamics.FlowControlSystem`.

:func:`verify_tsi` checks Theorem 1's condition numerically for *any*
rule, and :func:`tsi_target` extracts the unique ``b_ss``.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import optimize

from ..errors import NotTimeScaleInvariantError, RateVectorError

__all__ = [
    "RateAdjustment",
    "TargetRule",
    "ProportionalTargetRule",
    "DecbitWindowRule",
    "DecbitRateRule",
    "BinaryAimdRule",
    "TcpLikeRule",
    "RcpSourceRule",
    "verify_tsi",
    "tsi_target",
]


class RateAdjustment(abc.ABC):
    """A source's local update rule ``f(r, b, d)``."""

    name: str = "abstract"

    #: The rule's declared steady-state signal, or ``None`` when the rule
    #: is (or claims to be) not time-scale invariant.  :func:`verify_tsi`
    #: validates the claim numerically.
    declared_target: Optional[float] = None

    @abc.abstractmethod
    def delta(self, rate: float, signal: float, delay: float) -> float:
        """The adjustment ``f(r_i, b_i, d_i)`` (may be negative)."""

    def apply(self, rate: float, signal: float, delay: float) -> float:
        """One truncated update ``max(0, r + f(r, b, d))``."""
        return max(0.0, rate + self.delta(rate, signal, delay))

    def delta_batch(self, rates: np.ndarray, signals: np.ndarray,
                    delays: np.ndarray, xp=None) -> np.ndarray:
        """Elementwise ``f`` over same-shaped arrays of ``(r, b, d)``.

        The base implementation loops over :meth:`delta`, so any custom
        rule is batch-capable out of the box; the built-in rules
        override it with vectorised arithmetic.  Inputs broadcast
        against each other exactly like the vectorised overrides (a
        scalar delay against an ``(N,)`` rate vector is fine).

        ``xp`` selects the array namespace (numpy when ``None``);
        callers forward it only for non-numpy backends, so custom
        rules without the parameter keep working on the default path.
        """
        xp = np if xp is None else xp
        r, b, d = xp.broadcast_arrays(xp.asarray(rates, dtype=float),
                                      xp.asarray(signals, dtype=float),
                                      xp.asarray(delays, dtype=float))
        out = xp.empty(r.shape, dtype=float)
        flat_r, flat_b, flat_d = r.ravel(), b.ravel(), d.ravel()
        flat_out = out.ravel()
        for k in range(flat_r.size):
            flat_out[k] = self.delta(float(flat_r[k]), float(flat_b[k]),
                                     float(flat_d[k]))
        return out

    def apply_batch(self, rates: np.ndarray, signals: np.ndarray,
                    delays: np.ndarray, xp=None) -> np.ndarray:
        """Elementwise truncated update ``max(0, r + f(r, b, d))``."""
        xp = np if xp is None else xp
        kw = {} if xp is np else {"xp": xp}
        r = xp.asarray(rates, dtype=float)
        return xp.maximum(0.0, r + self.delta_batch(r, signals, delays,
                                                    **kw))

    def __repr__(self):
        return f"{type(self).__name__}()"


def _positive(value: float, what: str) -> float:
    v = float(value)
    if not (math.isfinite(v) and v > 0):
        raise RateVectorError(f"{what} must be finite and positive, "
                              f"got {value!r}")
    return v


def _signal_in_open_interval(value: float, what: str) -> float:
    v = float(value)
    if not (0.0 < v < 1.0):
        raise RateVectorError(f"{what} must lie strictly in (0, 1), "
                              f"got {value!r}")
    return v


class TargetRule(RateAdjustment):
    """``f = eta (beta - b)``: drive the signal to the target ``beta``."""

    name = "target"

    def __init__(self, eta: float = 0.1, beta: float = 0.5):
        self.eta = _positive(eta, "gain eta")
        self.beta = _signal_in_open_interval(beta, "target beta")
        self.declared_target = self.beta

    def delta(self, rate, signal, delay):
        return self.eta * (self.beta - signal)

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        b = xp.asarray(signals, dtype=float)
        return self.eta * (self.beta - b)

    def __repr__(self):
        return f"TargetRule(eta={self.eta}, beta={self.beta})"


class ProportionalTargetRule(RateAdjustment):
    """``f = eta r (beta - b)``: multiplicative pressure toward ``beta``.

    With ``B(C) = C/(C+1)`` this rule is guaranteed unilaterally stable
    whenever ``eta < 2`` (the diagonal of ``DF`` is ``1 - eta rho_i`` at
    a single shared gateway).  Note ``r = 0`` is an absorbing state —
    trajectories must start strictly positive.
    """

    name = "proportional-target"

    def __init__(self, eta: float = 0.5, beta: float = 0.5):
        self.eta = _positive(eta, "gain eta")
        self.beta = _signal_in_open_interval(beta, "target beta")
        self.declared_target = self.beta

    def delta(self, rate, signal, delay):
        return self.eta * rate * (self.beta - signal)

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        return self.eta * r * (self.beta - b)

    def __repr__(self):
        return f"ProportionalTargetRule(eta={self.eta}, beta={self.beta})"


class DecbitWindowRule(RateAdjustment):
    """``f = (1 - b) eta / d - beta b r`` (window LIMD, paper Section 4).

    The ``1/d`` factor models a per-round-trip window increase expressed
    as a rate: longer paths open their window more slowly, which is the
    source of the latency unfairness the paper calls out.
    """

    name = "decbit-window"

    def __init__(self, eta: float = 0.05, beta: float = 0.5):
        self.eta = _positive(eta, "additive gain eta")
        self.beta = _positive(beta, "multiplicative gain beta")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        if delay <= 0:
            raise RateVectorError(f"delay must be positive, got {delay!r}")
        if math.isinf(delay):
            return -self.beta * signal * rate
        return (1.0 - signal) * self.eta / delay - self.beta * signal * rate

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        d = xp.asarray(delays, dtype=float)
        if xp.any(d <= 0):
            raise RateVectorError("delays must be positive")
        decrease = self.beta * b * r
        with np.errstate(invalid="ignore"):
            increase = (1.0 - b) * self.eta / d
        return xp.where(xp.isinf(d), -decrease, increase - decrease)

    def __repr__(self):
        return f"DecbitWindowRule(eta={self.eta}, beta={self.beta})"


class DecbitRateRule(RateAdjustment):
    """``f = (1 - b) eta - beta b r`` (rate LIMD, paper Sections 3.2, 4).

    Guaranteed fair — at steady state ``r = eta (1 - b)/(beta b)`` is the
    same for every connection sharing a bottleneck — but not TSI: the
    steady rate does not scale with the line speed.
    """

    name = "decbit-rate"

    def __init__(self, eta: float = 0.05, beta: float = 0.5):
        self.eta = _positive(eta, "additive gain eta")
        self.beta = _positive(beta, "multiplicative gain beta")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        return (1.0 - signal) * self.eta - self.beta * signal * rate

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        return (1.0 - b) * self.eta - self.beta * b * r

    def steady_rate(self, signal: float) -> float:
        """The rate at which ``f = 0`` for a fixed signal ``b > 0``."""
        if signal <= 0:
            return math.inf
        return self.eta * (1.0 - signal) / (self.beta * signal)

    def __repr__(self):
        return f"DecbitRateRule(eta={self.eta}, beta={self.beta})"


class BinaryAimdRule(RateAdjustment):
    """Chiu–Jain AIMD on a thresholded signal.

    ``f = +increase`` when ``b < threshold`` (no congestion indicated)
    and ``f = -decrease * r`` otherwise.  ``f`` never vanishes, so there
    is no steady state; the long-run behaviour is a sawtooth oscillation
    whose *average* is fair — matching the paper's remarks on [Chi89].
    """

    name = "binary-aimd"

    def __init__(self, increase: float = 0.01, decrease: float = 0.125,
                 threshold: float = 0.5):
        self.increase = _positive(increase, "additive increase")
        if not (0.0 < decrease < 1.0):
            raise RateVectorError(
                f"multiplicative decrease must lie in (0, 1), "
                f"got {decrease!r}")
        self.decrease = float(decrease)
        self.threshold = _signal_in_open_interval(threshold, "threshold")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        if signal < self.threshold:
            return self.increase
        return -self.decrease * rate

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        return xp.where(b < self.threshold, self.increase,
                        -self.decrease * r)

    def __repr__(self):
        return (f"BinaryAimdRule(increase={self.increase}, "
                f"decrease={self.decrease}, threshold={self.threshold})")


class TcpLikeRule(RateAdjustment):
    """TCP-like AIMD (Andrews–Slivkins, arXiv:0812.1321).

    ``f = increase / d`` when ``b < threshold`` (one window's worth of
    additive increase per round trip, expressed as a rate) and
    ``f = -decrease * r`` otherwise.  Like :class:`BinaryAimdRule` the
    adjustment never vanishes, so trajectories oscillate forever; unlike
    it, the ``1/d`` increase makes the sawtooth latency-biased — longer
    paths recover more slowly after each cut and settle on a smaller
    time-average share (the TCP RTT-unfairness the paper's Section 4
    rules exhibit in window form).
    """

    name = "tcp-like"

    def __init__(self, increase: float = 0.05, decrease: float = 0.125,
                 threshold: float = 0.5):
        self.increase = _positive(increase, "additive increase")
        if not (0.0 < decrease < 1.0):
            raise RateVectorError(
                f"multiplicative decrease must lie in (0, 1), "
                f"got {decrease!r}")
        self.decrease = float(decrease)
        self.threshold = _signal_in_open_interval(threshold, "threshold")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        if delay <= 0:
            raise RateVectorError(f"delay must be positive, got {delay!r}")
        if signal < self.threshold:
            return self.increase / delay
        return -self.decrease * rate

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        d = xp.asarray(delays, dtype=float)
        if xp.any(d <= 0):
            raise RateVectorError("delays must be positive")
        # increase / inf == 0.0 exactly, matching the scalar path.
        return xp.where(b < self.threshold, self.increase / d,
                        -self.decrease * r)

    def __repr__(self):
        return (f"TcpLikeRule(increase={self.increase}, "
                f"decrease={self.decrease}, threshold={self.threshold})")


class RcpSourceRule(RateAdjustment):
    """The source half of RCP: no local adjustment at all.

    RCP sources simply adopt the smallest advertised rate along their
    path each round trip; all of the control law lives in the gateways
    (:class:`repro.core.rcp.RcpController`).  ``f = 0`` keeps the rule
    interface satisfied for bookkeeping (grouping, serialisation), and
    :class:`~repro.core.dynamics.FlowControlSystem` refuses to run this
    rule without a controller attached.
    """

    name = "rcp-source"

    def __init__(self):
        self.declared_target = None

    def delta(self, rate, signal, delay):
        return 0.0

    def delta_batch(self, rates, signals, delays, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        b = xp.asarray(signals, dtype=float)
        return xp.zeros(np.broadcast(r, b).shape, dtype=float)

    def __repr__(self):
        return "RcpSourceRule()"


# ----------------------------------------------------------------------
# Theorem 1: the TSI test
# ----------------------------------------------------------------------
def _signal_roots(rule: RateAdjustment, rate: float, delay: float,
                  grid: np.ndarray, tol: float) -> list:
    """Zeros of ``b -> f(rate, b, delay)`` on (0, 1), by bracketing.

    Sign changes are confirmed by checking ``|f|`` at the candidate:
    at a jump discontinuity (AIMD-style thresholds) brentq still
    converges — to the jump location, where ``f`` does *not* vanish —
    and reporting that point as a root misclassifies oscillating rules
    as TSI.  The residual test rejects those pseudo-roots.
    """
    values = np.array([rule.delta(rate, b, delay) for b in grid])
    residual_cap = 1e-6 * (1.0 + float(np.max(np.abs(values))))
    roots = []
    for k in range(grid.size - 1):
        lo, hi = values[k], values[k + 1]
        if lo == 0.0:
            roots.append(float(grid[k]))
        elif lo * hi < 0:
            root = optimize.brentq(
                lambda b: rule.delta(rate, b, delay), grid[k], grid[k + 1],
                xtol=tol)
            if abs(rule.delta(rate, float(root), delay)) <= residual_cap:
                roots.append(float(root))
    if values[-1] == 0.0:
        roots.append(float(grid[-1]))
    merged = []
    for root in sorted(roots):
        if not merged or root - merged[-1] > 10 * tol:
            merged.append(root)
    return merged


def verify_tsi(rule: RateAdjustment,
               rates: Sequence[float] = (0.01, 0.5, 1.0, 10.0, 250.0),
               delays: Sequence[float] = (0.05, 1.0, 30.0),
               grid_points: int = 4001, tol: float = 1e-10) -> Optional[float]:
    """Numerically test Theorem 1's TSI condition.

    Returns the unique steady-state signal ``b_ss`` when the rule is TSI
    on the sampled (rate, delay) lattice, or ``None`` otherwise.  The
    check requires every sampled ``(r, d)`` to induce the *same single*
    zero of ``b -> f(r, b, d)`` in (0, 1).
    """
    grid = np.linspace(1e-9, 1.0 - 1e-9, grid_points)
    target = None
    for r in rates:
        for d in delays:
            roots = _signal_roots(rule, float(r), float(d), grid, tol)
            if len(roots) != 1:
                return None
            if target is None:
                target = roots[0]
            elif abs(roots[0] - target) > 1e-6:
                return None
    return target


def tsi_target(rule: RateAdjustment, **kwargs) -> float:
    """The unique ``b_ss`` of a TSI rule; raises if the rule is not TSI.

    A ``declared_target`` is a *claim*, not a certificate: the declared
    value is validated against :func:`verify_tsi` and a mislabelled rule
    (wrong target, or not TSI at all) raises
    :class:`~repro.errors.NotTimeScaleInvariantError` instead of being
    silently trusted.  Validation passed, the exact declared value is
    returned (it is typically analytic where the measurement is not).
    """
    target = verify_tsi(rule, **kwargs)
    if target is None:
        if rule.declared_target is not None:
            raise NotTimeScaleInvariantError(
                f"rule {rule!r} declares target "
                f"{rule.declared_target!r} but is not time-scale "
                f"invariant")
        raise NotTimeScaleInvariantError(
            f"rule {rule!r} is not time-scale invariant")
    if rule.declared_target is not None:
        declared = float(rule.declared_target)
        if abs(declared - target) > 1e-4:
            raise NotTimeScaleInvariantError(
                f"rule {rule!r} declares target {declared!r} but its "
                f"measured steady-state signal is {target!r}")
        return declared
    return target
