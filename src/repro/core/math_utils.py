"""Small numerical helpers shared across the analytic model.

The central object is the M/M/1 occupancy function ``g(x) = x / (1 - x)``,
which gives the mean number of packets in the system of an exponential
server at utilisation ``x``.  The paper (Section 2.2) uses ``g`` both for
the total-queue conservation law of nonstalling service disciplines and
inside the Fair Share recursion.

All helpers here accept scalars or numpy arrays, treat utilisations at or
above 1 as *overload* (returning ``inf`` rather than raising), and never
return negative queue lengths from floating-point jitter.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import RateVectorError

__all__ = [
    "g",
    "g_inverse",
    "as_rate_vector",
    "as_rate_matrix",
    "validate_rates",
    "sorted_order",
    "inverse_permutation",
    "relative_error",
    "sup_norm",
    "is_close_vector",
    "clip_nonnegative",
    "SPARSE_MIN_N",
    "pick_kernel",
]

#: Problem size at which the scale-oriented kernels take over from the
#: small-N reference paths: O(n log n) sorted formulations replace the
#: O(n^2) broadcast kernels, and scalar entry points delegate to their
#: batched counterparts.  Below this size every code path is exactly the
#: historical (pre-sparse) implementation, bit for bit.
SPARSE_MIN_N = 64


def pick_kernel(method: str, n: int, large: str = "sorted") -> str:
    """Resolve a kernel ``method`` argument to ``"dense"``, ``large``,
    or ``"compiled"``.

    ``"auto"`` switches to the scale kernel (named ``large`` — e.g.
    ``"sorted"`` or ``"sparse"``) at ``n >= SPARSE_MIN_N`` and stays on
    the dense reference path below; passing the kernel name explicitly
    forces it, which is how the equivalence tests compare the two.

    The compiled tier rides the same switch: when the active
    :mod:`repro.backends` backend carries live compiled Fair Share
    kernels, ``"auto"`` resolves to ``"compiled"`` exactly where it
    would have resolved to ``"sorted"`` (the compiled kernels are loop
    twins of the *sorted* formulation, proven bit-identical, so the
    boundary semantics at ``SPARSE_MIN_N`` are unchanged).  Passing
    ``method="compiled"`` forces it at any ``n`` on sorted-capable
    paths; on ``large="sparse"`` paths (which have no compiled twin)
    it resolves to the sparse kernel instead.
    """
    if method == "auto":
        if n < SPARSE_MIN_N:
            return "dense"
        if large == "sorted":
            from .. import backends
            if backends.fs_kernels_active():
                return "compiled"
        return large
    if method == "compiled":
        return "compiled" if large == "sorted" else large
    if method not in ("dense", large):
        raise RateVectorError(
            f"method must be 'auto', 'dense', 'compiled', or "
            f"{large!r}, got {method!r}")
    return method


def g(x):
    """M/M/1 mean system occupancy ``g(x) = x / (1 - x)``.

    ``x`` is the server utilisation.  For ``x >= 1`` (overload) the queue
    has no steady state, which we encode as ``inf``.  Negative inputs are
    rejected: a utilisation cannot be negative.

    Accepts scalars or numpy arrays and vectorises elementwise.
    """
    arr = np.asarray(x, dtype=float)
    if np.any(arr < 0):
        raise RateVectorError(f"utilisation must be nonnegative, got {x!r}")
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(arr < 1.0, arr / (1.0 - arr), math.inf)
    if np.ndim(x) == 0:
        return float(out)
    return out


def g_inverse(q):
    """Inverse of :func:`g`: the utilisation producing mean occupancy ``q``.

    ``g_inverse(q) = q / (1 + q)``; ``g_inverse(inf) = 1.0``.
    """
    arr = np.asarray(q, dtype=float)
    if np.any(arr < 0):
        raise RateVectorError(f"occupancy must be nonnegative, got {q!r}")
    with np.errstate(invalid="ignore"):
        out = np.where(np.isinf(arr), 1.0, arr / (1.0 + arr))
    if np.ndim(q) == 0:
        return float(out)
    return out


def as_rate_vector(rates: Iterable[float], n: int = None) -> np.ndarray:
    """Coerce ``rates`` to a float numpy vector and validate it.

    Rates must be finite and nonnegative.  If ``n`` is given the length
    must match.  Returns a fresh array (never a view of the input).
    """
    vec = np.array(list(rates) if not isinstance(rates, np.ndarray) else rates,
                   dtype=float)
    if vec.ndim != 1:
        raise RateVectorError(f"rate vector must be 1-D, got shape {vec.shape}")
    if n is not None and vec.shape[0] != n:
        raise RateVectorError(
            f"rate vector has length {vec.shape[0]}, expected {n}")
    validate_rates(vec)
    return vec.copy()


def as_rate_matrix(rates: Iterable[float], n: int = None) -> np.ndarray:
    """Coerce ``rates`` to an ``(M, n)`` float batch of rate vectors.

    Accepts a single 1-D rate vector (promoted to a one-row batch) or a
    2-D array whose rows are rate vectors.  Rates must be finite and
    nonnegative; if ``n`` is given the row length must match.  Returns a
    fresh C-contiguous array (never a view of the input).
    """
    mat = np.array(rates, dtype=float, copy=True, order="C")
    if mat.ndim == 1:
        mat = mat[None, :]
    if mat.ndim != 2:
        raise RateVectorError(
            f"rate batch must be 1-D or 2-D, got shape {mat.shape}")
    if n is not None and mat.shape[1] != n:
        raise RateVectorError(
            f"rate batch has row length {mat.shape[1]}, expected {n}")
    validate_rates(mat)
    return mat


def validate_rates(vec: np.ndarray) -> None:
    """Raise :class:`RateVectorError` unless all rates are finite and >= 0."""
    if not np.all(np.isfinite(vec)):
        raise RateVectorError("rates must be finite")
    if np.any(vec < 0):
        raise RateVectorError("rates must be nonnegative")


def sorted_order(values: Sequence[float]) -> np.ndarray:
    """Indices that sort ``values`` increasingly (stable sort).

    Stability matters for the Fair Share recursion: ties in rates must be
    broken deterministically so the permutation round-trips.
    """
    return np.argsort(np.asarray(values, dtype=float), kind="stable")


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation given as an index array."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0])
    return inv


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / max(|expected|, tiny); 0 if both are 0."""
    if expected == 0.0 and measured == 0.0:
        return 0.0
    denom = max(abs(expected), 1e-300)
    return abs(measured - expected) / denom


def sup_norm(a, b) -> float:
    """Supremum-norm distance between two vectors."""
    av = np.asarray(a, dtype=float)
    bv = np.asarray(b, dtype=float)
    if av.shape != bv.shape:
        raise RateVectorError(
            f"shape mismatch in sup_norm: {av.shape} vs {bv.shape}")
    if av.size == 0:
        return 0.0
    return float(np.max(np.abs(av - bv)))


def is_close_vector(a, b, atol: float = 1e-9, rtol: float = 1e-9) -> bool:
    """Elementwise closeness of two vectors (shape-checked)."""
    av = np.asarray(a, dtype=float)
    bv = np.asarray(b, dtype=float)
    if av.shape != bv.shape:
        return False
    return bool(np.allclose(av, bv, atol=atol, rtol=rtol))


def clip_nonnegative(vec: np.ndarray, xp=None) -> np.ndarray:
    """Truncate negative entries to zero (the paper's rate truncation).

    ``xp`` selects the array namespace (numpy when ``None``).
    """
    xp = np if xp is None else xp
    return xp.maximum(xp.asarray(vec, dtype=float), 0.0)


def pairs(seq: Sequence) -> Iterable[Tuple]:
    """All unordered pairs of a sequence, in index order."""
    items = list(seq)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            yield items[i], items[j]
