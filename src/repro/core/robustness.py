"""Robustness in the presence of heterogeneity (Sections 2.4.4, 3.4).

A feedback flow control algorithm is **robust** when, whatever mix of
rate-adjustment rules the other sources run, every connection still
receives at least the throughput it would get *alone* on a network whose
server rates are divided by the local connection counts:

    ``floor_i = min_{a in gamma(i)}  rho_ss * mu^a / N^a``

— the allocation a reservation-based network would guarantee by carving
the servers into equal shares.

Theorem 5: a TSI individual feedback scheme is robust **iff** its
service discipline satisfies

    ``Q_i(r) <= r_i / (mu - N r_i)``    whenever ``N r_i < mu``.

Fair Share satisfies the bound (its smallest-rate queue meets it with
equality); FIFO violates it as soon as the other connections send faster.
The module provides the floor, the Theorem 5 condition check, outcome
verdicts, and the reservation-delay comparison (the paper's closing
observation that robust individual+FS service beats reservations on
queueing delay by a factor ``>= N^a``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import RateVectorError
from .math_utils import as_rate_matrix, as_rate_vector, g
from .service import ServiceDiscipline
from .topology import Network

__all__ = [
    "reservation_floor",
    "reservation_floor_heterogeneous",
    "theorem5_bound",
    "satisfies_theorem5_condition",
    "theorem5_condition_batch",
    "is_robust_outcome",
    "worst_floor_ratio",
    "reservation_delay",
]


def reservation_floor(network: Network, rho_ss: float) -> np.ndarray:
    """Per-connection guaranteed throughput of the reservation baseline.

    ``floor_i = min over the path of rho_ss * mu^a / N^a`` — the steady
    rate connection ``i`` would reach alone on servers of rate
    ``mu^a / N^a``.
    """
    if not (0.0 < rho_ss < 1.0):
        raise RateVectorError(
            f"steady utilisation must lie in (0, 1), got {rho_ss!r}")
    floor = np.zeros(network.num_connections, dtype=float)
    for i in range(network.num_connections):
        floor[i] = min(rho_ss * network.mu(g) / network.n_at(g)
                       for g in network.gamma(i))
    return floor


def reservation_floor_heterogeneous(network: Network,
                                    rho_ss: Sequence[float]) -> np.ndarray:
    """The robustness floor when connections run *different* rules.

    Each connection's guarantee is computed with its own rule's steady
    utilisation: ``floor_i = min_a rho_ss_i * mu^a / N^a`` (the rate it
    would reach alone on the reduced servers) — the form used in the
    proof of Theorem 5.
    """
    rho = np.asarray(rho_ss, dtype=float)
    if rho.shape != (network.num_connections,):
        raise RateVectorError(
            f"need one rho_ss per connection "
            f"({network.num_connections}), got shape {rho.shape}")
    if np.any(rho <= 0) or np.any(rho >= 1):
        raise RateVectorError("each rho_ss must lie in (0, 1)")
    floor = np.zeros(network.num_connections, dtype=float)
    for i in range(network.num_connections):
        floor[i] = min(rho[i] * network.mu(g) / network.n_at(g)
                       for g in network.gamma(i))
    return floor


def theorem5_bound(rates: Sequence[float], mu: float) -> np.ndarray:
    """The right-hand side ``r_i / (mu - N r_i)`` of Theorem 5's condition.

    Entries with ``N r_i >= mu`` are ``inf`` (the condition is vacuous
    there: no discipline is constrained once the connection's own equal
    share is exhausted).
    """
    r = as_rate_vector(rates)
    n = r.shape[0]
    denom = mu - n * r
    out = np.empty_like(r)
    positive = denom > 0
    out[positive] = r[positive] / denom[positive]
    out[~positive] = math.inf
    return out


def satisfies_theorem5_condition(discipline: ServiceDiscipline,
                                 rates: Sequence[float], mu: float,
                                 tol: float = 1e-9) -> bool:
    """Check ``Q_i(r) <= r_i / (mu - N r_i)`` at one rate vector."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    bound = theorem5_bound(r, mu)
    for qi, bi in zip(q, bound):
        if math.isinf(bi):
            continue
        if math.isinf(qi) or qi > bi + tol * max(1.0, bi):
            return False
    return True


def theorem5_condition_batch(discipline: ServiceDiscipline,
                             rates, mu: float,
                             tol: float = 1e-9) -> np.ndarray:
    """Row-wise :func:`satisfies_theorem5_condition` for a batch.

    ``rates`` is an ``(M, N)`` matrix of rate vectors; the result is a
    boolean array of length ``M`` whose entry ``m`` equals
    ``satisfies_theorem5_condition(discipline, rates[m], mu, tol)``.
    Queue lengths come from the discipline's batched law, so a whole
    Monte-Carlo condition check costs a few array operations.
    """
    r = as_rate_matrix(rates)
    q = discipline.queue_lengths_batch(r, mu)
    n = r.shape[1]
    denom = mu - n * r
    constrained = denom > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        bound = np.where(constrained, r / np.where(constrained, denom, 1.0),
                         math.inf)
    violated = constrained & (~np.isfinite(q)
                              | (q > bound + tol * np.maximum(1.0, bound)))
    return ~np.any(violated, axis=1)


def is_robust_outcome(network: Network, rho_ss: float,
                      rates: Sequence[float],
                      rel_tol: float = 1e-6) -> bool:
    """Did every connection reach its reservation floor?"""
    return worst_floor_ratio(network, rho_ss, rates) >= 1.0 - rel_tol


def worst_floor_ratio(network: Network, rho_ss: float,
                      rates: Sequence[float]) -> float:
    """``min_i  r_i / floor_i`` — 1 or more means a robust outcome.

    The scalar the F9 experiment sweeps: ~1 for Fair Share, strictly
    below 1 for FIFO, and approaching 0 for aggregate feedback.
    """
    r = as_rate_vector(rates, n=network.num_connections)
    floor = reservation_floor(network, rho_ss)
    ratios = r / floor
    return float(np.min(ratios))


def reservation_delay(mu: float, n: int, rate: float) -> float:
    """Mean sojourn at a reserved ``mu / n`` server carrying ``rate``.

    ``1 / (mu / n - rate)`` for a stable M/M/1, ``inf`` otherwise.  At
    the symmetric fair point this is ``N`` times the Fair Share sojourn,
    the factor quoted at the end of Section 3.4.
    """
    if n < 1:
        raise RateVectorError(f"connection count must be >= 1, got {n!r}")
    share = mu / n
    if rate >= share:
        return math.inf
    return 1.0 / (share - rate)
