"""Asynchronous and delayed rate adjustment (the paper's Section 2.5).

The model's synchronous, delay-free iteration is the assumption the
paper itself flags as most suspect: *"the lack of asynchrony in our
model certainly affects the stability results, and we are currently
investigating the extent of this effect."*  This module carries out
that investigation executably:

* **update schedules** — instead of every source updating at every
  step, a schedule picks which subset updates: round-robin (one source
  per step), independent coin flips, or the synchronous all-at-once
  baseline;
* **feedback delay** — sources may react to congestion signals
  computed from the rate vector ``tau`` steps in the past, modelling
  the round-trip that real signals ride on.

Both knobs preserve the *steady states* (a fixed point of the
synchronous map is fixed under any schedule and any delay), but change
the *stability* story, and in opposite directions:

* round-robin (Gauss–Seidel-like) updating relaxes the synchronous
  overshoot: the aggregate example ``DF = I - eta 11^T`` that diverges
  synchronously for ``eta N > 2`` converges sequentially for any
  ``eta < 2`` (each update sees the others' corrections immediately);
* feedback delay destabilises: with signals ``tau`` steps stale, the
  scalar loop gain that keeps ``|1 - eta N|`` stable must shrink
  roughly like ``1 / tau``.

The X1/X2 ablation benchmarks quantify both effects.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import RateVectorError
from .dynamics import FlowControlSystem, Outcome, Trajectory, \
    _detect_period
from .math_utils import as_rate_vector, clip_nonnegative, sup_norm

__all__ = [
    "UpdateSchedule",
    "SynchronousSchedule",
    "RoundRobinSchedule",
    "BernoulliSchedule",
    "AsynchronousRunner",
]


class UpdateSchedule(abc.ABC):
    """Chooses which connections update at each asynchronous step."""

    @abc.abstractmethod
    def participants(self, step: int, n: int) -> np.ndarray:
        """Boolean mask (length ``n``) of connections updating now."""

    def steps_per_sweep(self, n: int) -> int:
        """How many schedule steps give every connection one update on
        average — used to compare budgets fairly across schedules."""
        return 1


class SynchronousSchedule(UpdateSchedule):
    """Everyone updates every step: the paper's baseline."""

    def participants(self, step, n):
        return np.ones(n, dtype=bool)


class RoundRobinSchedule(UpdateSchedule):
    """One connection per step, cyclically (Gauss–Seidel)."""

    def participants(self, step, n):
        mask = np.zeros(n, dtype=bool)
        mask[step % n] = True
        return mask

    def steps_per_sweep(self, n):
        return n


class BernoulliSchedule(UpdateSchedule):
    """Each connection updates independently with probability ``p``.

    Masks are a pure function of ``(seed, step)``: a shared generator
    advancing across calls would make the schedule stateful — reusing
    one schedule object for two runs (or probing a mask out of band)
    would silently change every later trajectory.  Counter-based
    seeding keeps runs bit-identical per seed regardless of call
    history.
    """

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 < p <= 1.0:
            raise RateVectorError(
                f"update probability must lie in (0, 1], got {p!r}")
        self.p = float(p)
        self.seed = int(seed)

    def participants(self, step, n):
        rng = np.random.default_rng([self.seed, int(step)])
        return rng.random(n) < self.p

    def steps_per_sweep(self, n):
        return max(1, int(round(1.0 / self.p)))


class AsynchronousRunner:
    """Run a :class:`FlowControlSystem` under a schedule and delay.

    At step ``t`` the scheduled connections apply their rule to the
    signals and delays computed from the rate vector of step
    ``t - signal_delay`` (0 = the current model); unscheduled
    connections hold their rates.
    """

    def __init__(self, system: FlowControlSystem,
                 schedule: Optional[UpdateSchedule] = None,
                 signal_delay: int = 0):
        if signal_delay < 0:
            raise RateVectorError(
                f"signal delay must be >= 0, got {signal_delay!r}")
        self.system = system
        self.schedule = schedule or SynchronousSchedule()
        self.signal_delay = int(signal_delay)

    def run(self, initial: Sequence[float], max_steps: int = 20000,
            tol: float = 1e-10, settle: Optional[int] = None,
            max_period: int = 64) -> Trajectory:
        """Iterate; convergence requires a full quiet *sweep*.

        ``settle`` defaults to ``2 * steps_per_sweep + signal_delay``
        quiet steps: a round-robin run must stay quiet for whole
        sweeps, and a delayed run must stay quiet longer than the
        delay pipeline (otherwise a stale congestion spike still in
        the buffer could pin the rates just long enough to fake a
        fixed point).
        """
        n = self.system.network.num_connections
        r = as_rate_vector(initial, n=n)
        sweep = self.schedule.steps_per_sweep(n)
        if settle is None:
            settle = 2 * sweep + self.signal_delay + 3
        buffer = deque([r.copy()] * (self.signal_delay + 1),
                       maxlen=self.signal_delay + 1)
        history = [r.copy()]
        quiet = 0
        limit = (FlowControlSystem.DIVERGENCE_FACTOR
                 * max(self.system.network.mu(g)
                       for g in self.system.network.gateway_names))
        for step in range(1, max_steps + 1):
            stale = buffer[0]
            b = self.system.signals(stale)
            d = self.system.delays(stale)
            mask = self.schedule.participants(step - 1, n)
            r_next = r.copy()
            for i in np.nonzero(mask)[0]:
                rule = self.system.rules[i]
                r_next[i] = rule.apply(float(r[i]), float(b[i]),
                                       float(d[i]))
            r_next = clip_nonnegative(r_next)
            history.append(r_next.copy())
            buffer.append(r_next.copy())
            if not np.all(np.isfinite(r_next)) or np.any(r_next > limit):
                return Trajectory(np.array(history), Outcome.DIVERGED,
                                  None, step)
            change = sup_norm(r_next, r)
            scale = max(1.0, float(np.max(r_next)))
            if change <= tol * scale:
                quiet += 1
                if quiet >= settle:
                    return Trajectory(np.array(history),
                                      Outcome.CONVERGED, 1, step)
            else:
                quiet = 0
            r = r_next
        arr = np.array(history)
        period = _detect_period(arr, max_period, tol)
        if period is not None:
            return Trajectory(arr, Outcome.OSCILLATING, period, max_steps)
        return Trajectory(arr, Outcome.UNDECIDED, None, max_steps)

    def is_steady_state(self, rates: Sequence[float],
                        tol: float = 1e-9) -> bool:
        """Fixed points coincide with the synchronous system's."""
        return self.system.is_steady_state(rates, tol=tol)
