"""Asynchronous, delayed, and heterogeneously-clocked rate adjustment.

The model's synchronous, delay-free iteration is the assumption the
paper itself flags as most suspect: *"the lack of asynchrony in our
model certainly affects the stability results, and we are currently
investigating the extent of this effect."*  This module carries out
that investigation executably:

* **update schedules** — instead of every source updating at every
  step, a schedule picks which subset updates: round-robin (one source
  per step), independent coin flips, or the synchronous all-at-once
  baseline;
* **clock models** — a :class:`ClockModel` assigns each source its own
  update rate (uniform, slow/fast mixes, drifting, bursty), turning
  "who updates when" into a measurable heterogeneity dial;
* **feedback delay** — sources may react to congestion signals
  computed from the rate vector ``tau`` steps in the past, modelling
  the round-trip that real signals ride on.

All three knobs preserve the *steady states* (a fixed point of the
synchronous map is fixed under any schedule and any delay — connections
that update confirm the fixed point, connections that hold trivially
keep it), but change the *stability* story, and in opposite directions:

* round-robin (Gauss–Seidel-like) updating relaxes the synchronous
  overshoot: the aggregate example ``DF = I - eta 11^T`` that diverges
  synchronously for ``eta N > 2`` converges sequentially for any
  ``eta < 2`` (each update sees the others' corrections immediately);
* feedback delay destabilises: with signals ``tau`` steps stale, the
  scalar loop gain that keeps ``|1 - eta N|`` stable must shrink
  roughly like ``1 / tau``.

The X1/X2 ablation benchmarks quantify both effects; experiment F14
sweeps the clock-heterogeneity dial.

Determinism contract: every built-in schedule's participation mask is
a **pure function of (seed, step)** — no schedule object carries
mutable stream state — so scalar runs, batched ensembles, and blocked
ensembles all see identical masks regardless of call history.  The
batched engine, :func:`run_async_ensemble`, evolves an ``(M, N)``
ensemble under one schedule (or one schedule per member) with a
delayed-signal ring buffer, and member ``m`` reproduces the scalar
:class:`AsynchronousRunner` path bit-exactly.
"""

from __future__ import annotations

import abc
import math
import time
from collections import deque
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import RateVectorError, SweepError
from ..observability import RunRecord, emit_run_record, is_collecting
from .delays import round_trip_delays_batch
from .dynamics import EnsembleResult, FlowControlSystem, Outcome, \
    Trajectory, _detect_period, _resolve_block_size, _resolve_history
from .math_utils import as_rate_matrix, as_rate_vector, clip_nonnegative, \
    sup_norm

__all__ = [
    "UpdateSchedule",
    "SynchronousSchedule",
    "RoundRobinSchedule",
    "BernoulliSchedule",
    "ClockModel",
    "UniformClock",
    "RateMixClock",
    "DriftingClock",
    "BurstyClock",
    "ClockSchedule",
    "CLOCK_KINDS",
    "clock_model",
    "AsynchronousRunner",
    "run_async_ensemble",
]


class UpdateSchedule(abc.ABC):
    """Chooses which connections update at each asynchronous step.

    Implementations must keep :meth:`participants` a pure function of
    ``(step, n)`` (randomness via counter-based seeding, never a shared
    advancing generator): the batched engine re-evaluates masks per
    member block, and blocked execution is bit-identical to one-shot
    execution only because masks do not depend on call history.
    """

    @abc.abstractmethod
    def participants(self, step: int, n: int) -> np.ndarray:
        """Boolean mask (length ``n``) of connections updating now."""

    def steps_per_sweep(self, n: int) -> int:
        """How many schedule steps give every connection one update on
        average — used to compare budgets fairly across schedules."""
        return 1


class SynchronousSchedule(UpdateSchedule):
    """Everyone updates every step: the paper's baseline."""

    def participants(self, step, n):
        return np.ones(n, dtype=bool)


class RoundRobinSchedule(UpdateSchedule):
    """One connection per step, cyclically (Gauss–Seidel)."""

    def participants(self, step, n):
        mask = np.zeros(n, dtype=bool)
        mask[step % n] = True
        return mask

    def steps_per_sweep(self, n):
        return n


class BernoulliSchedule(UpdateSchedule):
    """Each connection updates independently with probability ``p``.

    Masks are a pure function of ``(seed, step)``: a shared generator
    advancing across calls would make the schedule stateful — reusing
    one schedule object for two runs (or probing a mask out of band)
    would silently change every later trajectory.  Counter-based
    seeding keeps runs bit-identical per seed regardless of call
    history.
    """

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 < p <= 1.0:
            raise RateVectorError(
                f"update probability must lie in (0, 1], got {p!r}")
        self.p = float(p)
        self.seed = int(seed)

    def participants(self, step, n):
        rng = np.random.default_rng([self.seed, int(step)])
        return rng.random(n) < self.p

    def steps_per_sweep(self, n):
        return max(1, int(round(1.0 / self.p)))


# ----------------------------------------------------------------------
# clock models
# ----------------------------------------------------------------------
def _check_rate(name: str, value: float, minimum: float = 0.0) -> float:
    value = float(value)
    if not (math.isfinite(value) and minimum < value <= 1.0):
        bound = "(0, 1]" if minimum == 0.0 else f"({minimum}, 1]"
        raise RateVectorError(
            f"{name} must lie in {bound}, got {value!r}")
    return value


class ClockModel(abc.ABC):
    """Per-source update-clock rates for heterogeneous asynchrony.

    A clock model maps ``(step, n)`` to the per-source probability that
    each connection's clock ticks — i.e. that the source applies its
    rate-adjustment rule — at that step.  All per-source randomness
    (phase offsets, slow/fast assignment, burst offsets) is drawn from
    ``default_rng([seed, i])`` so source ``i``'s clock is a pure
    function of ``(seed, i)``: adding or removing other sources never
    reshuffles an existing source's clock, and scalar/batched/blocked
    runs all agree bit-exactly.

    Wrap a model in :class:`ClockSchedule` to drive
    :class:`AsynchronousRunner` or :func:`run_async_ensemble`.
    """

    kind: str = "clock"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._source_draws: dict = {}

    @abc.abstractmethod
    def tick_rates(self, step: int, n: int) -> np.ndarray:
        """Per-source tick probabilities at ``step`` (each in (0, 1])."""

    def nominal_rates(self, n: int) -> np.ndarray:
        """Long-run per-source tick rates (defaults to the step-0 rates)."""
        return self.tick_rates(0, n)

    @property
    @abc.abstractmethod
    def heterogeneity(self) -> float:
        """Ratio of the fastest to the slowest instantaneous tick rate
        the model can express; 1.0 means homogeneous clocks."""

    def fairness_index(self, n: int) -> float:
        """Jain's fairness index of the nominal tick rates — the scalar
        tracked as clock heterogeneity grows (1.0 = uniform clocks)."""
        rates = self.nominal_rates(n)
        total = float(np.sum(rates))
        if total == 0.0:
            return 1.0
        return total * total / (n * float(np.sum(rates * rates)))

    def _source_uniform(self, n: int) -> np.ndarray:
        """``u_i = default_rng([seed, i]).random()`` — cached per n."""
        got = self._source_draws.get(n)
        if got is None:
            got = np.array([
                np.random.default_rng([self.seed, i]).random()
                for i in range(n)
            ])
            self._source_draws[n] = got
        return got


class UniformClock(ClockModel):
    """Every source ticks at the same ``rate`` — the homogeneous
    baseline (``rate=1.0`` reduces to the synchronous schedule)."""

    kind = "uniform"

    def __init__(self, rate: float = 1.0, seed: int = 0):
        super().__init__(seed)
        self.rate = _check_rate("clock rate", rate)

    def tick_rates(self, step, n):
        return np.full(n, self.rate)

    @property
    def heterogeneity(self):
        return 1.0


class RateMixClock(ClockModel):
    """A slow/fast population mix (the CS262 slow/fast VM experiment):
    each source is independently assigned the slow clock with
    probability ``slow_fraction`` (via ``default_rng([seed, i])``) and
    ticks at its assigned rate forever after."""

    kind = "mix"

    def __init__(self, slow_rate: float = 0.25, fast_rate: float = 1.0,
                 slow_fraction: float = 0.5, seed: int = 0):
        super().__init__(seed)
        self.slow_rate = _check_rate("slow clock rate", slow_rate)
        self.fast_rate = _check_rate("fast clock rate", fast_rate)
        if self.slow_rate > self.fast_rate:
            raise RateVectorError(
                f"slow clock rate {slow_rate!r} exceeds fast clock "
                f"rate {fast_rate!r}")
        frac = float(slow_fraction)
        if not (math.isfinite(frac) and 0.0 <= frac <= 1.0):
            raise RateVectorError(
                f"slow fraction must lie in [0, 1], got {slow_fraction!r}")
        self.slow_fraction = frac

    def tick_rates(self, step, n):
        slow = self._source_uniform(n) < self.slow_fraction
        return np.where(slow, self.slow_rate, self.fast_rate)

    @property
    def heterogeneity(self):
        return self.fast_rate / self.slow_rate


class DriftingClock(ClockModel):
    """Each source's rate drifts sinusoidally around ``base_rate`` with
    its own phase (``default_rng([seed, i])``): slow and fast episodes
    wander across the population instead of being fixed per source.
    ``amplitude`` must keep every instantaneous rate inside (0, 1]."""

    kind = "drifting"

    def __init__(self, base_rate: float = 0.5, amplitude: float = 0.25,
                 period: int = 64, seed: int = 0):
        super().__init__(seed)
        self.base_rate = _check_rate("base clock rate", base_rate)
        amp = float(amplitude)
        if not (math.isfinite(amp) and 0.0 <= amp < self.base_rate):
            raise RateVectorError(
                f"drift amplitude must lie in [0, base_rate), "
                f"got {amplitude!r}")
        if self.base_rate + amp > 1.0:
            raise RateVectorError(
                f"base_rate + amplitude must stay <= 1, got "
                f"{self.base_rate + amp!r}")
        if not (isinstance(period, (int, np.integer)) and period >= 1):
            raise RateVectorError(
                f"drift period must be an int >= 1, got {period!r}")
        self.amplitude = amp
        self.period = int(period)

    def tick_rates(self, step, n):
        phase = self._source_uniform(n)
        angle = 2.0 * np.pi * (step / self.period + phase)
        return self.base_rate + self.amplitude * np.sin(angle)

    def nominal_rates(self, n):
        # The sinusoid averages out over a period.
        return np.full(n, self.base_rate)

    @property
    def heterogeneity(self):
        if self.amplitude == 0.0:
            return 1.0
        return ((self.base_rate + self.amplitude)
                / (self.base_rate - self.amplitude))


class BurstyClock(ClockModel):
    """Sources alternate between on-bursts (ticking at ``on_rate``) and
    off-bursts (``off_rate``) of ``burst_len`` steps, with per-source
    burst offsets (``default_rng([seed, i])``) so the population
    desynchronises instead of breathing in lockstep."""

    kind = "bursty"

    def __init__(self, on_rate: float = 1.0, off_rate: float = 0.1,
                 burst_len: int = 16, seed: int = 0):
        super().__init__(seed)
        self.on_rate = _check_rate("burst on rate", on_rate)
        self.off_rate = _check_rate("burst off rate", off_rate)
        if self.off_rate > self.on_rate:
            raise RateVectorError(
                f"burst off rate {off_rate!r} exceeds on rate "
                f"{on_rate!r}")
        if not (isinstance(burst_len, (int, np.integer))
                and burst_len >= 1):
            raise RateVectorError(
                f"burst length must be an int >= 1, got {burst_len!r}")
        self.burst_len = int(burst_len)

    def _offsets(self, n: int) -> np.ndarray:
        return np.floor(self._source_uniform(n)
                        * 2 * self.burst_len).astype(np.intp)

    def tick_rates(self, step, n):
        phase = ((step + self._offsets(n)) // self.burst_len) % 2
        return np.where(phase == 0, self.on_rate, self.off_rate)

    def nominal_rates(self, n):
        # Each source spends half its time in each phase.
        return np.full(n, 0.5 * (self.on_rate + self.off_rate))

    @property
    def heterogeneity(self):
        return self.on_rate / self.off_rate


#: Clock-model kinds :func:`clock_model` can build, in the order the
#: scenario grammar enumerates them.
CLOCK_KINDS = ("uniform", "mix", "drifting", "bursty")

_CLOCK_BUILDERS = {
    "uniform": UniformClock,
    "mix": RateMixClock,
    "drifting": DriftingClock,
    "bursty": BurstyClock,
}


def clock_model(kind: str, **params) -> ClockModel:
    """Build a :class:`ClockModel` by kind name (scenario grammar entry
    point).  Unknown kinds raise :class:`~repro.errors.RateVectorError`."""
    builder = _CLOCK_BUILDERS.get(kind)
    if builder is None:
        raise RateVectorError(
            f"unknown clock kind {kind!r}; known: {CLOCK_KINDS}")
    return builder(**params)


class ClockSchedule(UpdateSchedule):
    """Drive an :class:`UpdateSchedule` from a :class:`ClockModel`.

    At step ``t`` source ``i`` ticks iff ``u_i < rate_i(t)`` where the
    coin vector ``u`` is drawn from ``default_rng([seed, step])`` —
    the same counter-based contract as :class:`BernoulliSchedule`, so
    masks are a pure function of ``(seed, step)`` and scalar, batched,
    and blocked runs all see identical schedules.
    """

    def __init__(self, clock: ClockModel):
        if not isinstance(clock, ClockModel):
            raise RateVectorError(
                f"ClockSchedule needs a ClockModel, got {clock!r}")
        self.clock = clock

    def participants(self, step, n):
        rng = np.random.default_rng([self.clock.seed, int(step)])
        return rng.random(n) < self.clock.tick_rates(int(step), n)

    def steps_per_sweep(self, n):
        mean = float(np.mean(self.clock.nominal_rates(n)))
        return max(1, int(round(1.0 / mean)))


class AsynchronousRunner:
    """Run a :class:`FlowControlSystem` under a schedule and delay.

    At step ``t`` the scheduled connections apply their rule to the
    signals and delays computed from the rate vector of step
    ``t - signal_delay`` (0 = the current model); unscheduled
    connections hold their rates.
    """

    def __init__(self, system: FlowControlSystem,
                 schedule: Optional[UpdateSchedule] = None,
                 signal_delay: int = 0):
        if signal_delay < 0:
            raise RateVectorError(
                f"signal delay must be >= 0, got {signal_delay!r}")
        self.system = system
        self.schedule = schedule or SynchronousSchedule()
        self.signal_delay = int(signal_delay)

    def run(self, initial: Sequence[float], max_steps: int = 20000,
            tol: float = 1e-10, settle: Optional[int] = None,
            max_period: int = 64) -> Trajectory:
        """Iterate; convergence requires a full quiet *sweep*.

        ``settle`` defaults to ``2 * steps_per_sweep + signal_delay``
        quiet steps: a round-robin run must stay quiet for whole
        sweeps, and a delayed run must stay quiet longer than the
        delay pipeline (otherwise a stale congestion spike still in
        the buffer could pin the rates just long enough to fake a
        fixed point).
        """
        n = self.system.network.num_connections
        r = as_rate_vector(initial, n=n)
        sweep = self.schedule.steps_per_sweep(n)
        if settle is None:
            settle = 2 * sweep + self.signal_delay + 3
        buffer = deque([r.copy()] * (self.signal_delay + 1),
                       maxlen=self.signal_delay + 1)
        history = [r.copy()]
        quiet = 0
        limit = (FlowControlSystem.DIVERGENCE_FACTOR
                 * max(self.system.network.mu(g)
                       for g in self.system.network.gateway_names))
        for step in range(1, max_steps + 1):
            stale = buffer[0]
            b = self.system.signals(stale)
            d = self.system.delays(stale)
            mask = self.schedule.participants(step - 1, n)
            r_next = r.copy()
            for i in np.nonzero(mask)[0]:
                rule = self.system.rules[i]
                r_next[i] = rule.apply(float(r[i]), float(b[i]),
                                       float(d[i]))
            r_next = clip_nonnegative(r_next)
            history.append(r_next.copy())
            buffer.append(r_next.copy())
            if not np.all(np.isfinite(r_next)) or np.any(r_next > limit):
                return Trajectory(np.array(history), Outcome.DIVERGED,
                                  None, step)
            change = sup_norm(r_next, r)
            scale = max(1.0, float(np.max(r_next)))
            if change <= tol * scale:
                quiet += 1
                if quiet >= settle:
                    return Trajectory(np.array(history),
                                      Outcome.CONVERGED, 1, step)
            else:
                quiet = 0
            r = r_next
        arr = np.array(history)
        period = _detect_period(arr, max_period, tol)
        if period is not None:
            return Trajectory(arr, Outcome.OSCILLATING, period, max_steps)
        return Trajectory(arr, Outcome.UNDECIDED, None, max_steps)

    def is_steady_state(self, rates: Sequence[float],
                        tol: float = 1e-9) -> bool:
        """Fixed points coincide with the synchronous system's."""
        return self.system.is_steady_state(rates, tol=tol)


# ----------------------------------------------------------------------
# the batched asynchronous engine
# ----------------------------------------------------------------------
def run_async_ensemble(system: FlowControlSystem, initials,
                       schedule: Union[UpdateSchedule,
                                       Sequence[UpdateSchedule],
                                       None] = None,
                       signal_delay: int = 0,
                       max_steps: int = 20000, tol: float = 1e-10,
                       settle: Optional[int] = None,
                       max_period: int = 64,
                       record: bool = False,
                       telemetry: Optional[bool] = None,
                       block_size: Optional[int] = None,
                       history: Optional[str] = None) -> EnsembleResult:
    """Evolve an ``(M, N)`` ensemble under asynchronous updates.

    The batched counterpart of :class:`AsynchronousRunner`: all M
    members advance through one vectorised step per schedule tick —
    signals and delays are computed from the rate vectors
    ``signal_delay`` steps in the past (a ``(tau + 1, M, N)`` ring
    buffer), the scheduled connection columns apply their rules via
    the grouped ``apply_batch`` path (reusing the system's ``xp``
    array-backend seam), and unscheduled columns hold their rates.
    Member ``m`` reproduces
    ``AsynchronousRunner(system, schedule, signal_delay)
    .run(initials[m], ...)`` bit-exactly in finals, outcomes, steps,
    and periods.

    ``schedule`` is one :class:`UpdateSchedule` shared by every member
    (default: synchronous), or a length-M sequence giving each member
    its own schedule — per-member masks are stacked into an ``(M, N)``
    participation matrix each step.  Schedules must keep
    ``participants`` a pure function of ``(step, n)`` (all built-ins
    do); stateful schedules would break blocked bit-identity.

    ``settle=None`` resolves per member to
    ``2 * steps_per_sweep + signal_delay + 3`` quiet steps, matching
    the scalar runner's full-quiet-sweep contract.

    ``record`` / ``history`` / ``block_size`` / ``telemetry`` follow
    :meth:`FlowControlSystem.run_ensemble` exactly: the same retention
    policies, the same blocked bit-identity, the same
    ``(step, member)``-ordered mask events, and a
    :class:`~repro.observability.RunRecord` of kind
    ``"async_ensemble"`` when telemetry is collected.

    Controller-driven systems own the update clock at the gateways and
    raise :class:`~repro.errors.SweepError` — source-side schedules
    have nothing to schedule there.
    """
    if signal_delay < 0:
        raise RateVectorError(
            f"signal delay must be >= 0, got {signal_delay!r}")
    if system.controlled:
        raise SweepError(
            "run_async_ensemble drives source-side update schedules; "
            "controller-driven systems update at the gateways and have "
            "no per-source clock to schedule")
    n = system.network.num_connections
    r0 = as_rate_matrix(initials, n=n)
    m_total = r0.shape[0]
    history = _resolve_history(record, history)
    record = history == "full"
    block = _resolve_block_size(block_size, m_total)
    tau = int(signal_delay)

    shared: Optional[UpdateSchedule]
    schedules: Optional[List[UpdateSchedule]]
    if schedule is None:
        shared, schedules = SynchronousSchedule(), None
    elif isinstance(schedule, UpdateSchedule):
        shared, schedules = schedule, None
    else:
        shared, schedules = None, list(schedule)
        if len(schedules) != m_total:
            raise SweepError(
                f"need one schedule per member: got {len(schedules)} "
                f"schedules for M={m_total}")
        for s in schedules:
            if not isinstance(s, UpdateSchedule):
                raise SweepError(
                    f"per-member schedules must be UpdateSchedules, "
                    f"got {s!r}")

    if settle is None:
        if shared is not None:
            settle_arr = np.full(
                m_total, 2 * shared.steps_per_sweep(n) + tau + 3,
                dtype=int)
        else:
            settle_arr = np.array(
                [2 * s.steps_per_sweep(n) + tau + 3 for s in schedules],
                dtype=int)
    else:
        settle_arr = np.full(m_total, int(settle), dtype=int)

    limit = FlowControlSystem.DIVERGENCE_FACTOR * system._mu_max
    if telemetry is None:
        telemetry = is_collecting()
    rec = RunRecord.begin(
        "async_ensemble", m_total, n, max_steps, tol,
        int(np.max(settle_arr)) if m_total else 0) if telemetry else None
    n_blocks = -(-m_total // block) if m_total else 0
    if rec is not None:
        rec.n_blocks = max(n_blocks, 1)
        rec.block_size = block if block_size is not None else None

    outcomes: List[Outcome] = [Outcome.UNDECIDED] * m_total
    periods: List[Optional[int]] = [None] * m_total
    steps = np.full(m_total, 0, dtype=int)
    finals = r0.copy()

    if m_total == 0:
        if rec is not None:
            rec.finish(0, {})
            emit_run_record(rec)
        return EnsembleResult(finals=finals, outcomes=outcomes,
                              periods=periods, steps=steps,
                              initials=r0,
                              histories=[] if record else None,
                              telemetry=rec,
                              history_policy=history,
                              block_size=None)

    histories: Optional[List[Optional[np.ndarray]]] = \
        [None] * m_total if record else None
    mask_events: List[tuple] = []
    timings = {"step": 0.0, "classify": 0.0, "period": 0.0}
    totals = {"converged": 0, "diverged": 0, "period_ran": 0}
    for base in range(0, m_total, block):
        _run_async_block(
            system, r0, base, min(base + block, m_total), shared,
            schedules, tau, max_steps, tol, settle_arr, max_period,
            limit, history, rec, outcomes, periods, steps, finals,
            histories, mask_events, timings, totals)

    mask_events.sort(key=lambda e: (e[0], e[1]))
    if rec is not None:
        for step_count, member, kind in mask_events:
            rec.observe_mask_event(step_count, member, kind)
        if totals["period_ran"]:
            rec.add_phase("period_detection", timings["period"])
        rec.add_phase("step_batch", timings["step"])
        rec.add_phase("classify", timings["classify"])
        counts: dict = {}
        for o in outcomes:
            counts[o.value] = counts.get(o.value, 0) + 1
        rec.finish(int(np.max(steps)) if m_total else 0, counts)
        emit_run_record(rec)
    return EnsembleResult(finals=finals, outcomes=outcomes,
                          periods=periods, steps=steps,
                          initials=r0, histories=histories,
                          telemetry=rec,
                          history_policy=history,
                          block_size=(block if block_size is not None
                                      else None))


def _run_async_block(system, r0, base, end, shared, schedules, tau,
                     max_steps, tol, settle_arr, max_period, limit,
                     history, rec, outcomes, periods, steps, finals,
                     histories, mask_events, timings, totals):
    """Evolve members ``base:end`` asynchronously; write results in place.

    The asynchronous sibling of
    :meth:`FlowControlSystem._run_ensemble_block`: the same compressed
    still-iterating index array, rolling period-detection tail, and
    absolute-index result writes, plus the delayed-signal ring buffer
    (state at time ``s`` lives in slot ``s % (tau + 1)``, so the slot
    about to be overwritten at step ``t`` holds exactly the
    ``tau``-stale state the signals must read) and the per-step
    participation masks.
    """
    xp = system.xp
    kw = {} if xp is np else {"xp": xp}
    mb = end - base
    n = r0.shape[1]
    tcap = min(4 * max_period, max_steps + 1)
    tail = None
    if history != "none":
        tail = np.zeros((mb, tcap, n), dtype=float)
        tail[:, 0] = r0[base:end]
    full = None
    if history == "full":
        full = np.empty((mb, max_steps + 1, n))
        full[:, 0] = r0[base:end]
    quiet = np.zeros(mb, dtype=int)
    settle_blk = settle_arr[base:end]

    idx = np.arange(mb)           # block members still iterating
    r = r0[base:end].copy()       # their current states, compressed
    # Delayed-signal ring: slot s % (tau + 1) holds the state of time
    # s; all slots start at the initial condition, matching the scalar
    # runner's pre-filled deque.  Rows are compressed alongside r.
    ring = np.tile(r[np.newaxis], (tau + 1, 1, 1))
    for step_count in range(1, max_steps + 1):
        if rec is not None:
            t0 = time.perf_counter()
        slot = step_count % (tau + 1)
        stale = ring[slot]
        b = system.scheme.signals_batch(stale, **kw)
        d = round_trip_delays_batch(system.network, system.discipline,
                                    stale, xp=xp)
        if shared is not None:
            mask = shared.participants(step_count - 1, n)
            r_next = r.copy()
            for rule, cols in system._rule_groups:
                cm = cols[mask[cols]]
                if cm.size:
                    r_next[:, cm] = rule.apply_batch(
                        r[:, cm], b[:, cm], d[:, cm], **kw)
        else:
            mask_mat = np.stack(
                [schedules[base + m].participants(step_count - 1, n)
                 for m in idx])
            new = xp.empty_like(r)
            for rule, cols in system._rule_groups:
                new[:, cols] = rule.apply_batch(r[:, cols], b[:, cols],
                                                d[:, cols], **kw)
            r_next = xp.where(mask_mat, new, r)
        r_next = clip_nonnegative(r_next, xp=xp)
        ring[slot] = r_next
        if rec is not None:
            timings["step"] += time.perf_counter() - t0
            t0 = time.perf_counter()
        if tail is not None:
            tail[idx, step_count % tcap] = r_next
        if full is not None:
            full[idx, step_count] = r_next

        finite = np.all(np.isfinite(r_next), axis=1)
        with np.errstate(invalid="ignore"):
            diverged = ~finite | np.any(r_next > limit, axis=1)
            change = np.max(np.abs(r_next - r), axis=1)
            scale = np.maximum(1.0, np.max(r_next, axis=1))
            within = change <= tol * scale
        quiet_next = np.where(within, quiet[idx] + 1, 0)
        quiet[idx] = quiet_next
        converged = (quiet_next >= settle_blk[idx]) & ~diverged
        done = diverged | converged

        if np.any(done):
            done_members = idx[done]
            finals[base + done_members] = r_next[done]
            steps[base + done_members] = step_count
            for m, is_div in zip(done_members, diverged[done]):
                member = base + int(m)
                if is_div:
                    outcomes[member] = Outcome.DIVERGED
                    totals["diverged"] += 1
                else:
                    outcomes[member] = Outcome.CONVERGED
                    periods[member] = 1
                    totals["converged"] += 1
                mask_events.append(
                    (step_count, member,
                     "diverged" if is_div else "converged"))
            keep = ~done
            idx = idx[keep]
            r = r_next[keep]
            ring = ring[:, keep]
            if rec is not None:
                finite_changes = change[keep][np.isfinite(change[keep])]
                rec.observe_iteration(
                    float(np.max(finite_changes))
                    if finite_changes.size else math.inf,
                    int(idx.size), totals["converged"],
                    totals["diverged"])
                timings["classify"] += time.perf_counter() - t0
            if idx.size == 0:
                break
        else:
            r = r_next
            if rec is not None:
                rec.observe_iteration(float(np.max(change)),
                                      int(idx.size),
                                      totals["converged"],
                                      totals["diverged"])
                timings["classify"] += time.perf_counter() - t0
    else:
        # Members that exhausted the step budget: reconstruct the
        # ordered tail from the ring buffer and look for a cycle
        # (skipped — UNDECIDED — under history="none").
        finals[base + idx] = r
        steps[base + idx] = max_steps
        if tail is not None:
            if rec is not None:
                t0 = time.perf_counter()
            start = ((max_steps + 1) % tcap
                     if max_steps + 1 > tcap else 0)
            for m in idx:
                ordered = np.roll(tail[m], -start, axis=0)
                period = _detect_period(ordered, max_period, tol,
                                        total_len=max_steps + 1)
                if period is not None:
                    outcomes[base + m] = Outcome.OSCILLATING
                    periods[base + m] = period
            if rec is not None:
                timings["period"] += time.perf_counter() - t0
                totals["period_ran"] += 1

    if full is not None:
        # Views, not copies: each member's trajectory window into the
        # block buffer (see EnsembleResult.histories).
        for m in range(mb):
            histories[base + m] = full[m, :steps[base + m] + 1]
