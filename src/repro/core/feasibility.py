"""Feasibility constraints on queue-length functions (paper Section 2.2).

Not every vector function ``Q(r)`` can be realised by a physical,
*nonstalling* service discipline (one whose server idles only when the
queue is empty).  The paper states two constraints, which this module
checks numerically for any :class:`~repro.core.service.ServiceDiscipline`:

1. **Total conservation** — ``sum_i Q_i(r) = g(sum_i r_i / mu)``.  The
   total number of packets in an M/M/1 system does not depend on the
   service order.

2. **Prefix bounds** — numbering the connections so that ``Q_i / r_i``
   is increasing, for every ``k < N``:
   ``sum_{i<=k} Q_i >= g(sum_{i<=k} r_i / mu)``.  No discipline can give
   a subset of connections *less* total queue than a server devoted to
   them alone under preemptive priority would.

The module also checks the paper's standing structural assumptions:
symmetry of ``Q`` under permutations, time-scale invariance
(``Q(c*r; c*mu) = Q(r; mu)``), monotonicity ``dQ_i/dr_i >= 0``, and order
preservation ``Q_i > Q_j <=> r_i > r_j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .math_utils import as_rate_vector, g
from .service import ServiceDiscipline

__all__ = [
    "FeasibilityReport",
    "check_total_conservation",
    "check_prefix_bounds",
    "check_symmetry",
    "check_time_scale_invariance",
    "check_rate_monotonicity",
    "check_order_preservation",
    "check_feasibility",
]

_DEFAULT_TOL = 1e-8


@dataclass
class FeasibilityReport:
    """Outcome of the full feasibility check for one rate vector."""

    discipline: str
    rates: np.ndarray
    mu: float
    total_conservation: bool = True
    prefix_bounds: bool = True
    symmetry: bool = True
    time_scale_invariance: bool = True
    rate_monotonicity: bool = True
    order_preservation: bool = True
    failures: List[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """True when every individual check passed."""
        return not self.failures

    def _record(self, attr: str, ok: bool, detail: str) -> None:
        if not ok:
            setattr(self, attr, False)
            self.failures.append(detail)


def _finite_case(q: np.ndarray) -> bool:
    return bool(np.all(np.isfinite(q)))


def check_total_conservation(discipline: ServiceDiscipline,
                             rates: Sequence[float], mu: float,
                             tol: float = _DEFAULT_TOL) -> bool:
    """``sum Q_i == g(rho_total)`` (both sides may be ``inf`` together)."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    expected = g(float(np.sum(r)) / mu)
    total = float(np.sum(q))
    if math.isinf(expected) or math.isinf(total):
        return math.isinf(expected) == math.isinf(total)
    scale = max(1.0, abs(expected))
    return abs(total - expected) <= tol * scale


def check_prefix_bounds(discipline: ServiceDiscipline,
                        rates: Sequence[float], mu: float,
                        tol: float = _DEFAULT_TOL) -> bool:
    """Prefix inequalities in increasing ``Q_i / r_i`` order."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    positive = r > 0
    r, q = r[positive], q[positive]
    if r.size == 0:
        return True
    with np.errstate(divide="ignore"):
        ratio = np.where(np.isinf(q), math.inf, q / np.maximum(r, 1e-300))
    order = np.argsort(ratio, kind="stable")
    r, q = r[order], q[order]
    q_prefix = 0.0
    r_prefix = 0.0
    for k in range(r.size - 1):
        q_prefix += q[k]
        r_prefix += r[k]
        bound = g(r_prefix / mu)
        if math.isinf(q_prefix):
            continue
        if math.isinf(bound):
            return False
        scale = max(1.0, abs(bound))
        if q_prefix < bound - tol * scale:
            return False
    return True


def check_symmetry(discipline: ServiceDiscipline, rates: Sequence[float],
                   mu: float, seed: int = 0,
                   tol: float = _DEFAULT_TOL) -> bool:
    """Permuting the rate vector permutes the queue vector identically."""
    r = as_rate_vector(rates)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(r.shape[0])
    q = discipline.queue_lengths(r, mu)
    q_perm = discipline.queue_lengths(r[perm], mu)
    return _vectors_match(q[perm], q_perm, tol)


def check_time_scale_invariance(discipline: ServiceDiscipline,
                                rates: Sequence[float], mu: float,
                                scale: float = 7.5,
                                tol: float = _DEFAULT_TOL) -> bool:
    """``Q(c*r; c*mu) == Q(r; mu)`` for a positive scale ``c``."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    q_scaled = discipline.queue_lengths(r * scale, mu * scale)
    return _vectors_match(q, q_scaled, tol)


def check_rate_monotonicity(discipline: ServiceDiscipline,
                            rates: Sequence[float], mu: float,
                            h: float = 1e-7) -> bool:
    """``Q_i`` does not decrease when ``r_i`` increases (finite regime)."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    for i in range(r.shape[0]):
        if not math.isfinite(q[i]):
            continue
        bumped = r.copy()
        bumped[i] += h * mu
        q_bumped = discipline.queue_lengths(bumped, mu)
        if math.isfinite(q_bumped[i]) and q_bumped[i] < q[i] - 1e-9:
            return False
    return True


def check_order_preservation(discipline: ServiceDiscipline,
                             rates: Sequence[float], mu: float,
                             tol: float = _DEFAULT_TOL) -> bool:
    """``r_i > r_j`` implies ``Q_i >= Q_j`` (with equality only near ties)."""
    r = as_rate_vector(rates)
    q = discipline.queue_lengths(r, mu)
    n = r.shape[0]
    for i in range(n):
        for j in range(n):
            if r[i] > r[j] + tol and q[i] < q[j] - tol:
                return False
    return True


def check_feasibility(discipline: ServiceDiscipline,
                      rates: Sequence[float], mu: float,
                      tol: float = _DEFAULT_TOL) -> FeasibilityReport:
    """Run every feasibility and structural check; collect failures."""
    r = as_rate_vector(rates)
    report = FeasibilityReport(discipline=discipline.name, rates=r, mu=mu)
    report._record("total_conservation",
                   check_total_conservation(discipline, r, mu, tol),
                   "total queue not conserved")
    report._record("prefix_bounds",
                   check_prefix_bounds(discipline, r, mu, tol),
                   "prefix lower bound violated")
    report._record("symmetry",
                   check_symmetry(discipline, r, mu, tol=tol),
                   "Q(r) is not permutation-symmetric")
    report._record("time_scale_invariance",
                   check_time_scale_invariance(discipline, r, mu, tol=tol),
                   "Q(r) is not time-scale invariant")
    report._record("rate_monotonicity",
                   check_rate_monotonicity(discipline, r, mu),
                   "Q_i decreases in r_i")
    report._record("order_preservation",
                   check_order_preservation(discipline, r, mu, tol),
                   "larger rate does not imply larger queue")
    return report


def _vectors_match(a: np.ndarray, b: np.ndarray, tol: float) -> bool:
    both_inf = np.isinf(a) & np.isinf(b)
    finite = np.isfinite(a) & np.isfinite(b)
    if not np.all(both_inf | finite):
        return False
    return bool(np.allclose(a[finite], b[finite], atol=tol, rtol=tol))
