"""Steady states of feedback flow control (Sections 3.1-3.2).

For a TSI rate-adjustment rule with target signal ``b_ss``:

* **aggregate feedback** — the steady states form a manifold: every
  gateway must sit at or below the steady utilisation
  ``rho_ss = g^{-1}(B^{-1}(b_ss))`` and every connection must have a
  gateway on its path exactly at ``rho_ss``
  (:func:`is_aggregate_steady_state`).  Exactly one point of that
  manifold is fair (Theorem 2), constructed by water-filling
  (:func:`fair_steady_state`).
* **individual feedback** — the steady state is unique, fair, and
  independent of the service discipline (Theorem 3 + Corollary); it is
  the same water-filling point.

:func:`predicted_steady_state` packages the prediction for a
:class:`~repro.core.dynamics.FlowControlSystem`, and :func:`refine` uses
a damped residual solve to polish an approximate fixed point.

Parameter scans (F6/F7-style: one fixed-point solve per grid point)
should go through :class:`FixedPointCache`: it memoises solves keyed by
a hashed system configuration (:func:`system_key`) and warm-starts each
new solve from the previous grid point's fixed point (*continuation*),
which cuts the damped-iteration counts drastically when neighbouring
grid points have neighbouring fixed points.  :func:`continuation_scan`
wraps the common loop.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, NotTimeScaleInvariantError
from .dynamics import FlowControlSystem
from .fairness import max_min_allocation
from .math_utils import as_rate_vector, sup_norm
from .ratecontrol import tsi_target
from .signals import FeedbackStyle, SignalFunction
from .topology import Network

__all__ = [
    "steady_utilisation",
    "fair_steady_state",
    "predicted_steady_state",
    "is_aggregate_steady_state",
    "single_connection_rate",
    "refine",
    "system_key",
    "RefineResult",
    "FixedPointCache",
    "continuation_scan",
]


def steady_utilisation(signal_fn: SignalFunction, b_ss: float) -> float:
    """``rho_ss``: bottleneck utilisation implied by the target signal."""
    return signal_fn.steady_state_utilisation(b_ss)


def fair_steady_state(network: Network, rho_ss: float) -> np.ndarray:
    """Theorem 2's unique fair steady state.

    Max-min fair allocation with per-gateway capacities
    ``rho_ss * mu^a``.  This is also the unique steady state of every
    TSI *individual* feedback scheme on the same network (Corollary to
    Theorem 3), whatever the service discipline.
    """
    if not (0.0 < rho_ss < 1.0):
        raise ConvergenceError(
            f"steady utilisation must lie in (0, 1), got {rho_ss!r}")
    capacities = {g: rho_ss * network.mu(g) for g in network.gateway_names}
    return max_min_allocation(network, capacities)


def predicted_steady_state(system: FlowControlSystem) -> np.ndarray:
    """The model's closed-form steady-state prediction for ``system``.

    Requires a homogeneous TSI rule.  For individual feedback this is
    *the* steady state; for aggregate feedback it is the unique fair
    point of the steady-state manifold.
    """
    if not system.homogeneous:
        raise NotTimeScaleInvariantError(
            "closed-form prediction requires a homogeneous rule; "
            "heterogeneous systems are the subject of the robustness "
            "experiments, not of this helper")
    b_ss = tsi_target(system.rules[0])
    rho_ss = steady_utilisation(system.signal_fn, b_ss)
    return fair_steady_state(system.network, rho_ss)


def is_aggregate_steady_state(network: Network, rho_ss: float,
                              rates: Sequence[float],
                              tol: float = 1e-6) -> bool:
    """Membership test for the aggregate-feedback steady-state manifold.

    ``r`` is a steady state of a TSI aggregate scheme with steady
    utilisation ``rho_ss`` iff every gateway's utilisation is at most
    ``rho_ss`` and every connection with positive rate sees ``rho_ss``
    on at least one of its gateways.  (A zero-rate connection can also
    be steady when pinned by the ``max(0, .)`` truncation; we accept it
    only when it, too, crosses a saturated gateway.)
    """
    r = as_rate_vector(rates, n=network.num_connections)
    for gname in network.gateway_names:
        if network.utilisation(gname, r) > rho_ss + tol:
            return False
    for i in range(network.num_connections):
        peak = max(network.utilisation(g, r) for g in network.gamma(i))
        if peak < rho_ss - tol:
            return False
    return True


def single_connection_rate(mu: float, rho_ss: float) -> float:
    """Steady rate of a connection alone at a gateway: ``mu * rho_ss``.

    Used in Theorem 5's robustness floor with ``mu -> mu / N``.
    """
    return mu * rho_ss


def _damped_solve(system: FlowControlSystem, r: np.ndarray,
                  max_steps: int, tol: float, damping: float):
    """The damped-iteration core of :func:`refine`; also counts the
    map applications so the warm-start cache can report savings."""
    for k in range(max_steps):
        nxt = system.step(r)
        scale = max(1.0, float(np.max(nxt)))
        if sup_norm(nxt, r) <= tol * scale:
            return nxt, k + 1
        r = (1.0 - damping) * r + damping * nxt
    raise ConvergenceError(
        f"refinement did not reach tol={tol} in {max_steps} steps")


def refine(system: FlowControlSystem, approx: Sequence[float],
           max_steps: int = 2000, tol: float = 1e-12,
           damping: float = 1.0) -> np.ndarray:
    """Polish an approximate fixed point by damped iteration.

    Applies ``r <- (1 - damping) r + damping F(r)`` until the residual's
    sup norm falls below ``tol`` (relative to the rate scale).  Raises
    :class:`~repro.errors.ConvergenceError` on failure.  Plain damped
    iteration respects the nonnegativity truncation, which generic
    root-finders do not.
    """
    r = as_rate_vector(approx, n=system.network.num_connections)
    rates, _ = _damped_solve(system, r, max_steps, tol, damping)
    return rates


def system_key(system: FlowControlSystem, extra=()) -> str:
    """Stable digest of a system's *configuration* (not its state).

    Two :class:`~repro.core.dynamics.FlowControlSystem` instances built
    from equal topologies, disciplines, signal functions, rules, styles,
    and weights get equal keys — the memoisation key of
    :class:`FixedPointCache`.  ``extra`` folds additional hashables
    (e.g. solver tolerances) into the digest.
    """
    network = system.network
    parts = [
        ";".join(f"{g}:{network.mu(g)!r}:{network.gateway(g).latency!r}"
                 for g in network.gateway_names),
        ";".join(",".join(network.gamma(i))
                 for i in range(network.num_connections)),
        repr(system.discipline),
        repr(system.signal_fn),
        "|".join(repr(rule) for rule in system.rules),
        system.style.value,
        repr(None if system.scheme.weights is None
             else system.scheme.weights.tolist()),
        repr(tuple(extra)),
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class RefineResult:
    """One :class:`FixedPointCache` solve: the fixed point, what it
    cost, and whether it was served from the memo."""

    rates: np.ndarray    #: the refined fixed point
    iterations: int      #: map applications spent (0 on a cache hit)
    cached: bool = False  #: True when memoised, no iteration performed


class FixedPointCache:
    """Warm-start cache for fixed-point solves across a parameter scan.

    Two mechanisms, both aimed at F6/F7-style scans that solve one
    fixed point per grid point:

    * **memoisation** — solves are keyed by :func:`system_key`, so
      re-solving an identical configuration (repeated grid points,
      re-runs inside one process) returns the stored fixed point with
      zero iterations;
    * **continuation** — a fresh solve warm-starts from the previous
      solve's fixed point whenever the dimensions match.  Neighbouring
      grid points have neighbouring fixed points, so the damped
      iteration starts close and converges in a fraction of the
      cold-start count.  Continuation deliberately takes precedence
      over ``approx`` (that is the point of the cache); ``approx`` is
      the cold-start guess for the first solve of each dimension.

    The refined fixed point is independent of the starting guess (the
    solves share one ``tol``), so warm starts change iteration counts,
    not answers — ``BENCH_sim.json`` records the saving.
    """

    def __init__(self):
        self._store: Dict[str, np.ndarray] = {}
        self._last: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0
        self.iterations = 0

    def __len__(self) -> int:
        return len(self._store)

    def solve(self, system: FlowControlSystem,
              approx: Optional[Sequence[float]] = None,
              max_steps: int = 2000, tol: float = 1e-12,
              damping: float = 1.0) -> RefineResult:
        """Memoised, continuation-warm-started :func:`refine`.

        Raises :class:`~repro.errors.ConvergenceError` when the damped
        iteration fails, or when the very first solve has neither an
        ``approx`` nor a previous solution to start from.
        """
        key = system_key(system, extra=(max_steps, tol, damping))
        stored = self._store.get(key)
        if stored is not None:
            self.hits += 1
            self._last = stored
            return RefineResult(rates=stored.copy(), iterations=0,
                                cached=True)
        self.misses += 1
        n = system.network.num_connections
        if self._last is not None and self._last.shape == (n,):
            r = self._last.copy()
        elif approx is not None:
            r = as_rate_vector(approx, n=n)
        else:
            raise ConvergenceError(
                "FixedPointCache.solve has no starting point: pass "
                "approx for the first solve of each dimension")
        rates, iterations = _damped_solve(system, r, max_steps, tol,
                                          damping)
        self.iterations += iterations
        self._store[key] = rates.copy()
        self._last = rates.copy()
        return RefineResult(rates=rates, iterations=iterations,
                            cached=False)


def continuation_scan(systems: Iterable[FlowControlSystem],
                      approx: Sequence[float],
                      max_steps: int = 2000, tol: float = 1e-12,
                      damping: float = 1.0,
                      cache: Optional[FixedPointCache] = None
                      ) -> List[RefineResult]:
    """Solve a scan of systems, each warm-started from its predecessor.

    ``approx`` seeds the first solve; every later grid point continues
    from the previous fixed point (or the memo, for repeated
    configurations).  Pass an existing ``cache`` to chain scans.
    """
    cache = cache if cache is not None else FixedPointCache()
    return [cache.solve(system, approx=approx, max_steps=max_steps,
                        tol=tol, damping=damping) for system in systems]
