"""Steady states of feedback flow control (Sections 3.1-3.2).

For a TSI rate-adjustment rule with target signal ``b_ss``:

* **aggregate feedback** — the steady states form a manifold: every
  gateway must sit at or below the steady utilisation
  ``rho_ss = g^{-1}(B^{-1}(b_ss))`` and every connection must have a
  gateway on its path exactly at ``rho_ss``
  (:func:`is_aggregate_steady_state`).  Exactly one point of that
  manifold is fair (Theorem 2), constructed by water-filling
  (:func:`fair_steady_state`).
* **individual feedback** — the steady state is unique, fair, and
  independent of the service discipline (Theorem 3 + Corollary); it is
  the same water-filling point.

:func:`predicted_steady_state` packages the prediction for a
:class:`~repro.core.dynamics.FlowControlSystem`, and :func:`refine` uses
a damped residual solve to polish an approximate fixed point.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, NotTimeScaleInvariantError
from .dynamics import FlowControlSystem
from .fairness import max_min_allocation
from .math_utils import as_rate_vector, sup_norm
from .ratecontrol import tsi_target
from .signals import FeedbackStyle, SignalFunction
from .topology import Network

__all__ = [
    "steady_utilisation",
    "fair_steady_state",
    "predicted_steady_state",
    "is_aggregate_steady_state",
    "single_connection_rate",
    "refine",
]


def steady_utilisation(signal_fn: SignalFunction, b_ss: float) -> float:
    """``rho_ss``: bottleneck utilisation implied by the target signal."""
    return signal_fn.steady_state_utilisation(b_ss)


def fair_steady_state(network: Network, rho_ss: float) -> np.ndarray:
    """Theorem 2's unique fair steady state.

    Max-min fair allocation with per-gateway capacities
    ``rho_ss * mu^a``.  This is also the unique steady state of every
    TSI *individual* feedback scheme on the same network (Corollary to
    Theorem 3), whatever the service discipline.
    """
    if not (0.0 < rho_ss < 1.0):
        raise ConvergenceError(
            f"steady utilisation must lie in (0, 1), got {rho_ss!r}")
    capacities = {g: rho_ss * network.mu(g) for g in network.gateway_names}
    return max_min_allocation(network, capacities)


def predicted_steady_state(system: FlowControlSystem) -> np.ndarray:
    """The model's closed-form steady-state prediction for ``system``.

    Requires a homogeneous TSI rule.  For individual feedback this is
    *the* steady state; for aggregate feedback it is the unique fair
    point of the steady-state manifold.
    """
    if not system.homogeneous:
        raise NotTimeScaleInvariantError(
            "closed-form prediction requires a homogeneous rule; "
            "heterogeneous systems are the subject of the robustness "
            "experiments, not of this helper")
    b_ss = tsi_target(system.rules[0])
    rho_ss = steady_utilisation(system.signal_fn, b_ss)
    return fair_steady_state(system.network, rho_ss)


def is_aggregate_steady_state(network: Network, rho_ss: float,
                              rates: Sequence[float],
                              tol: float = 1e-6) -> bool:
    """Membership test for the aggregate-feedback steady-state manifold.

    ``r`` is a steady state of a TSI aggregate scheme with steady
    utilisation ``rho_ss`` iff every gateway's utilisation is at most
    ``rho_ss`` and every connection with positive rate sees ``rho_ss``
    on at least one of its gateways.  (A zero-rate connection can also
    be steady when pinned by the ``max(0, .)`` truncation; we accept it
    only when it, too, crosses a saturated gateway.)
    """
    r = as_rate_vector(rates, n=network.num_connections)
    for gname in network.gateway_names:
        if network.utilisation(gname, r) > rho_ss + tol:
            return False
    for i in range(network.num_connections):
        peak = max(network.utilisation(g, r) for g in network.gamma(i))
        if peak < rho_ss - tol:
            return False
    return True


def single_connection_rate(mu: float, rho_ss: float) -> float:
    """Steady rate of a connection alone at a gateway: ``mu * rho_ss``.

    Used in Theorem 5's robustness floor with ``mu -> mu / N``.
    """
    return mu * rho_ss


def refine(system: FlowControlSystem, approx: Sequence[float],
           max_steps: int = 2000, tol: float = 1e-12,
           damping: float = 1.0) -> np.ndarray:
    """Polish an approximate fixed point by damped iteration.

    Applies ``r <- (1 - damping) r + damping F(r)`` until the residual's
    sup norm falls below ``tol`` (relative to the rate scale).  Raises
    :class:`~repro.errors.ConvergenceError` on failure.  Plain damped
    iteration respects the nonnegativity truncation, which generic
    root-finders do not.
    """
    r = as_rate_vector(approx, n=system.network.num_connections)
    for _ in range(max_steps):
        nxt = system.step(r)
        scale = max(1.0, float(np.max(nxt)))
        if sup_norm(nxt, r) <= tol * scale:
            return nxt
        r = (1.0 - damping) * r + damping * nxt
    raise ConvergenceError(
        f"refinement did not reach tol={tol} in {max_steps} steps")
