"""Round-trip delay model (paper Sections 2.3.2 and 3.1).

A source's only timing observable is the average round-trip delay of its
packets,

    ``d_i = L_i + sum_{a in gamma(i)} Q^a_i(r) / r_i``,

the sum of the path's line latencies ``L_i`` and, by Little's law, the
per-packet sojourn ``Q^a_i / r_i`` at each gateway.  For a single
connection at one gateway this reduces to the familiar
``d = l + 1 / (mu - r)`` used in the proof of Theorem 1.
"""

from __future__ import annotations

import numpy as np

from ..errors import RateVectorError
from .math_utils import as_rate_vector, pick_kernel
from .service import ServiceDiscipline
from .topology import Network

__all__ = ["round_trip_delays", "round_trip_delays_batch",
           "per_gateway_delays"]


def per_gateway_delays(network: Network, discipline: ServiceDiscipline,
                       rates: np.ndarray) -> dict:
    """Mean sojourn time of each connection at each gateway it crosses.

    Returns a mapping ``gateway name -> array`` in ``Gamma(a)`` order.
    """
    r = as_rate_vector(rates, n=network.num_connections)
    out = {}
    for gname in network.gateway_names:
        local = network.local_rates(gname, r)
        out[gname] = discipline.delays(local, network.mu(gname))
    return out


def round_trip_delays(network: Network, discipline: ServiceDiscipline,
                      rates: np.ndarray,
                      method: str = "auto") -> np.ndarray:
    """``d_i = L_i + sum over the path of the gateway sojourn times``.

    Entries are ``inf`` where any gateway on the path is overloaded for
    that connection.

    ``method``: ``"dense"`` walks each connection's route through the
    per-gateway sojourn vectors (the reference path, CSR-addressed so
    it never rescans ``Gamma(a)``); ``"sparse"`` runs the vector as a
    one-row batch through :func:`round_trip_delays_batch`; ``"auto"``
    (default) switches to sparse at ``N >= SPARSE_MIN_N``.
    """
    r = as_rate_vector(rates, n=network.num_connections)
    if pick_kernel(method, r.shape[0], large="sparse") == "sparse":
        return round_trip_delays_batch(network, discipline, r[None, :])[0]
    sojourns = per_gateway_delays(network, discipline, r)
    csr = network.csr
    d = np.zeros(network.num_connections, dtype=float)
    for i in range(network.num_connections):
        total = network.path_latency(i)
        for a, pos in zip(csr.route(i), csr.positions(i)):
            total += float(sojourns[csr.gateway_names[a]][pos])
        d[i] = total
    return d


def round_trip_delays_batch(network: Network,
                            discipline: ServiceDiscipline,
                            rates: np.ndarray,
                            xp=None) -> np.ndarray:
    """Batched :func:`round_trip_delays`: row ``m`` of the ``(M, N)``
    result equals ``round_trip_delays(network, discipline, rates[m])``.

    Gateway sojourns are computed once per gateway for the whole batch
    and scattered back onto connection columns through the network's
    CSR member arrays.

    ``xp`` selects the array namespace (numpy when ``None``); it is
    forwarded to the discipline only when it is not numpy, so custom
    disciplines without the parameter keep working on the default
    backend.
    """
    xp = np if xp is None else xp
    kw = {} if xp is np else {"xp": xp}
    r = xp.asarray(rates, dtype=float)
    n = network.num_connections
    if r.ndim != 2 or r.shape[1] != n:
        raise RateVectorError(
            f"need an (M, {n}) rate batch, got shape {r.shape}")
    csr = network.csr
    d = xp.empty_like(r)
    d[:] = csr.path_latency
    for a, gname in enumerate(csr.gateway_names):
        cols = csr.members(a)
        if cols.size == 0:
            continue
        sojourn = discipline.delays_batch(r[:, cols], network.mu(gname),
                                          **kw)
        d[:, cols] += sojourn
    return d
