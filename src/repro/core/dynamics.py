"""Synchronous rate-adjustment dynamics ``r <- F(r)`` (Section 2.3.2).

:class:`FlowControlSystem` bundles a network, a gateway service
discipline, a congestion-signal function, a feedback style, and one
rate-adjustment rule per connection (heterogeneity is first-class — it
is the subject of the robustness results).  One synchronous step is

    ``r_i <- max(0, r_i + f_i(r_i, b_i(r), d_i(r)))``

with queue lengths assumed instantly equilibrated to the current rates,
as in the model.  :meth:`FlowControlSystem.run` iterates the map,
records the trajectory, and classifies the outcome as converged,
oscillating (a small-period limit cycle), diverged, or undecided.

The batch engine — :meth:`FlowControlSystem.step_batch` and
:meth:`FlowControlSystem.run_ensemble` — iterates an ``(M, N)`` array
of M rate vectors through the *same* map simultaneously: every stage
(queue laws, congestion measures, signal function, rate rules) is
vectorised across the ensemble axis, and members that converge or
diverge are masked out so finished trajectories stop costing work.
Row ``m`` of the batched run reproduces ``run(initials[m])`` exactly.
"""

from __future__ import annotations

import enum
import math
import time
import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ConvergenceError, RateVectorError, SweepError
from ..faults import FaultEvent, FaultPlan
from ..observability import RunRecord, emit_run_record, is_collecting
from .delays import round_trip_delays, round_trip_delays_batch
from .math_utils import (as_rate_matrix, as_rate_vector, clip_nonnegative,
                         sup_norm)
from .ratecontrol import RateAdjustment, RcpSourceRule
from .rcp import RcpController
from .service import ServiceDiscipline
from .signals import FeedbackScheme, FeedbackStyle, SignalFunction
from .topology import Network

__all__ = ["Outcome", "Trajectory", "EnsembleResult", "FlowControlSystem",
           "HISTORY_POLICIES", "ensemble_buffer_bytes"]

#: Valid ``history`` policies for :meth:`FlowControlSystem.run_ensemble`.
#: ``"full"`` keeps every state of every member (the ``record=True``
#: behaviour), ``"tail"`` keeps only the rolling window period detection
#: needs, ``"none"`` keeps no history at all (cheapest; members that
#: exhaust the step budget classify UNDECIDED because there is no tail
#: to search for a limit cycle).
HISTORY_POLICIES = ("full", "tail", "none")


def ensemble_buffer_bytes(n_members: int, n_connections: int,
                          max_steps: int = 20000, max_period: int = 64,
                          history: str = "tail") -> int:
    """Bytes of trajectory buffers ``run_ensemble`` preallocates.

    Covers the dominant allocations — the ``(M, tcap, N)`` rolling tail
    (``tcap = min(4 * max_period, max_steps + 1)``), the
    ``(M, max_steps + 1, N)`` full-history buffer under
    ``history="full"``, and the ``(M, N)`` finals / initial copies —
    not the transient per-step working set, which scales with
    ``block_size * N`` rather than M.  Use it to choose a ``block_size``
    before committing to a million-member run: the tail and full
    buffers are allocated *per block*, so blocking divides those terms
    by ``M / block_size``.
    """
    if history not in HISTORY_POLICIES:
        raise SweepError(
            f"history must be one of {HISTORY_POLICIES}, got {history!r}")
    itemsize = np.dtype(float).itemsize
    base = 2 * n_members * n_connections * itemsize  # finals + initials
    tcap = min(4 * max_period, max_steps + 1)
    if history == "none":
        return base
    tail = n_members * tcap * n_connections * itemsize
    if history == "tail":
        return base + tail
    full = n_members * (max_steps + 1) * n_connections * itemsize
    return base + tail + full


class Outcome(enum.Enum):
    """How a trajectory of the iterated map ended."""

    CONVERGED = "converged"
    OSCILLATING = "oscillating"
    DIVERGED = "diverged"
    UNDECIDED = "undecided"


@dataclass
class Trajectory:
    """A recorded run of the synchronous dynamics.

    Attributes:
        history: array of shape ``(steps + 1, N)``; row 0 is the initial
            condition and the last row the final state.
        outcome: the classification of the run.
        period: detected cycle length when ``outcome`` is OSCILLATING,
            1 when CONVERGED, otherwise ``None``.
        steps: number of map applications performed.
        telemetry: the :class:`~repro.observability.RunRecord` of the
            run when telemetry was collected, otherwise ``None``.
        fault_events: the :class:`~repro.faults.FaultEvent` s a
            non-empty :class:`~repro.faults.FaultPlan` injected, in
            step order; ``None`` for fault-free runs.
        structural_events: the
            :class:`~repro.chaos.structural.StructuralEvent` window
            transitions a non-empty
            :class:`~repro.chaos.structural.StructuralFaultPlan`
            produced, in step order; ``None`` for structurally clean
            runs.
    """

    history: np.ndarray
    outcome: Outcome
    period: Optional[int]
    steps: int
    telemetry: Optional[RunRecord] = None
    fault_events: Optional[List[FaultEvent]] = None
    structural_events: Optional[list] = None

    @property
    def initial(self) -> np.ndarray:
        return self.history[0]

    @property
    def final(self) -> np.ndarray:
        return self.history[-1]

    def tail(self, k: int) -> np.ndarray:
        """The last ``k`` states (for time-average / attractor summaries)."""
        if k < 1:
            raise RateVectorError(f"tail length must be >= 1, got {k!r}")
        return self.history[-k:]


@dataclass
class EnsembleResult:
    """The outcome of a batched :meth:`FlowControlSystem.run_ensemble`.

    Attributes:
        finals: array of shape ``(M, N)`` — the last state of each
            ensemble member (row ``m`` equals ``run(initials[m]).final``).
        outcomes: per-member :class:`Outcome`, length M.
        periods: per-member detected period (1 when converged, the cycle
            length when oscillating, ``None`` otherwise).
        steps: per-member number of map applications performed.
        initials: the ``(M, N)`` initial conditions.
        histories: when the ensemble was run with ``record=True`` (or
            ``history="full"``), the per-member trajectories (each
            ``(steps_m + 1, N)``).  These are *views* into the block
            history buffer, not copies — zero-copy for the common
            "wrap in a Trajectory and read" pattern; call ``.copy()``
            on one before mutating it in place.  ``None`` otherwise.
        telemetry: the :class:`~repro.observability.RunRecord` of the
            ensemble when telemetry was collected, otherwise ``None``.
        fault_events: the :class:`~repro.faults.FaultEvent` s a
            non-empty :class:`~repro.faults.FaultPlan` injected across
            all members, ordered by (step, member); ``None`` for
            fault-free runs.
        structural_events: the
            :class:`~repro.chaos.structural.StructuralEvent` window
            transitions across all members, ordered by (step, member);
            ``None`` for structurally clean runs.
        history_policy: the history retention policy the run used
            (``"full"``, ``"tail"``, or ``"none"``).
        block_size: the member block size when the ensemble was run
            blocked, ``None`` when it ran as a single block.
    """

    finals: np.ndarray
    outcomes: List[Outcome]
    periods: List[Optional[int]]
    steps: np.ndarray
    initials: np.ndarray
    histories: Optional[List[np.ndarray]] = None
    telemetry: Optional[RunRecord] = None
    fault_events: Optional[List[FaultEvent]] = None
    structural_events: Optional[list] = None
    history_policy: str = "tail"
    block_size: Optional[int] = None

    def __len__(self) -> int:
        return self.finals.shape[0]

    def outcome_mask(self, outcome: Outcome) -> np.ndarray:
        """Boolean member mask for one outcome class."""
        return np.array([o is outcome for o in self.outcomes])

    def outcome_counts(self) -> dict:
        """``{outcome: member count}`` over the ensemble."""
        counts = {o: 0 for o in Outcome}
        for o in self.outcomes:
            counts[o] += 1
        return counts

    def trajectory(self, m: int) -> Trajectory:
        """Member ``m`` as a scalar-path :class:`Trajectory`.

        Requires the ensemble to have been run with ``record=True``.
        """
        if self.histories is None:
            raise RateVectorError(
                "run_ensemble(..., record=True) (history='full') is "
                "required to extract per-member trajectories")
        return Trajectory(self.histories[m], self.outcomes[m],
                          self.periods[m], int(self.steps[m]))


class FlowControlSystem:
    """A complete feedback flow control configuration and its dynamics."""

    #: Rates larger than ``DIVERGENCE_FACTOR * max(mu)`` mark divergence.
    DIVERGENCE_FACTOR = 1e6

    def __init__(self, network: Network, discipline: ServiceDiscipline,
                 signal_fn: SignalFunction,
                 rules: Union[RateAdjustment, Sequence[RateAdjustment]],
                 style: FeedbackStyle = FeedbackStyle.INDIVIDUAL,
                 weights=None,
                 controller: Optional[RcpController] = None,
                 backend=None):
        # ``backend`` pins the array backend of the batch engine: a
        # name (resolved through repro.backends.resolve, loud on
        # unknown/unavailable), a Backend object, or None for the
        # session's active backend (numpy unless selected otherwise).
        from .. import backends as _backends
        if backend is None:
            self._backend = _backends.active()
        elif isinstance(backend, _backends.Backend):
            self._backend = backend
        else:
            self._backend = _backends.resolve(backend)
        self._xp = self._backend.xp
        self.network = network
        self.discipline = discipline
        self.scheme = FeedbackScheme(network, discipline, signal_fn, style,
                                     weights=weights)
        n = network.num_connections
        if isinstance(rules, RateAdjustment):
            self.rules: List[RateAdjustment] = [rules] * n
        else:
            self.rules = list(rules)
            if len(self.rules) != n:
                raise RateVectorError(
                    f"need one rule per connection: got {len(self.rules)} "
                    f"rules for {n} connections")
        self._mu_max = max(network.mu(g) for g in network.gateway_names)
        # Batch path: group connection columns by rule object so each
        # distinct rule is applied once per step over all its columns
        # (heterogeneous configurations stay fully vectorised).
        groups: List[tuple] = []
        seen: dict = {}
        for i, rule in enumerate(self.rules):
            key = id(rule)
            if key not in seen:
                seen[key] = len(groups)
                groups.append((rule, [i]))
            else:
                groups[seen[key]][1].append(i)
        self._rule_groups = [(rule, np.asarray(cols, dtype=np.intp))
                             for rule, cols in groups]
        # Router-side control (RCP): per-gateway advertised-rate state
        # replaces the per-source rule map entirely.  Sources must run
        # the degenerate RcpSourceRule so the configuration is explicit
        # about who owns the control law.
        self.controller = controller
        self._bank = None
        has_rcp_sources = any(isinstance(rule, RcpSourceRule)
                              for rule in self.rules)
        if controller is not None:
            if not all(isinstance(rule, RcpSourceRule)
                       for rule in self.rules):
                raise RateVectorError(
                    "a controller-driven system requires every "
                    "connection to run RcpSourceRule (sources adopt "
                    "advertised rates; they do not self-adjust)")
            self._bank = controller.bind(network)
        elif has_rcp_sources:
            raise RateVectorError(
                "RcpSourceRule needs a controller: without one the "
                "dynamics would be the identity map")

    @property
    def controlled(self) -> bool:
        """True when a router-side controller owns the control law."""
        return self._bank is not None

    @property
    def bank(self):
        """The bound per-gateway controller state factory, or ``None``."""
        return self._bank

    @property
    def style(self) -> FeedbackStyle:
        return self.scheme.style

    @property
    def signal_fn(self) -> SignalFunction:
        return self.scheme.signal_fn

    @property
    def homogeneous(self) -> bool:
        """True when every connection runs the same rule object."""
        return all(rule is self.rules[0] for rule in self.rules)

    @property
    def backend(self):
        """The :class:`~repro.backends.Backend` the batch engine uses."""
        return self._backend

    @property
    def xp(self):
        """The array namespace of :attr:`backend`."""
        return self._xp

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def signals(self, rates: np.ndarray) -> np.ndarray:
        """Bottleneck congestion signals ``b_i(r)``."""
        return self.scheme.signals(rates)

    def delays(self, rates: np.ndarray) -> np.ndarray:
        """Round-trip delays ``d_i(r)``."""
        return round_trip_delays(self.network, self.discipline, rates)

    # ------------------------------------------------------------------
    # the map
    # ------------------------------------------------------------------
    def step(self, rates: np.ndarray, faults=None,
             step_index: int = 1, structural=None) -> np.ndarray:
        """One synchronous application of ``F``.

        ``faults`` (a :class:`~repro.faults.FaultState`, obtained from
        :meth:`FaultPlan.start <repro.faults.FaultPlan.start>`)
        perturbs the signal vector the rules observe at this step;
        ``step_index`` is the 1-based step number the injectors see.
        With ``faults=None`` the computation is exactly the fault-free
        map — no extra work, bit-identical results.

        ``structural`` (a
        :class:`~repro.chaos.structural.StructuralFaultState`, obtained
        from :meth:`StructuralFaultPlan.start
        <repro.chaos.structural.StructuralFaultPlan.start>`) resolves
        this step against a possibly damaged topology: signals and
        delays are computed on the degraded network, and connections
        through a blackholed gateway observe the saturated signal
        ``b = 1`` *before* any signal-path faults apply.  While no
        window is active the resolved view is the base network and
        scheme, so the step is bit-identical to the clean map.

        Controller-driven systems carry per-gateway state the rule map
        knows nothing about; use :meth:`step_controlled` (``run`` /
        ``run_ensemble`` dispatch automatically).
        """
        if self._bank is not None:
            raise RateVectorError(
                "system is controller-driven; use step_controlled")
        r = as_rate_vector(rates, n=self.network.num_connections)
        if structural is not None:
            view = structural.resolve(step_index)
            b = view.scheme.signals(r)
            if view.blackholed.size:
                b[view.blackholed] = 1.0
        else:
            b = self.signals(r)
        if faults is not None:
            b = faults.apply(step_index, b)
        if structural is not None:
            d = round_trip_delays(view.network, self.discipline, r)
        else:
            d = self.delays(r)
        new = np.array([
            rule.apply(float(r[i]), float(b[i]), float(d[i]))
            for i, rule in enumerate(self.rules)
        ])
        return clip_nonnegative(new)

    def step_batch(self, rates: np.ndarray, faults=None, members=None,
                   step_index: int = 1, structural=None) -> np.ndarray:
        """One synchronous application of ``F`` to a batch of states.

        ``rates`` is an ``(M, N)`` array of M independent rate vectors
        (a single vector is promoted to a one-row batch); the result has
        the same shape and satisfies
        ``step_batch(R)[m] == step(R[m])`` for every row.

        ``faults`` is a sequence of per-member
        :class:`~repro.faults.FaultState` s indexed by *absolute*
        member number; ``members`` maps each row of ``rates`` to its
        member number (defaults to row order).  Each row's signal
        vector is perturbed by its own member state, so fault streams
        stay aligned with the scalar path even when finished members
        have been masked out of the batch.

        ``structural`` is likewise a sequence of per-member
        :class:`~repro.chaos.structural.StructuralFaultState` s indexed
        by absolute member number.  Rows are grouped by their resolved
        damage signature and each group's signals and delays are
        computed on that group's degraded network in one vectorised
        pass — equal signatures build bit-identical schemes, and every
        per-row stage is row-independent, so grouping preserves
        ``step_batch(R)[m] == step(R[m], structural=state_m)`` exactly.
        """
        if self._bank is not None:
            raise RateVectorError(
                "system is controller-driven; use step_controlled_batch")
        xp = self._xp
        # The xp namespace is only forwarded off the numpy default, so
        # overridable collaborators predating the parameter keep
        # working (the conditional-kwarg seam pattern).
        kw = {} if xp is np else {"xp": xp}
        r = as_rate_matrix(rates, n=self.network.num_connections)
        if structural is None:
            b = self.scheme.signals_batch(r, **kw)
        else:
            rows_m = (list(members) if members is not None
                      else list(range(r.shape[0])))
            views = [structural[m].resolve(step_index) for m in rows_m]
            groups: dict = {}
            for row, view in enumerate(views):
                groups.setdefault(view.key, (view, []))[1].append(row)
            b = np.empty_like(r)
            d = np.empty_like(r)
            for view, row_list in groups.values():
                sel = np.asarray(row_list, dtype=np.intp)
                sub = r[sel]
                bs = view.scheme.signals_batch(sub, **kw)
                if view.blackholed.size:
                    bs[:, view.blackholed] = 1.0
                b[sel] = bs
                d[sel] = round_trip_delays_batch(view.network,
                                                 self.discipline, sub,
                                                 xp=xp)
        if faults is not None:
            rows = members if members is not None else range(r.shape[0])
            for row, m in enumerate(rows):
                b[row] = faults[m].apply(step_index, b[row])
        if structural is None:
            d = round_trip_delays_batch(self.network, self.discipline, r,
                                        xp=xp)
        new = xp.empty_like(r)
        for rule, cols in self._rule_groups:
            new[:, cols] = rule.apply_batch(r[:, cols], b[:, cols],
                                            d[:, cols], **kw)
        return clip_nonnegative(new, xp=xp)

    def step_controlled(self, rates: np.ndarray,
                        state: np.ndarray) -> tuple:
        """One controlled step: gateways update, sources adopt.

        ``state`` is the ``(G,)`` advertised-rate vector (start from
        ``self.bank.initial_state()``).  Returns ``(r_next,
        state_next)`` — gateways observe the offered rates, advance
        their advertised rates, and every source adopts the path
        minimum.
        """
        if self._bank is None:
            raise RateVectorError(
                "system has no controller; use step")
        r = as_rate_vector(rates, n=self.network.num_connections)
        state_next = self._bank.update(r, state)
        return clip_nonnegative(self._bank.advertised(state_next)), \
            state_next

    def step_controlled_batch(self, rates: np.ndarray,
                              state: np.ndarray) -> tuple:
        """Batched :meth:`step_controlled` over ``(M, N)`` rates and
        ``(M, G)`` controller state; row ``m`` is bit-identical to the
        scalar path."""
        if self._bank is None:
            raise RateVectorError(
                "system has no controller; use step_batch")
        xp = self._xp
        kw = {} if xp is np else {"xp": xp}
        r = as_rate_matrix(rates, n=self.network.num_connections)
        state_next = self._bank.update_batch(r, state, **kw)
        return clip_nonnegative(
            self._bank.advertised_batch(state_next, **kw), xp=xp), \
            state_next

    def residual(self, rates: np.ndarray) -> np.ndarray:
        """``F(r) - r``: zero exactly at (truncated) steady states."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        return self.step(r) - r

    def is_steady_state(self, rates: np.ndarray, tol: float = 1e-9) -> bool:
        """True when ``r`` is a fixed point of the truncated map."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        return sup_norm(self.step(r), r) <= tol * max(1.0, float(np.max(r)))

    # ------------------------------------------------------------------
    # trajectories
    # ------------------------------------------------------------------
    def run(self, initial: Sequence[float], max_steps: int = 20000,
            tol: float = 1e-10, settle: int = 5,
            max_period: int = 64,
            telemetry: Optional[bool] = None,
            faults: Optional[FaultPlan] = None,
            fault_member: int = 0,
            structural=None) -> Trajectory:
        """Iterate the map from ``initial`` and classify the outcome.

        Convergence requires ``settle`` consecutive steps with sup-norm
        change below ``tol * max(1, |r|_inf)``.  After the step budget,
        a limit cycle of period ``<= max_period`` is searched for in the
        trajectory tail; finding one yields OSCILLATING, otherwise
        UNDECIDED.  Any non-finite or absurdly large rate yields
        DIVERGED immediately.

        ``telemetry=None`` (the default) records a
        :class:`~repro.observability.RunRecord` — per-iteration
        residuals, mask events, wall time per phase — exactly when an
        :func:`~repro.observability.collect` session is active; pass
        ``True``/``False`` to force it on or off.  The record is
        attached to the returned trajectory and emitted to any active
        sessions.

        ``faults`` injects a :class:`~repro.faults.FaultPlan` into the
        feedback path: each step's signal vector is perturbed before
        the rules see it, and every injected event is recorded on the
        trajectory (and in the run record when telemetry is on).  The
        empty plan (and ``None``) leaves the run bit-identical to the
        fault-free path.  ``fault_member`` selects the plan's RNG
        stream — member ``m`` of a faulted :meth:`run_ensemble`
        reproduces ``run(initials[m], faults=plan, fault_member=m)``.

        ``structural`` injects a
        :class:`~repro.chaos.structural.StructuralFaultPlan`: scheduled
        gateway capacity degradations and blackholes damage the
        topology the dynamics run on (see :meth:`step`), every window
        transition is recorded on the trajectory, and the empty plan
        (and ``None``) keeps the run bit-identical to the clean path.
        ``fault_member`` selects the structural jitter stream too.
        Structural plans compose with signal-path ``faults``; neither
        composes with a router-side controller.
        """
        r = as_rate_vector(initial, n=self.network.num_connections)
        if self._bank is not None and faults is not None \
                and not faults.empty:
            raise SweepError(
                "fault plans perturb the per-source signal path, which "
                "controller-driven systems do not read; faults with a "
                "controller are not supported")
        if self._bank is not None and structural is not None \
                and not structural.empty:
            raise SweepError(
                "structural fault plans damage the per-source "
                "signal/delay path, which controller-driven systems "
                "replace with router-side state; structural faults "
                "with a controller are not supported")
        ctrl = (self._bank.initial_state()
                if self._bank is not None else None)
        fault_state = (faults.start(network=self.network,
                                    member=fault_member)
                       if faults is not None else None)
        structural_state = (structural.start(self, member=fault_member)
                            if structural is not None else None)
        if telemetry is None:
            telemetry = is_collecting()
        rec = RunRecord.begin("run", 1, r.shape[0], max_steps, tol,
                              settle) if telemetry else None
        step_seconds = 0.0
        # Preallocate the whole history buffer.  When the step budget
        # was fully used the buffer is returned as-is (no duplicate);
        # an early exit trims with a copy so the trajectory does not
        # pin max_steps worth of memory through a view.
        history = np.empty((max_steps + 1, r.shape[0]), dtype=float)
        history[0] = r
        quiet = 0
        limit = self.DIVERGENCE_FACTOR * self._mu_max

        def trimmed(steps: int) -> np.ndarray:
            if steps == max_steps:
                return history
            return history[:steps + 1].copy()

        def finish(outcome: Outcome, steps: int) -> Optional[RunRecord]:
            if rec is None:
                return None
            if fault_state is not None:
                for event in fault_state.events:
                    rec.observe_fault_event(*event)
            rec.add_phase("step", step_seconds)
            rec.finish(steps, {outcome.value: 1})
            emit_run_record(rec)
            return rec

        def fault_events() -> Optional[List[FaultEvent]]:
            return fault_state.events if fault_state is not None else None

        def structural_events() -> Optional[list]:
            return (structural_state.events
                    if structural_state is not None else None)

        for step_count in range(1, max_steps + 1):
            if rec is not None:
                t0 = time.perf_counter()
            if ctrl is not None:
                r_next, ctrl = self.step_controlled(r, ctrl)
            elif fault_state is None and structural_state is None:
                r_next = self.step(r)
            else:
                r_next = self.step(r, faults=fault_state,
                                   step_index=step_count,
                                   structural=structural_state)
            if rec is not None:
                step_seconds += time.perf_counter() - t0
            history[step_count] = r_next
            if not np.all(np.isfinite(r_next)) or np.any(r_next > limit):
                if rec is not None:
                    rec.observe_iteration(math.inf, 0, 0, 1)
                    rec.observe_mask_event(step_count, 0, "diverged")
                return Trajectory(trimmed(step_count), Outcome.DIVERGED,
                                  None, step_count,
                                  telemetry=finish(Outcome.DIVERGED,
                                                   step_count),
                                  fault_events=fault_events(),
                                  structural_events=structural_events())
            change = sup_norm(r_next, r)
            scale = max(1.0, float(np.max(r_next)))
            settled = False
            if change <= tol * scale:
                quiet += 1
                settled = quiet >= settle
            else:
                quiet = 0
            if rec is not None:
                rec.observe_iteration(change, 0 if settled else 1,
                                      1 if settled else 0, 0)
            if settled:
                if rec is not None:
                    rec.observe_mask_event(step_count, 0, "converged")
                return Trajectory(trimmed(step_count),
                                  Outcome.CONVERGED, 1, step_count,
                                  telemetry=finish(Outcome.CONVERGED,
                                                   step_count),
                                  fault_events=fault_events(),
                                  structural_events=structural_events())
            r = r_next
        if rec is not None:
            t0 = time.perf_counter()
        period = _detect_period(history, max_period, tol)
        if rec is not None:
            rec.add_phase("period_detection", time.perf_counter() - t0)
        if period is not None:
            return Trajectory(history, Outcome.OSCILLATING, period,
                              max_steps,
                              telemetry=finish(Outcome.OSCILLATING,
                                               max_steps),
                              fault_events=fault_events(),
                              structural_events=structural_events())
        return Trajectory(history, Outcome.UNDECIDED, None, max_steps,
                          telemetry=finish(Outcome.UNDECIDED, max_steps),
                          fault_events=fault_events(),
                          structural_events=structural_events())

    def run_ensemble(self, initials, max_steps: int = 20000,
                     tol: float = 1e-10, settle: int = 5,
                     max_period: int = 64,
                     record: bool = False,
                     telemetry: Optional[bool] = None,
                     faults: Optional[FaultPlan] = None,
                     block_size: Optional[int] = None,
                     history: Optional[str] = None,
                     structural=None) -> EnsembleResult:
        """Iterate the map from a whole batch of initial conditions.

        ``initials`` is an ``(M, N)`` array — M starting rate vectors —
        and every member is evolved under the *same* per-step semantics
        as :meth:`run`: member ``m`` of the result matches
        ``run(initials[m], ...)`` in final state, outcome, step count,
        and period.  All M trajectories advance through one vectorised
        :meth:`step_batch` per step, and members that converge or
        diverge are masked out of the batch so finished trajectories
        stop costing work.  An empty batch (``M = 0``) returns
        immediately with well-shaped empty results.

        ``block_size`` chunks the M axis: members are evolved in
        consecutive blocks of at most ``block_size`` members, so the
        trajectory buffers (and the per-step working set) scale with
        the block, not with M — this is what makes M ~ 10^6 ensembles
        runnable out of core.  Members are independent, so blocked
        execution is *bit-identical* to the one-shot path in finals,
        outcomes, steps, periods, and mask events.  ``None`` (default)
        runs a single block.  ``block_size <= 0`` raises
        :class:`~repro.errors.SweepError`; a block size larger than M
        warns and runs as a single block.

        ``history`` selects how much trajectory state is retained:

        - ``"full"`` — every state of every member; equivalent to (and
          implied by) ``record=True``.  Memory:
          ``block * (max_steps + 1) * N`` floats per block, and the
          returned ``histories`` views keep each block's buffer alive.
        - ``"tail"`` (default) — only the rolling
          ``min(4 * max_period, max_steps + 1)``-state tail that
          limit-cycle detection needs.
        - ``"none"`` — no history at all.  Cheapest; the one semantic
          change is that members exhausting the step budget classify
          UNDECIDED (never OSCILLATING) because there is no tail to
          search for a cycle.

        Invalid policies raise :class:`~repro.errors.SweepError`, as
        does ``record=True`` combined with a conflicting ``history``.
        :func:`ensemble_buffer_bytes` predicts the buffer cost of a
        given (M, N, history, block) combination.

        ``telemetry`` works as in :meth:`run`: ``None`` records a
        :class:`~repro.observability.RunRecord` exactly when a
        :func:`~repro.observability.collect` session is active.  A
        blocked run streams each block's per-iteration reductions into
        the single record (series are concatenated in block order; the
        record's ``n_blocks``/``block_size`` fields say how to cut
        them), and mask events are merged across blocks into the same
        (step, member) order the one-shot path produces.

        ``faults`` works as in :meth:`run`; each member gets its own
        independent fault stream (seeded by the *absolute* member
        index, blocked or not), so member ``m`` reproduces
        ``run(initials[m], faults=plan, fault_member=m)``.  The empty
        plan keeps the fault-free path bit-identical.

        ``structural`` injects a
        :class:`~repro.chaos.structural.StructuralFaultPlan` into every
        member, each with its own jitter stream seeded by the absolute
        member index — member ``m`` reproduces ``run(initials[m],
        structural=plan, fault_member=m)``, blocked or not.  Window
        transitions across all members are collected on the result in
        (step, member) order.  The empty plan keeps the clean path
        bit-identical.
        """
        r0 = as_rate_matrix(initials, n=self.network.num_connections)
        m_total, n = r0.shape
        if self._bank is not None and faults is not None \
                and not faults.empty:
            raise SweepError(
                "fault plans perturb the per-source signal path, which "
                "controller-driven systems do not read; faults with a "
                "controller are not supported")
        if self._bank is not None and structural is not None \
                and not structural.empty:
            raise SweepError(
                "structural fault plans damage the per-source "
                "signal/delay path, which controller-driven systems "
                "replace with router-side state; structural faults "
                "with a controller are not supported")
        history = _resolve_history(record, history)
        record = history == "full"
        block = _resolve_block_size(block_size, m_total)
        fault_states = None
        if faults is not None and not faults.empty:
            fault_states = [faults.start(network=self.network, member=m)
                            for m in range(m_total)]
        structural_states = None
        if structural is not None and not structural.empty:
            structural_states = [structural.start(self, member=m)
                                 for m in range(m_total)]
        limit = self.DIVERGENCE_FACTOR * self._mu_max
        if telemetry is None:
            telemetry = is_collecting()
        rec = RunRecord.begin("ensemble", m_total, n, max_steps, tol,
                              settle) if telemetry else None
        n_blocks = -(-m_total // block) if m_total else 0
        if rec is not None:
            rec.n_blocks = max(n_blocks, 1)
            rec.block_size = block if block_size is not None else None

        outcomes: List[Outcome] = [Outcome.UNDECIDED] * m_total
        periods: List[Optional[int]] = [None] * m_total
        steps = np.full(m_total, 0, dtype=int)
        finals = r0.copy()

        if m_total == 0:
            # An empty ensemble is already finished; do not spin the
            # step loop over empty arrays for max_steps iterations.
            if rec is not None:
                rec.finish(0, {})
                emit_run_record(rec)
            return EnsembleResult(finals=finals, outcomes=outcomes,
                                  periods=periods, steps=steps,
                                  initials=r0,
                                  histories=[] if record else None,
                                  telemetry=rec,
                                  fault_events=(
                                      [] if fault_states is not None
                                      else None),
                                  structural_events=(
                                      [] if structural_states is not None
                                      else None),
                                  history_policy=history,
                                  block_size=None)

        histories: Optional[List[Optional[np.ndarray]]] = \
            [None] * m_total if record else None
        mask_events: List[tuple] = []
        timings = {"step": 0.0, "classify": 0.0, "period": 0.0}
        totals = {"converged": 0, "diverged": 0, "period_ran": 0}
        for base in range(0, m_total, block):
            self._run_ensemble_block(
                r0, base, min(base + block, m_total), max_steps, tol,
                settle, max_period, limit, history, fault_states,
                structural_states, rec,
                outcomes, periods, steps, finals, histories,
                mask_events, timings, totals)

        # Members finish in (step, member) order on the one-shot path;
        # blocked execution discovers the same events block by block,
        # so a (stable) sort restores the identical ordering.
        mask_events.sort(key=lambda e: (e[0], e[1]))
        all_fault_events = None
        if fault_states is not None:
            all_fault_events = [event for state in fault_states
                                for event in state.events]
            all_fault_events.sort(key=lambda e: (e.step, e.member))
        all_structural_events = None
        if structural_states is not None:
            all_structural_events = [event for state in structural_states
                                     for event in state.events]
            all_structural_events.sort(key=lambda e: (e.step, e.member))
        if rec is not None:
            for step_count, member, kind in mask_events:
                rec.observe_mask_event(step_count, member, kind)
            if all_fault_events is not None:
                for event in all_fault_events:
                    rec.observe_fault_event(*event)
            if totals["period_ran"]:
                rec.add_phase("period_detection", timings["period"])
            rec.add_phase("step_batch", timings["step"])
            rec.add_phase("classify", timings["classify"])
            counts = {}
            for o in outcomes:
                counts[o.value] = counts.get(o.value, 0) + 1
            rec.finish(int(np.max(steps)) if m_total else 0, counts)
            emit_run_record(rec)
        return EnsembleResult(finals=finals, outcomes=outcomes,
                              periods=periods, steps=steps,
                              initials=r0, histories=histories,
                              telemetry=rec,
                              fault_events=all_fault_events,
                              structural_events=all_structural_events,
                              history_policy=history,
                              block_size=(block if block_size is not None
                                          else None))

    def _run_ensemble_block(self, r0, base, end, max_steps, tol, settle,
                            max_period, limit, history, fault_states,
                            structural_states,
                            rec, outcomes, periods, steps, finals,
                            histories, mask_events, timings, totals):
        """Evolve members ``base:end`` of ``r0``; write results in place.

        One block of :meth:`run_ensemble`: the per-step loop, masking,
        and period detection over a contiguous member slice, writing
        into the caller's result arrays at absolute member indices and
        appending ``(step, member, kind)`` mask events.  Fault and
        structural states are indexed by absolute member so blocked
        streams match the one-shot path exactly.
        """
        mb = end - base
        n = r0.shape[1]
        block_states = (fault_states[base:end]
                        if fault_states is not None else None)
        block_structural = (structural_states[base:end]
                            if structural_states is not None else None)
        # Rolling tail for period detection: _detect_period probes lags
        # up to max_period over a window of 3 * max_period, so the last
        # 4 * max_period states suffice.
        tcap = min(4 * max_period, max_steps + 1)
        tail = None
        if history != "none":
            tail = np.zeros((mb, tcap, n), dtype=float)
            tail[:, 0] = r0[base:end]
        full = None
        if history == "full":
            full = np.empty((mb, max_steps + 1, n))
            full[:, 0] = r0[base:end]
        quiet = np.zeros(mb, dtype=int)

        idx = np.arange(mb)           # block members still iterating
        r = r0[base:end].copy()       # their current states, compressed
        # Controller state rides alongside r and is masked with it, so
        # finished members stop paying for gateway updates too.
        ctrl = (self._bank.initial_state_batch(mb)
                if self._bank is not None else None)
        for step_count in range(1, max_steps + 1):
            if rec is not None:
                t0 = time.perf_counter()
            if ctrl is not None:
                r_next, ctrl = self.step_controlled_batch(r, ctrl)
            elif block_states is None and block_structural is None:
                r_next = self.step_batch(r)
            else:
                r_next = self.step_batch(r, faults=block_states,
                                         members=idx,
                                         step_index=step_count,
                                         structural=block_structural)
            if rec is not None:
                timings["step"] += time.perf_counter() - t0
                t0 = time.perf_counter()
            if tail is not None:
                tail[idx, step_count % tcap] = r_next
            if full is not None:
                full[idx, step_count] = r_next

            finite = np.all(np.isfinite(r_next), axis=1)
            with np.errstate(invalid="ignore"):
                diverged = ~finite | np.any(r_next > limit, axis=1)
                change = np.max(np.abs(r_next - r), axis=1)
                scale = np.maximum(1.0, np.max(r_next, axis=1))
                within = change <= tol * scale
            quiet_next = np.where(within, quiet[idx] + 1, 0)
            quiet[idx] = quiet_next
            converged = (quiet_next >= settle) & ~diverged
            done = diverged | converged

            if np.any(done):
                done_members = idx[done]
                finals[base + done_members] = r_next[done]
                steps[base + done_members] = step_count
                for m, is_div in zip(done_members, diverged[done]):
                    member = base + int(m)
                    if is_div:
                        outcomes[member] = Outcome.DIVERGED
                        totals["diverged"] += 1
                    else:
                        outcomes[member] = Outcome.CONVERGED
                        periods[member] = 1
                        totals["converged"] += 1
                    mask_events.append(
                        (step_count, member,
                         "diverged" if is_div else "converged"))
                keep = ~done
                idx = idx[keep]
                r = r_next[keep]
                if ctrl is not None:
                    ctrl = ctrl[keep]
                if rec is not None:
                    finite_changes = change[keep][np.isfinite(change[keep])]
                    rec.observe_iteration(
                        float(np.max(finite_changes))
                        if finite_changes.size else math.inf,
                        int(idx.size), totals["converged"],
                        totals["diverged"])
                    timings["classify"] += time.perf_counter() - t0
                if idx.size == 0:
                    break
            else:
                r = r_next
                if rec is not None:
                    rec.observe_iteration(float(np.max(change)),
                                          int(idx.size),
                                          totals["converged"],
                                          totals["diverged"])
                    timings["classify"] += time.perf_counter() - t0
        else:
            # Members that exhausted the step budget: reconstruct the
            # ordered tail from the ring buffer and look for a cycle
            # (skipped — UNDECIDED — under history="none").
            finals[base + idx] = r
            steps[base + idx] = max_steps
            if tail is not None:
                if rec is not None:
                    t0 = time.perf_counter()
                start = ((max_steps + 1) % tcap
                         if max_steps + 1 > tcap else 0)
                for m in idx:
                    ordered = np.roll(tail[m], -start, axis=0)
                    period = _detect_period(ordered, max_period, tol,
                                            total_len=max_steps + 1)
                    if period is not None:
                        outcomes[base + m] = Outcome.OSCILLATING
                        periods[base + m] = period
                if rec is not None:
                    timings["period"] += time.perf_counter() - t0
                    totals["period_ran"] += 1

        if full is not None:
            # Views, not copies: each member's trajectory window into
            # the block buffer (see EnsembleResult.histories).
            for m in range(mb):
                histories[base + m] = full[m, :steps[base + m] + 1]

    def solve(self, initial: Sequence[float], **kwargs) -> np.ndarray:
        """Run to convergence and return the steady state; raise otherwise."""
        traj = self.run(initial, **kwargs)
        if traj.outcome is not Outcome.CONVERGED:
            raise ConvergenceError(
                f"dynamics did not converge (outcome: {traj.outcome.value})")
        return traj.final


def _resolve_history(record: bool, history: Optional[str]) -> str:
    """Resolve the ``record``/``history`` pair to one retention policy."""
    if history is None:
        return "full" if record else "tail"
    if history not in HISTORY_POLICIES:
        raise SweepError(
            f"history must be one of {HISTORY_POLICIES}, got {history!r}")
    if record and history != "full":
        raise SweepError(
            f"record=True keeps full histories and conflicts with "
            f"history={history!r}; drop one of the two")
    return history


def _resolve_block_size(block_size, m_total: int) -> int:
    """Validate ``block_size`` and clamp it to the ensemble size."""
    if block_size is None:
        return max(m_total, 1)
    if isinstance(block_size, bool) or \
            not isinstance(block_size, (int, np.integer)):
        raise SweepError(
            f"block_size must be a positive integer, got {block_size!r}")
    if block_size <= 0:
        raise SweepError(f"block_size must be >= 1, got {block_size}")
    if m_total and block_size > m_total:
        warnings.warn(
            f"block_size={block_size} exceeds the ensemble size "
            f"M={m_total}; running as a single block",
            RuntimeWarning, stacklevel=3)
        return m_total
    return int(block_size)


def _detect_period(history: np.ndarray, max_period: int, tol: float,
                   total_len: int = None) -> Optional[int]:
    """Smallest period ``p >= 2`` such that the tail repeats with lag p.

    ``history`` may be just the trajectory tail (at least the last
    ``4 * max_period`` states); pass ``total_len`` as the true number of
    recorded states so the window-length guard matches the full-history
    behaviour.
    """
    steps = history.shape[0] if total_len is None else total_len
    for p in range(2, max_period + 1):
        window = 3 * p
        if steps < window + p:
            return None
        recent = history[-window:]
        lagged = history[-window - p:-p]
        scale = max(1.0, float(np.max(np.abs(recent))))
        if np.max(np.abs(recent - lagged)) <= 1e3 * tol * scale:
            return p
    return None
