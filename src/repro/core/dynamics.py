"""Synchronous rate-adjustment dynamics ``r <- F(r)`` (Section 2.3.2).

:class:`FlowControlSystem` bundles a network, a gateway service
discipline, a congestion-signal function, a feedback style, and one
rate-adjustment rule per connection (heterogeneity is first-class — it
is the subject of the robustness results).  One synchronous step is

    ``r_i <- max(0, r_i + f_i(r_i, b_i(r), d_i(r)))``

with queue lengths assumed instantly equilibrated to the current rates,
as in the model.  :meth:`FlowControlSystem.run` iterates the map,
records the trajectory, and classifies the outcome as converged,
oscillating (a small-period limit cycle), diverged, or undecided.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ConvergenceError, RateVectorError
from .delays import round_trip_delays
from .math_utils import as_rate_vector, clip_nonnegative, sup_norm
from .ratecontrol import RateAdjustment
from .service import ServiceDiscipline
from .signals import FeedbackScheme, FeedbackStyle, SignalFunction
from .topology import Network

__all__ = ["Outcome", "Trajectory", "FlowControlSystem"]


class Outcome(enum.Enum):
    """How a trajectory of the iterated map ended."""

    CONVERGED = "converged"
    OSCILLATING = "oscillating"
    DIVERGED = "diverged"
    UNDECIDED = "undecided"


@dataclass
class Trajectory:
    """A recorded run of the synchronous dynamics.

    Attributes:
        history: array of shape ``(steps + 1, N)``; row 0 is the initial
            condition and the last row the final state.
        outcome: the classification of the run.
        period: detected cycle length when ``outcome`` is OSCILLATING,
            1 when CONVERGED, otherwise ``None``.
        steps: number of map applications performed.
    """

    history: np.ndarray
    outcome: Outcome
    period: Optional[int]
    steps: int

    @property
    def initial(self) -> np.ndarray:
        return self.history[0]

    @property
    def final(self) -> np.ndarray:
        return self.history[-1]

    def tail(self, k: int) -> np.ndarray:
        """The last ``k`` states (for time-average / attractor summaries)."""
        if k < 1:
            raise RateVectorError(f"tail length must be >= 1, got {k!r}")
        return self.history[-k:]


class FlowControlSystem:
    """A complete feedback flow control configuration and its dynamics."""

    #: Rates larger than ``DIVERGENCE_FACTOR * max(mu)`` mark divergence.
    DIVERGENCE_FACTOR = 1e6

    def __init__(self, network: Network, discipline: ServiceDiscipline,
                 signal_fn: SignalFunction,
                 rules: Union[RateAdjustment, Sequence[RateAdjustment]],
                 style: FeedbackStyle = FeedbackStyle.INDIVIDUAL,
                 weights=None):
        self.network = network
        self.discipline = discipline
        self.scheme = FeedbackScheme(network, discipline, signal_fn, style,
                                     weights=weights)
        n = network.num_connections
        if isinstance(rules, RateAdjustment):
            self.rules: List[RateAdjustment] = [rules] * n
        else:
            self.rules = list(rules)
            if len(self.rules) != n:
                raise RateVectorError(
                    f"need one rule per connection: got {len(self.rules)} "
                    f"rules for {n} connections")
        self._mu_max = max(network.mu(g) for g in network.gateway_names)

    @property
    def style(self) -> FeedbackStyle:
        return self.scheme.style

    @property
    def signal_fn(self) -> SignalFunction:
        return self.scheme.signal_fn

    @property
    def homogeneous(self) -> bool:
        """True when every connection runs the same rule object."""
        return all(rule is self.rules[0] for rule in self.rules)

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def signals(self, rates: np.ndarray) -> np.ndarray:
        """Bottleneck congestion signals ``b_i(r)``."""
        return self.scheme.signals(rates)

    def delays(self, rates: np.ndarray) -> np.ndarray:
        """Round-trip delays ``d_i(r)``."""
        return round_trip_delays(self.network, self.discipline, rates)

    # ------------------------------------------------------------------
    # the map
    # ------------------------------------------------------------------
    def step(self, rates: np.ndarray) -> np.ndarray:
        """One synchronous application of ``F``."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        b = self.signals(r)
        d = self.delays(r)
        new = np.array([
            rule.apply(float(r[i]), float(b[i]), float(d[i]))
            for i, rule in enumerate(self.rules)
        ])
        return clip_nonnegative(new)

    def residual(self, rates: np.ndarray) -> np.ndarray:
        """``F(r) - r``: zero exactly at (truncated) steady states."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        return self.step(r) - r

    def is_steady_state(self, rates: np.ndarray, tol: float = 1e-9) -> bool:
        """True when ``r`` is a fixed point of the truncated map."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        return sup_norm(self.step(r), r) <= tol * max(1.0, float(np.max(r)))

    # ------------------------------------------------------------------
    # trajectories
    # ------------------------------------------------------------------
    def run(self, initial: Sequence[float], max_steps: int = 20000,
            tol: float = 1e-10, settle: int = 5,
            max_period: int = 64) -> Trajectory:
        """Iterate the map from ``initial`` and classify the outcome.

        Convergence requires ``settle`` consecutive steps with sup-norm
        change below ``tol * max(1, |r|_inf)``.  After the step budget,
        a limit cycle of period ``<= max_period`` is searched for in the
        trajectory tail; finding one yields OSCILLATING, otherwise
        UNDECIDED.  Any non-finite or absurdly large rate yields
        DIVERGED immediately.
        """
        r = as_rate_vector(initial, n=self.network.num_connections)
        history = [r.copy()]
        quiet = 0
        limit = self.DIVERGENCE_FACTOR * self._mu_max
        for step_count in range(1, max_steps + 1):
            r_next = self.step(r)
            history.append(r_next.copy())
            if not np.all(np.isfinite(r_next)) or np.any(r_next > limit):
                return Trajectory(np.array(history), Outcome.DIVERGED,
                                  None, step_count)
            change = sup_norm(r_next, r)
            scale = max(1.0, float(np.max(r_next)))
            if change <= tol * scale:
                quiet += 1
                if quiet >= settle:
                    return Trajectory(np.array(history), Outcome.CONVERGED,
                                      1, step_count)
            else:
                quiet = 0
            r = r_next
        arr = np.array(history)
        period = _detect_period(arr, max_period, tol)
        if period is not None:
            return Trajectory(arr, Outcome.OSCILLATING, period, max_steps)
        return Trajectory(arr, Outcome.UNDECIDED, None, max_steps)

    def solve(self, initial: Sequence[float], **kwargs) -> np.ndarray:
        """Run to convergence and return the steady state; raise otherwise."""
        traj = self.run(initial, **kwargs)
        if traj.outcome is not Outcome.CONVERGED:
            raise ConvergenceError(
                f"dynamics did not converge (outcome: {traj.outcome.value})")
        return traj.final


def _detect_period(history: np.ndarray, max_period: int,
                   tol: float) -> Optional[int]:
    """Smallest period ``p >= 2`` such that the tail repeats with lag p."""
    steps = history.shape[0]
    for p in range(2, max_period + 1):
        window = 3 * p
        if steps < window + p:
            return None
        recent = history[-window:]
        lagged = history[-window - p:-p]
        scale = max(1.0, float(np.max(np.abs(recent))))
        if np.max(np.abs(recent - lagged)) <= 1e3 * tol * scale:
            return p
    return None
