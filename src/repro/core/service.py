"""Service-discipline abstraction (paper Section 2.2).

A service discipline is represented, exactly as in the paper, by its
steady-state mean queue-length function ``Q(r)``: given the vector of
Poisson sending rates ``r`` of the connections sharing a gateway with
exponential service rate ``mu``, ``Q(r)`` returns the vector of mean
per-connection queue lengths (number of packets in the system, including
the one in service).

The paper requires every discipline to be

* **symmetric** — permuting ``r`` permutes ``Q`` the same way;
* **time-scale invariant** — ``Q`` depends only on ``r / mu``;
* **monotone** — ``dQ_i/dr_i >= 0`` and ``Q_i > Q_j  <=>  r_i > r_j``;

and every *nonstalling* discipline to conserve the total queue:
``sum_i Q_i = g(sum_i r_i / mu)`` with ``g(x) = x / (1 - x)``.

Overload is representable: when the relevant cumulative utilisation
reaches 1 the affected queues are ``inf`` (no steady state), and the
congestion-signal layer maps ``inf`` to the maximal signal 1.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from ..errors import RateVectorError
from .math_utils import as_rate_vector, g

__all__ = ["ServiceDiscipline", "PreemptivePriority"]


class ServiceDiscipline(abc.ABC):
    """Abstract queue-length law ``Q(r)`` of a gateway service discipline."""

    #: Short human-readable identifier (e.g. ``"fifo"``, ``"fair-share"``).
    name: str = "abstract"

    @abc.abstractmethod
    def queue_lengths(self, rates: Sequence[float],
                      mu: float) -> np.ndarray:
        """Mean per-connection queue lengths ``Q_i(r)`` at service rate ``mu``.

        Args:
            rates: nonnegative finite sending rates, one per connection.
            mu: gateway service rate, strictly positive.

        Returns:
            Array of the same length as ``rates``.  Entries are ``inf``
            where the discipline admits no steady state for that
            connection (overload), and exactly ``0.0`` where the rate
            is ``0``.
        """

    def queue_lengths_batch(self, rates: np.ndarray,
                            mu: float, xp=None) -> np.ndarray:
        """Queue lengths for a batch of rate vectors at once.

        ``rates`` has shape ``(M, n)`` — M independent rate vectors over
        the same ``n`` connections — and the result matches it row for
        row: ``queue_lengths_batch(R, mu)[m] == queue_lengths(R[m], mu)``.
        The base implementation loops over the batch; disciplines with a
        vectorisable queue law override it (see :class:`~repro.core.fifo.
        Fifo` and :class:`~repro.core.fairshare.FairShare`).

        ``xp`` selects the array namespace (numpy when ``None``).
        Callers forward it only for non-numpy backends, so overrides
        without the parameter keep working on the default path.
        """
        xp = np if xp is None else xp
        mat = xp.asarray(rates, dtype=float)
        if mat.ndim != 2:
            raise RateVectorError(
                f"rate batch must be 2-D, got shape {mat.shape}")
        out = xp.empty_like(mat)
        for m in range(mat.shape[0]):
            out[m] = self.queue_lengths(mat[m], mu)
        return out

    def total_queue(self, rates: Sequence[float], mu: float) -> float:
        """Total mean queue ``sum_i Q_i``.

        For any nonstalling discipline this equals ``g(rho_total)``; the
        default implementation sums :meth:`queue_lengths` so subclasses
        stay honest.
        """
        return float(np.sum(self.queue_lengths(rates, mu)))

    def delays(self, rates: Sequence[float], mu: float) -> np.ndarray:
        """Mean per-packet sojourn times at this gateway, by Little's law.

        ``delay_i = Q_i / r_i``; a connection with zero rate experiences
        the delay it *would* see on its next packet, which we approximate
        by the limit ``r_i -> 0`` computed with a tiny probe rate.
        """
        r = as_rate_vector(rates)
        _check_mu(mu)
        q = self.queue_lengths(r, mu)
        out = np.empty_like(q)
        positive = r > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            out[positive] = q[positive] / r[positive]
        if np.any(~positive):
            probe = r.copy()
            eps = mu * 1e-9
            probe[~positive] = eps
            q_probe = self.queue_lengths(probe, mu)
            out[~positive] = q_probe[~positive] / eps
        return out

    def delays_batch(self, rates: np.ndarray, mu: float,
                     xp=None) -> np.ndarray:
        """Batched per-packet sojourn times: row ``m`` equals
        ``delays(rates[m], mu)``.

        Mirrors :meth:`delays` exactly, including the tiny-probe-rate
        treatment of zero-rate connections.  ``xp`` works as in
        :meth:`queue_lengths_batch` (forwarded to it only when it is
        not numpy, protecting overrides without the parameter).
        """
        xp = np if xp is None else xp
        kw = {} if xp is np else {"xp": xp}
        r = xp.asarray(rates, dtype=float)
        if r.ndim != 2:
            raise RateVectorError(
                f"rate batch must be 2-D, got shape {r.shape}")
        _check_mu(mu)
        q = self.queue_lengths_batch(r, mu, **kw)
        out = xp.empty_like(q)
        positive = r > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            out[positive] = q[positive] / r[positive]
        if xp.any(~positive):
            probe = r.copy()
            eps = mu * 1e-9
            probe[~positive] = eps
            q_probe = self.queue_lengths_batch(probe, mu, **kw)
            out[~positive] = q_probe[~positive] / eps
        return out

    def __repr__(self):
        return f"{type(self).__name__}()"


def _check_mu(mu: float) -> None:
    if not (math.isfinite(mu) and mu > 0):
        raise RateVectorError(f"service rate must be finite and positive, "
                              f"got {mu!r}")


class PreemptivePriority(ServiceDiscipline):
    """Preemptive-resume priority service with a *fixed* class order.

    Connection ``priority_order[0]`` has the highest priority, and so on.
    With identical exponential service times, classes ``1..k`` jointly
    behave as an M/M/1 at their cumulative load (lower classes are
    invisible to them), so the mean number in system of class ``k`` is
    ``L_k = g(sigma_k) - g(sigma_{k-1})`` with
    ``sigma_k = sum_{j<=k} rho_j``.

    This is both a useful baseline discipline in its own right (it is
    maximally *unfair* to low-priority connections) and the building
    block from which Fair Share is assembled via substreams.
    """

    name = "preemptive-priority"

    def __init__(self, priority_order: Sequence[int]):
        order = list(priority_order)
        if sorted(order) != list(range(len(order))):
            raise RateVectorError(
                f"priority_order must be a permutation of 0..N-1, "
                f"got {priority_order!r}")
        self._order = tuple(order)

    @property
    def priority_order(self):
        return self._order

    def queue_lengths(self, rates, mu):
        r = as_rate_vector(rates, n=len(self._order))
        _check_mu(mu)
        rho = r / mu
        q = np.zeros_like(r)
        sigma_prev = 0.0
        g_prev = 0.0
        for idx in self._order:
            sigma = sigma_prev + rho[idx]
            g_now = g(sigma)
            q[idx] = g_now - g_prev if rho[idx] > 0 else 0.0
            if math.isinf(g_now) and math.isinf(g_prev) and rho[idx] > 0:
                q[idx] = math.inf
            sigma_prev, g_prev = sigma, g_now
        return q
