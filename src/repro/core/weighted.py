"""Weighted Fair Share — the natural generalisation of Section 2.2.

The paper's Fair Share discipline protects connections by splitting
each Poisson stream into rate-ordered substreams served at preemptive
priority (Table 1).  Real networks often want *weighted* protection —
a backbone trunk deserves a larger guaranteed slice than a dial-up
host.  This module generalises the construction to positive weights
``phi_i`` (equal weights recover the paper's discipline exactly):

* order connections by the *normalised* rate ``v_i = r_i / phi_i``;
* class ``k`` (``v_(k)`` the k-th smallest normalised rate) carries,
  from every connection ``j`` with ``v_j >= v_(k)``, a substream of
  rate ``phi_j (v_(k) - v_(k-1))``;
* classes are served at preemptive-resume priority, so classes
  ``1..k`` jointly form an M/M/1 at cumulative load
  ``sigma_k = (1/mu) sum_m min(r_m, phi_m v_(k))``, and the class
  occupancy ``L_k = g(sigma_k) - g(sigma_{k-1})`` is split among the
  participants in proportion to their weights.

The induced queue law keeps the structural properties Theorems 4 and 5
rely on, in weighted form:

* **triangularity** — ``Q_i`` depends only on rates with
  ``v_m <= v_i``;
* **weighted robustness** — ``Q_i <= r_i / (mu - (Phi / phi_i) r_i)``
  where ``Phi = sum_m phi_m`` (each connection is guaranteed the
  service of a dedicated ``mu phi_i / Phi`` slice);
* **conservation** — ``sum_i Q_i = g(rho_total)``.

Note the discipline is deliberately *not* symmetric in the paper's
sense: permuting rates while holding weights fixed treats connections
differently — that asymmetry is the feature.  The companion allocator
:func:`weighted_max_min_allocation` water-fills normalised rates, so a
TSI individual feedback scheme over weighted gateways converges to the
weighted-fair point.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..errors import RateVectorError, TopologyError
from .math_utils import as_rate_vector, g
from .service import ServiceDiscipline, _check_mu
from .topology import Network

__all__ = ["WeightedFairShare", "weighted_max_min_allocation",
           "weighted_reservation_floor"]


def _check_weights(weights: Sequence[float], n: int = None) -> np.ndarray:
    phi = np.asarray(weights, dtype=float)
    if phi.ndim != 1:
        raise RateVectorError(f"weights must be 1-D, got {phi.shape}")
    if n is not None and phi.shape[0] != n:
        raise RateVectorError(
            f"need {n} weights, got {phi.shape[0]}")
    if not np.all(np.isfinite(phi)) or np.any(phi <= 0):
        raise RateVectorError("weights must be finite and positive")
    return phi


class WeightedFairShare(ServiceDiscipline):
    """Fair Share with per-connection weights ``phi`` (see module doc).

    The weight vector is indexed like the local rate vector handed to
    :meth:`queue_lengths`.  ``WeightedFairShare(np.ones(n))`` is
    numerically identical to :class:`~repro.core.fairshare.FairShare`.
    """

    name = "weighted-fair-share"

    def __init__(self, weights: Sequence[float]):
        self._phi = _check_weights(weights)

    @property
    def weights(self) -> np.ndarray:
        return self._phi.copy()

    def queue_lengths(self, rates, mu):
        r = as_rate_vector(rates, n=self._phi.shape[0])
        _check_mu(mu)
        phi = self._phi
        n = r.shape[0]
        v = r / phi
        order = np.argsort(v, kind="stable")
        q = np.zeros(n, dtype=float)
        sigma_prev = 0.0
        g_prev = 0.0
        overloaded = False
        for k in range(n):
            vk = v[order[k]]
            # Cumulative load of classes 1..k.
            sigma = float(np.sum(np.minimum(r, phi * vk))) / mu
            if overloaded:
                q[order[k]] = math.inf if r[order[k]] > 0 else 0.0
                continue
            g_now = g(sigma)
            if math.isinf(g_now):
                overloaded = True
                q[order[k]] = math.inf if r[order[k]] > 0 else 0.0
                continue
            level = g_now - g_prev
            # Weight present in class k: every connection with
            # v_m >= v_k (ties included).
            participants = v >= vk - 1e-15
            weight_in_class = float(np.sum(phi[participants]))
            if level > 0 and weight_in_class > 0:
                # Everyone at or above this level, including later
                # ranks, accrues a share of this class.
                share = level / weight_in_class
                q[participants] += share * phi[participants]
            sigma_prev, g_prev = sigma, g_now
        q[r == 0.0] = 0.0
        return q


# A subtlety of the loop above: ties in v would double-count a class if
# two equal normalised rates produced two zero-width "levels".  Zero
# width means `level == 0`, contributing nothing, so ties are safe.


def weighted_max_min_allocation(network: Network,
                                capacities: Mapping[str, float],
                                weights: Sequence[float]) -> np.ndarray:
    """Weighted max-min fair rates under gateway capacities.

    Water-fill *normalised* rates: repeatedly saturate the gateway with
    the smallest ``capacity / active-weight`` ratio; its unfrozen
    connections get ``r_i = phi_i * (capacity / active-weight)``.
    Equal weights reduce to
    :func:`repro.core.fairness.max_min_allocation`.
    """
    phi = _check_weights(weights, n=network.num_connections)
    missing = set(network.gateway_names) - set(capacities)
    if missing:
        raise TopologyError(
            f"capacities missing for gateways: {sorted(missing)!r}")
    residual = {}
    for gname in network.gateway_names:
        cap = float(capacities[gname])
        if not (math.isfinite(cap) and cap > 0):
            raise RateVectorError(
                f"capacity of {gname!r} must be finite and positive")
        residual[gname] = cap
    active_weight = {
        g: float(sum(phi[i] for i in network.connections_at(g)))
        for g in network.gateway_names}

    n = network.num_connections
    rates = np.zeros(n, dtype=float)
    assigned = np.zeros(n, dtype=bool)
    while not np.all(assigned):
        live = [g for g in network.gateway_names if active_weight[g] > 0]
        if not live:
            raise TopologyError("unassigned connections without any "
                                "gateway — inconsistent topology")
        bottleneck = min(live,
                         key=lambda g: residual[g] / active_weight[g])
        level = residual[bottleneck] / active_weight[bottleneck]
        members = [i for i in network.connections_at(bottleneck)
                   if not assigned[i]]
        for i in members:
            rates[i] = level * phi[i]
            assigned[i] = True
            for gname in network.gamma(i):
                residual[gname] = max(0.0, residual[gname] - rates[i])
                active_weight[gname] -= phi[i]
    return rates


def weighted_reservation_floor(network: Network, rho_ss: float,
                               weights: Sequence[float]) -> np.ndarray:
    """Reservation floor with weighted slices ``mu phi_i / Phi^a``.

    The weighted analogue of Theorem 5's guarantee: connection ``i``
    alone on its reserved slices settles at
    ``min_a rho_ss * mu^a * phi_i / Phi^a`` where ``Phi^a`` is the
    total weight at gateway ``a``.
    """
    phi = _check_weights(weights, n=network.num_connections)
    if not (0.0 < rho_ss < 1.0):
        raise RateVectorError(
            f"steady utilisation must lie in (0, 1), got {rho_ss!r}")
    floor = np.zeros(network.num_connections, dtype=float)
    for i in range(network.num_connections):
        floor[i] = min(
            rho_ss * network.mu(g) * phi[i]
            / sum(phi[j] for j in network.connections_at(g))
            for g in network.gamma(i))
    return floor
