"""Fairness definitions and the max-min water-filling allocator.

The paper's fairness notion (Section 2.4.2), specialised to sources that
always consume whatever flow control allows: a steady state is **fair**
when, at each bottleneck gateway ``a`` of each connection ``i``, no
connection through ``a`` sends faster than ``i`` — throughput is split
evenly among the connections for whom the gateway is the bottleneck.

The unique fair steady state of a TSI scheme is constructed by the
water-filling procedure in the proof of Theorem 2, which is exactly
max-min fair allocation with per-gateway capacities ``rho_ss * mu^a``
(:func:`max_min_allocation`).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

import numpy as np

from ..errors import RateVectorError, TopologyError
from .math_utils import as_rate_vector
from .signals import FeedbackScheme
from .topology import Network

__all__ = [
    "is_fair",
    "unfairness",
    "jain_index",
    "max_min_allocation",
]


def is_fair(scheme: FeedbackScheme, rates: Sequence[float],
            tol: float = 1e-7) -> bool:
    """Paper fairness: no faster sender at any of ``i``'s bottlenecks."""
    return unfairness(scheme, rates) <= tol


def unfairness(scheme: FeedbackScheme, rates: Sequence[float]) -> float:
    """The largest rate excess ``r_j - r_i`` over ``i``'s bottlenecks.

    Zero (up to roundoff) exactly when the allocation is fair in the
    paper's sense; positive values quantify how badly fairness fails.
    """
    net = scheme.network
    r = as_rate_vector(rates, n=net.num_connections)
    bottlenecks = scheme.bottlenecks(r)
    worst = 0.0
    for i in range(net.num_connections):
        for gname in bottlenecks[i]:
            peers = net.connections_at(gname)
            excess = max(float(r[j]) for j in peers) - float(r[i])
            worst = max(worst, excess)
    return worst


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index ``(sum r)^2 / (N sum r^2)`` in ``(0, 1]``.

    1 means perfectly equal rates; ``1/N`` means one connection holds
    everything.  A convenient scalar summary for the manifold and
    heterogeneity experiments (it is not the paper's fairness
    criterion, which is :func:`is_fair`).
    """
    r = as_rate_vector(rates)
    total = float(np.sum(r))
    if total == 0.0:
        return 1.0
    return total * total / (r.shape[0] * float(np.sum(r * r)))


def max_min_allocation(network: Network,
                       capacities: Mapping[str, float]) -> np.ndarray:
    """Max-min fair rates under per-gateway capacity constraints.

    Repeatedly saturate the gateway offering the smallest equal share
    ``capacity / active-connections``, freeze its connections at that
    share, and subtract their rates from every gateway they cross — the
    procedure in the proof of Theorem 2 (with capacities
    ``rho_ss * mu^a`` it yields the fair steady state).

    Args:
        network: the topology.
        capacities: capacity per gateway name; every gateway must appear
            and have a positive finite capacity.

    Returns:
        The allocated rate vector, indexed like the network connections.
    """
    missing = set(network.gateway_names) - set(capacities)
    if missing:
        raise TopologyError(
            f"capacities missing for gateways: {sorted(missing)!r}")
    for gname in network.gateway_names:
        cap = float(capacities[gname])
        if not (math.isfinite(cap) and cap > 0):
            raise RateVectorError(
                f"capacity of {gname!r} must be finite and positive, "
                f"got {capacities[gname]!r}")

    n = network.num_connections
    residual: Dict[str, float] = {g: float(capacities[g])
                                  for g in network.gateway_names}
    active_count: Dict[str, int] = {g: network.n_at(g)
                                    for g in network.gateway_names}
    rates = np.zeros(n, dtype=float)
    assigned = np.zeros(n, dtype=bool)

    while not np.all(assigned):
        live = [g for g in network.gateway_names if active_count[g] > 0]
        if not live:
            raise TopologyError("unassigned connections without any "
                                "gateway — inconsistent topology")
        bottleneck = min(live, key=lambda g: residual[g] / active_count[g])
        share = residual[bottleneck] / active_count[bottleneck]
        members = [i for i in network.connections_at(bottleneck)
                   if not assigned[i]]
        for i in members:
            rates[i] = share
            assigned[i] = True
            for gname in network.gamma(i):
                residual[gname] = max(0.0, residual[gname] - share)
                active_count[gname] -= 1
    return rates
