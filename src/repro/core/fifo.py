"""The FIFO service discipline (paper Section 2.2).

Packets are served in order of arrival, with no distinction between
connections.  For Poisson arrivals and exponential service the gateway is
an M/M/1 queue and the per-connection mean queue lengths are the classic

    ``Q_i(r) = rho_i / (1 - rho_total)``

with ``rho_i = r_i / mu`` and ``rho_total = sum_i rho_i``.  When
``rho_total >= 1`` there is no steady state and every connection with a
positive rate has an infinite queue — FIFO offers no protection: one
overloading connection destroys everyone's service.  That lack of
isolation is exactly what Theorem 5 formalises (FIFO violates the
robustness condition ``Q_i <= r_i / (mu - N r_i)``).
"""

from __future__ import annotations

import math

import numpy as np

from .math_utils import as_rate_vector
from .service import ServiceDiscipline, _check_mu

__all__ = ["Fifo"]


class Fifo(ServiceDiscipline):
    """First-in first-out service: ``Q_i = rho_i / (1 - rho_total)``."""

    name = "fifo"

    def queue_lengths(self, rates, mu):
        r = as_rate_vector(rates)
        _check_mu(mu)
        rho = r / mu
        rho_total = float(np.sum(rho))
        if rho_total >= 1.0:
            q = np.where(rho > 0, math.inf, 0.0)
            return q.astype(float)
        return rho / (1.0 - rho_total)

    def queue_lengths_batch(self, rates, mu, xp=None):
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        _check_mu(mu)
        rho = r / mu
        rho_total = rho.sum(axis=1, keepdims=True)
        overloaded = rho_total >= 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            q = rho / (1.0 - rho_total)
        return xp.where(overloaded, xp.where(rho > 0, math.inf, 0.0), q)
