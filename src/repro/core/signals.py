"""Congestion signalling (paper Section 2.3.1).

Each gateway ``a`` sends every connection ``i`` a real-valued congestion
signal ``b^a_i in [0, 1]`` computed from its local mean queue lengths,
and the source reacts only to its *bottleneck* signal
``b_i = max_a b^a_i`` (bottleneck flow control, after Jaffe).

Two feedback styles:

* **aggregate** — ``b^a_i = B(C^a)`` with ``C^a = sum_k Q^a_k``; every
  connection gets the same signal, independent of who causes the
  congestion (and independent of the service discipline, because the
  total queue is conserved).
* **individual** — ``b^a_i = B(C^a_i)`` with
  ``C^a_i = sum_k min(Q^a_k, Q^a_i)``: the signal never reflects queues
  larger than the connection's own, and for the largest connection it
  coincides with the aggregate measure.

``B`` must be strictly increasing with ``B(0) = 0`` and ``B(inf) = 1``.
Three concrete families are provided; :class:`LinearSaturating`
(``B(C) = C / (C + 1)``) is the paper's running example — at a single
gateway it makes the aggregate signal equal the utilisation ``rho``.
"""

from __future__ import annotations

import abc
import enum
import math
from typing import Dict, Sequence

import numpy as np

from ..errors import RateVectorError
from .math_utils import as_rate_vector, pick_kernel
from .service import ServiceDiscipline
from .topology import Network

__all__ = [
    "SignalFunction",
    "LinearSaturating",
    "PowerSaturating",
    "ExponentialSignal",
    "FeedbackStyle",
    "aggregate_congestion",
    "individual_congestion",
    "individual_congestion_batch",
    "weighted_individual_congestion",
    "weighted_individual_congestion_batch",
    "FeedbackScheme",
]


class SignalFunction(abc.ABC):
    """A monotone map ``B`` from congestion measures to signals in [0, 1]."""

    name: str = "abstract"

    @abc.abstractmethod
    def __call__(self, congestion: float) -> float:
        """Signal for a congestion measure ``C >= 0`` (``C = inf`` -> 1)."""

    @abc.abstractmethod
    def congestion_for(self, signal: float) -> float:
        """Inverse map: the congestion ``C`` with ``B(C) = signal``.

        Defined for ``signal in [0, 1)``; ``signal -> 1`` gives ``inf``.
        """

    def apply_batch(self, congestion: np.ndarray,
                    xp=None) -> np.ndarray:
        """Elementwise signals for an array of congestion measures.

        Equals ``B`` applied entry by entry; the base implementation
        loops, and the concrete families override it with vectorised
        arithmetic.  Custom subclasses only need the scalar ``__call__``
        — infinite measures are mapped straight to 1 here (the
        ``B(inf) = 1`` contract), so a subclass whose scalar map divides
        by the measure never sees ``inf`` and cannot leak ``inf - inf``
        NaNs into the overloaded-gateway signals.

        ``xp`` selects the array namespace (numpy when ``None``);
        callers only pass it for non-numpy backends, so subclasses
        that predate the parameter keep working on the default path.
        """
        xp = np if xp is None else xp
        arr = xp.asarray(congestion, dtype=float)
        out = xp.empty(arr.size, dtype=float)
        flat = arr.ravel()
        for k in range(flat.size):
            c = flat[k]
            out[k] = 1.0 if math.isinf(c) else self(c)
        return out.reshape(arr.shape)

    def steady_state_utilisation(self, b_ss: float) -> float:
        """Utilisation ``rho_ss`` a bottleneck settles at under aggregate
        feedback when the TSI target signal is ``b_ss``.

        At the bottleneck the total queue is ``C_ss = B^{-1}(b_ss)`` and,
        by conservation, ``C_ss = g(rho_ss)``, so
        ``rho_ss = C_ss / (1 + C_ss)``.
        """
        c_ss = self.congestion_for(b_ss)
        if math.isinf(c_ss):
            return 1.0
        return c_ss / (1.0 + c_ss)

    def __repr__(self):
        return f"{type(self).__name__}()"


def _check_congestion(congestion: float) -> float:
    value = float(congestion)
    if math.isnan(value) or value < 0:
        raise RateVectorError(
            f"congestion measure must be >= 0, got {congestion!r}")
    return value


def _check_congestion_batch(congestion, xp=np) -> np.ndarray:
    arr = xp.asarray(congestion, dtype=float)
    if xp.any(xp.isnan(arr)) or xp.any(arr < 0):
        raise RateVectorError(
            "congestion measures must be >= 0 (and not NaN)")
    return arr


def _check_signal(signal: float) -> float:
    value = float(signal)
    if not (0.0 <= value <= 1.0):
        raise RateVectorError(f"signal must lie in [0, 1], got {signal!r}")
    return value


class LinearSaturating(SignalFunction):
    """``B(C) = C / (C + 1)`` — the paper's canonical signal function."""

    name = "linear-saturating"

    def __call__(self, congestion):
        c = _check_congestion(congestion)
        if math.isinf(c):
            return 1.0
        return c / (c + 1.0)

    def apply_batch(self, congestion, xp=None):
        xp = np if xp is None else xp
        c = _check_congestion_batch(congestion, xp=xp)
        with np.errstate(invalid="ignore"):
            return xp.where(xp.isinf(c), 1.0, c / (c + 1.0))

    def congestion_for(self, signal):
        b = _check_signal(signal)
        if b >= 1.0:
            return math.inf
        return b / (1.0 - b)


class PowerSaturating(SignalFunction):
    """``B(C) = (C / (C + 1))**p`` for ``p > 0``.

    With ``p = 2`` at a single unit-rate gateway the aggregate signal is
    ``rho**2``, which (with the target rule ``f = eta (beta - b)``)
    reduces the symmetric dynamics to the paper's quadratic map
    ``x <- x + eta N (beta - x**2)`` — the Section 3.3 route to chaos.
    """

    name = "power-saturating"

    def __init__(self, p: float = 2.0):
        if not (math.isfinite(p) and p > 0):
            raise RateVectorError(f"exponent must be positive, got {p!r}")
        self.p = float(p)

    def __call__(self, congestion):
        c = _check_congestion(congestion)
        if math.isinf(c):
            return 1.0
        # np.power, not the builtin ** (libm pow): the two differ in the
        # last ulp for fractional p, and the scalar path must stay
        # bit-identical to apply_batch for the step/step_batch contract.
        return float(np.power(c / (c + 1.0), self.p))

    def apply_batch(self, congestion, xp=None):
        xp = np if xp is None else xp
        c = _check_congestion_batch(congestion, xp=xp)
        with np.errstate(invalid="ignore"):
            return xp.where(xp.isinf(c), 1.0, (c / (c + 1.0)) ** self.p)

    def congestion_for(self, signal):
        b = _check_signal(signal)
        if b >= 1.0:
            return math.inf
        root = b ** (1.0 / self.p)
        return root / (1.0 - root)

    def __repr__(self):
        return f"PowerSaturating(p={self.p})"


class ExponentialSignal(SignalFunction):
    """``B(C) = 1 - exp(-k C)`` for ``k > 0``."""

    name = "exponential"

    def __init__(self, k: float = 1.0):
        if not (math.isfinite(k) and k > 0):
            raise RateVectorError(f"rate constant must be positive, got {k!r}")
        self.k = float(k)

    def __call__(self, congestion):
        c = _check_congestion(congestion)
        if math.isinf(c):
            return 1.0
        # np.exp, not math.exp: keeps the scalar path bit-identical to
        # apply_batch (libm and the numpy ufunc differ in the last ulp).
        return 1.0 - float(np.exp(-self.k * c))

    def apply_batch(self, congestion, xp=None):
        xp = np if xp is None else xp
        c = _check_congestion_batch(congestion, xp=xp)
        return 1.0 - xp.exp(-self.k * c)

    def congestion_for(self, signal):
        b = _check_signal(signal)
        if b >= 1.0:
            return math.inf
        return -math.log(1.0 - b) / self.k

    def __repr__(self):
        return f"ExponentialSignal(k={self.k})"


class FeedbackStyle(enum.Enum):
    """Which congestion measure feeds the signal function."""

    AGGREGATE = "aggregate"
    INDIVIDUAL = "individual"


def aggregate_congestion(queues: Sequence[float]) -> float:
    """``C = sum_k Q_k`` (``inf`` propagates)."""
    return float(np.sum(np.asarray(queues, dtype=float)))


def _compiled_kernels():
    """The compiled congestion-kernel dispatch module (lazy import)."""
    from ..backends import compiled
    return compiled


def _individual_sorted(queues: np.ndarray, xp=np) -> np.ndarray:
    """O(n log n) individual congestion for a row batch of queues.

    Sort each row; in sorted order
    ``C_(k) = prefix_k + Q_(k) * (n - 1 - k)`` — every queue at or
    below rank ``k`` contributes itself (prefix sum inclusive of
    ``Q_(k)``), every larger one is capped at ``Q_(k)`` by the MIN.
    Infinite queues (overloaded classes) sort last: a finite ``Q_(k)``
    caps them like any larger queue, while ``Q_(k) = inf`` itself gets
    ``C = inf`` directly (its tail count can be zero, and ``inf * 0``
    is NaN, so the mask is applied explicitly).  Scattered back to the
    caller's order.  Agrees with the min-broadcast kernel up to
    floating-point summation order.
    """
    n = queues.shape[-1]
    order = xp.argsort(queues, axis=-1, kind="stable")
    qs = xp.take_along_axis(queues, order, axis=-1)
    prefix = xp.cumsum(qs, axis=-1)
    counts = (n - 1 - xp.arange(n)).astype(float)
    with np.errstate(invalid="ignore"):
        c_sorted = xp.where(xp.isinf(qs), math.inf, prefix + qs * counts)
    out = xp.empty_like(queues)
    xp.put_along_axis(out, order, c_sorted, axis=-1)
    return out


def individual_congestion(queues: Sequence[float],
                          method: str = "auto") -> np.ndarray:
    """``C_i = sum_k min(Q_k, Q_i)`` for every connection at a gateway.

    For the smallest queue this is ``N * Q_min``; for the largest it is
    the aggregate measure.  ``inf`` queues participate through the MIN.

    ``method``: ``"dense"`` is the O(n^2) min-broadcast reference,
    ``"sorted"`` the O(n log n) prefix-sum kernel, ``"auto"`` (default)
    switches to sorted at ``n >= SPARSE_MIN_N`` — the same threshold
    the batch path uses, so scalar and batch stay identical at every
    gateway size.
    """
    q = np.asarray(queues, dtype=float)
    if q.ndim != 1:
        raise RateVectorError(f"queue vector must be 1-D, got {q.shape}")
    kernel = pick_kernel(method, q.shape[0])
    if kernel == "compiled":
        out = _compiled_kernels().ind_congestion_batch(q[None, :])
        if out is not None:
            return out[0]
        kernel = "sorted"  # no compiled tier live: sorted twin
    if kernel == "sorted":
        return _individual_sorted(q[None, :])[0]
    capped = np.minimum(q[None, :], q[:, None])
    return capped.sum(axis=1)


def individual_congestion_batch(queues: np.ndarray,
                                method: str = "auto",
                                xp=None) -> np.ndarray:
    """Row-wise :func:`individual_congestion` for an ``(M, n)`` batch.

    Uses the same kernel as the scalar path at the same ``n`` (row for
    row identical results), vectorised over the batch axis; ``method``
    works as in :func:`individual_congestion`, replacing the
    ``(M, n, n)`` min-broadcast with the sorted kernel at large n.
    Under an active compiled backend the sorted kernel is served by
    its compiled twin (bit-identical); ``xp`` selects the array
    namespace (numpy when ``None``).
    """
    xp = np if xp is None else xp
    q = xp.asarray(queues, dtype=float)
    if q.ndim != 2:
        raise RateVectorError(f"queue batch must be 2-D, got {q.shape}")
    kernel = pick_kernel(method, q.shape[1])
    if kernel == "compiled":
        out = None
        if xp is np and isinstance(q, np.ndarray):
            out = _compiled_kernels().ind_congestion_batch(q)
        if out is not None:
            return out
        kernel = "sorted"  # no compiled tier live: sorted twin
    if kernel == "sorted":
        return _individual_sorted(q, xp=xp)
    capped = xp.minimum(q[:, None, :], q[:, :, None])
    return capped.sum(axis=2)


def weighted_individual_congestion_batch(
        queues: np.ndarray, weights: Sequence[float],
        xp=None) -> np.ndarray:
    """Row-wise :func:`weighted_individual_congestion` for a batch."""
    xp = np if xp is None else xp
    q = xp.asarray(queues, dtype=float)
    phi = xp.asarray(weights, dtype=float)
    if q.ndim != 2 or phi.ndim != 1 or q.shape[1] != phi.shape[0]:
        raise RateVectorError(
            f"queue batch {q.shape} and weights {phi.shape} do not match")
    if xp.any(phi <= 0) or not xp.all(xp.isfinite(phi)):
        raise RateVectorError("weights must be finite and positive")
    scaled_own = (phi[None, None, :] / phi[None, :, None]) * q[:, :, None]
    with np.errstate(invalid="ignore"):
        capped = xp.minimum(q[:, None, :], scaled_own)
    return capped.sum(axis=2)


def weighted_individual_congestion(queues: Sequence[float],
                                   weights: Sequence[float]) -> np.ndarray:
    """``C_i = sum_k min(Q_k, (phi_k / phi_i) Q_i)`` — the weighted
    individual measure.

    Derived from the same two consistency requirements as the paper's
    unweighted measure: (1) for the largest *normalised* queue the
    measure equals the aggregate, and (2) a connection's signal never
    reflects congestion in excess of "everyone at my per-weight level"
    (``C_i = Phi Q_i / phi_i`` for the smallest).  Equal weights reduce
    to :func:`individual_congestion`, and with
    :class:`~repro.core.weighted.WeightedFairShare` gateways the
    Theorem 5 robustness argument carries over to weighted floors.
    """
    q = np.asarray(queues, dtype=float)
    phi = np.asarray(weights, dtype=float)
    if q.ndim != 1 or q.shape != phi.shape:
        raise RateVectorError(
            f"queues {q.shape} and weights {phi.shape} must be matching "
            f"1-D vectors")
    if np.any(phi <= 0) or not np.all(np.isfinite(phi)):
        raise RateVectorError("weights must be finite and positive")
    scaled_own = (phi[None, :] / phi[:, None]) * q[:, None]
    with np.errstate(invalid="ignore"):
        capped = np.minimum(q[None, :], scaled_own)
    # inf * finite ratios stay inf; min handles them.
    return capped.sum(axis=1)


class FeedbackScheme:
    """The full signalling pipeline of one network configuration.

    Combines a :class:`~repro.core.topology.Network`, a
    :class:`~repro.core.service.ServiceDiscipline`, a
    :class:`SignalFunction`, and a :class:`FeedbackStyle` into the map
    from a sending-rate vector ``r`` to the bottleneck signals ``b_i``.

    ``weights`` (optional, one per connection) switches the individual
    congestion measure to its weighted form — pair it with
    :class:`~repro.core.weighted.WeightedFairShare` gateways.
    """

    def __init__(self, network: Network, discipline: ServiceDiscipline,
                 signal_fn: SignalFunction,
                 style: FeedbackStyle = FeedbackStyle.INDIVIDUAL,
                 weights=None):
        self.network = network
        self.discipline = discipline
        self.signal_fn = signal_fn
        self.style = FeedbackStyle(style)
        if weights is None:
            self.weights = None
        else:
            self.weights = np.asarray(weights, dtype=float)
            if self.weights.shape != (network.num_connections,):
                raise RateVectorError(
                    f"need one weight per connection "
                    f"({network.num_connections}), got shape "
                    f"{self.weights.shape}")
            if np.any(self.weights <= 0):
                raise RateVectorError("weights must be positive")
        # Gather indices for the batch path: per gateway, the connection
        # columns in Gamma(a) order — views into the network's CSR
        # member arrays.  Static because routing is static.
        csr = network.csr
        self._gateway_cols = {
            gname: csr.members(a)
            for a, gname in enumerate(csr.gateway_names)}

    # -- per-gateway quantities ---------------------------------------
    def local_queues(self, rates: np.ndarray) -> Dict[str, np.ndarray]:
        """Mean queue vectors ``Q^a`` per gateway (in ``Gamma(a)`` order)."""
        r = as_rate_vector(rates, n=self.network.num_connections)
        out = {}
        for gname in self.network.gateway_names:
            local = self.network.local_rates(gname, r)
            out[gname] = self.discipline.queue_lengths(
                local, self.network.mu(gname))
        return out

    def local_congestion(self, rates: np.ndarray) -> Dict[str, np.ndarray]:
        """Congestion measures ``C^a_i`` per gateway (style-dependent)."""
        out = {}
        for gname, q in self.local_queues(rates).items():
            if self.style is FeedbackStyle.AGGREGATE:
                out[gname] = np.full(q.shape[0], aggregate_congestion(q))
            elif self.weights is not None:
                local = list(self.network.connections_at(gname))
                out[gname] = weighted_individual_congestion(
                    q, self.weights[local])
            else:
                out[gname] = individual_congestion(q)
        return out

    def local_signals(self, rates: np.ndarray) -> Dict[str, np.ndarray]:
        """Signals ``b^a_i`` per gateway (in ``Gamma(a)`` order).

        Overloaded gateways have infinite congestion measures; those map
        to 1 here (``B(inf) = 1``) before the signal function sees them,
        matching :meth:`SignalFunction.apply_batch`.
        """
        out = {}
        for gname, c in self.local_congestion(rates).items():
            out[gname] = np.array(
                [1.0 if math.isinf(ci) else self.signal_fn(ci)
                 for ci in c], dtype=float)
        return out

    # -- per-connection quantities ------------------------------------
    def signals(self, rates: np.ndarray,
                method: str = "auto") -> np.ndarray:
        """Bottleneck signals ``b_i = max_{a in gamma(i)} b^a_i``.

        ``method``: ``"dense"`` walks each connection's route through
        the per-gateway signal vectors (the reference path, now
        CSR-addressed so it never rescans ``Gamma(a)``); ``"sparse"``
        runs the vector as a one-row batch through
        :meth:`signals_batch` — same gather/scatter kernels the
        ensemble engine uses; ``"auto"`` (default) switches to sparse
        at ``N >= SPARSE_MIN_N``.
        """
        r = as_rate_vector(rates, n=self.network.num_connections)
        if pick_kernel(method, r.shape[0], large="sparse") == "sparse":
            return self.signals_batch(r[None, :])[0]
        local = self.local_signals(r)
        csr = self.network.csr
        b = np.zeros(self.network.num_connections, dtype=float)
        for i in range(b.shape[0]):
            best = 0.0
            for a, pos in zip(csr.route(i), csr.positions(i)):
                best = max(best, float(local[csr.gateway_names[a]][pos]))
            b[i] = best
        return b

    def signals_batch(self, rates: np.ndarray, xp=None) -> np.ndarray:
        """Bottleneck signals for an ``(M, N)`` batch of rate vectors.

        Row ``m`` of the result equals ``signals(rates[m])``; every
        stage — queue laws, congestion measures, signal function, the
        MAX over gateways — is evaluated once per gateway for the whole
        batch instead of once per ensemble member.

        ``xp`` selects the array namespace (numpy when ``None``).  The
        namespace is only forwarded to the discipline and signal
        function when it is not numpy, so custom subclasses written
        before the parameter existed keep working on the default
        backend.
        """
        xp = np if xp is None else xp
        kw = {} if xp is np else {"xp": xp}
        r = xp.asarray(rates, dtype=float)
        if r.ndim != 2 or r.shape[1] != self.network.num_connections:
            raise RateVectorError(
                f"need an (M, {self.network.num_connections}) rate "
                f"batch, got shape {r.shape}")
        b = xp.zeros_like(r)
        for gname, cols in self._gateway_cols.items():
            local = r[:, cols]
            q = self.discipline.queue_lengths_batch(
                local, self.network.mu(gname), **kw)
            if self.style is FeedbackStyle.AGGREGATE:
                c = xp.broadcast_to(
                    q.sum(axis=1, keepdims=True), q.shape)
            elif self.weights is not None:
                c = weighted_individual_congestion_batch(
                    q, self.weights[cols], xp=xp)
            else:
                c = individual_congestion_batch(q, xp=xp)
            local_b = self.signal_fn.apply_batch(c, **kw)
            xp.maximum(b[:, cols], local_b, out=local_b)
            b[:, cols] = local_b
        return b

    def bottlenecks(self, rates: np.ndarray,
                    tol: float = 1e-12) -> Dict[int, tuple]:
        """Gateways achieving each connection's maximal signal.

        A gateway with ``b^a_i = 0`` is never a bottleneck (paper: any
        gateway with nonzero signal attaining the MAX is one).
        """
        local = self.local_signals(rates)
        net = self.network
        csr = net.csr
        result = {}
        for i in range(net.num_connections):
            values = []
            for a, pos in zip(csr.route(i), csr.positions(i)):
                gname = csr.gateway_names[a]
                values.append((gname, float(local[gname][pos])))
            peak = max(v for _, v in values)
            if peak <= 0.0:
                result[i] = ()
            else:
                result[i] = tuple(gname for gname, v in values
                                  if v >= peak - tol)
        return result
