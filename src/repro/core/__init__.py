"""The paper's analytic model: networks, disciplines, signals, dynamics.

This subpackage is the primary contribution of the reproduction — a
faithful, executable rendering of every definition in Sections 2 and 3
of Shenker (SIGCOMM 1990).  See :mod:`repro.core.topology` for the
network model, :mod:`repro.core.fifo` / :mod:`repro.core.fairshare` for
the service disciplines, :mod:`repro.core.signals` for congestion
signalling, :mod:`repro.core.ratecontrol` for source update rules,
:mod:`repro.core.dynamics` for the iterated map, and
:mod:`repro.core.steadystate` / :mod:`repro.core.stability` /
:mod:`repro.core.fairness` / :mod:`repro.core.robustness` for the four
performance goals.
"""

from .delays import (per_gateway_delays, round_trip_delays,
                     round_trip_delays_batch)
from .dynamics import EnsembleResult, FlowControlSystem, Outcome, Trajectory
from .fairness import is_fair, jain_index, max_min_allocation, unfairness
from .fairshare import (FairShare, cumulative_loads, cumulative_loads_batch,
                        fair_share_queues_recursive, priority_decomposition)
from .feasibility import FeasibilityReport, check_feasibility
from .fifo import Fifo
from .math_utils import as_rate_matrix, g, g_inverse
from .ratecontrol import (BinaryAimdRule, DecbitRateRule, DecbitWindowRule,
                          ProportionalTargetRule, RateAdjustment,
                          RcpSourceRule, TargetRule, TcpLikeRule,
                          tsi_target, verify_tsi)
from .rcp import RcpBank, RcpController
from .robustness import (is_robust_outcome, reservation_delay,
                         reservation_floor, satisfies_theorem5_condition,
                         theorem5_bound, theorem5_condition_batch,
                         worst_floor_ratio)
from .service import PreemptivePriority, ServiceDiscipline
from .signals import (ExponentialSignal, FeedbackScheme, FeedbackStyle,
                      LinearSaturating, PowerSaturating, SignalFunction,
                      aggregate_congestion, individual_congestion,
                      weighted_individual_congestion)
from .stability import (StabilityReport, analyze, eigenvalues,
                        is_systemically_stable, is_triangular_in_rate_order,
                        is_unilaterally_stable, jacobian, spectral_radius,
                        transverse_eigenvalues, transverse_spectral_radius,
                        triangularity_defect, unilateral_margins,
                        zero_sum_tangent_basis)
from .steadystate import (fair_steady_state, is_aggregate_steady_state,
                          predicted_steady_state, refine,
                          single_connection_rate, steady_utilisation)
from .topology import (Connection, Gateway, Network, parking_lot,
                       random_network, single_gateway, tandem,
                       two_gateway_shared)
from .weighted import (WeightedFairShare, weighted_max_min_allocation,
                       weighted_reservation_floor)
from .asynchronous import (CLOCK_KINDS, AsynchronousRunner,
                           BernoulliSchedule, BurstyClock, ClockModel,
                           ClockSchedule, DriftingClock, RateMixClock,
                           RoundRobinSchedule, SynchronousSchedule,
                           UniformClock, UpdateSchedule, clock_model,
                           run_async_ensemble)

__all__ = [
    # topology
    "Gateway", "Connection", "Network", "single_gateway",
    "two_gateway_shared", "tandem", "parking_lot", "random_network",
    # disciplines
    "ServiceDiscipline", "Fifo", "FairShare", "PreemptivePriority",
    "priority_decomposition", "cumulative_loads", "cumulative_loads_batch",
    "fair_share_queues_recursive",
    # feasibility
    "FeasibilityReport", "check_feasibility",
    # signals
    "SignalFunction", "LinearSaturating", "PowerSaturating",
    "ExponentialSignal", "FeedbackStyle", "FeedbackScheme",
    "aggregate_congestion", "individual_congestion",
    "weighted_individual_congestion",
    # rate control
    "RateAdjustment", "TargetRule", "ProportionalTargetRule",
    "DecbitWindowRule", "DecbitRateRule", "BinaryAimdRule",
    "TcpLikeRule", "RcpSourceRule",
    "verify_tsi", "tsi_target",
    # router-side control (RCP)
    "RcpController", "RcpBank",
    # dynamics
    "FlowControlSystem", "Outcome", "Trajectory", "EnsembleResult",
    # delays
    "round_trip_delays", "per_gateway_delays", "round_trip_delays_batch",
    # steady state
    "steady_utilisation", "fair_steady_state", "predicted_steady_state",
    "is_aggregate_steady_state", "single_connection_rate", "refine",
    # stability
    "jacobian", "eigenvalues", "spectral_radius", "unilateral_margins",
    "transverse_eigenvalues", "transverse_spectral_radius",
    "zero_sum_tangent_basis",
    "is_unilaterally_stable", "is_systemically_stable",
    "triangularity_defect", "is_triangular_in_rate_order",
    "StabilityReport", "analyze",
    # fairness / robustness
    "is_fair", "unfairness", "jain_index", "max_min_allocation",
    "reservation_floor", "theorem5_bound",
    "satisfies_theorem5_condition", "theorem5_condition_batch",
    "is_robust_outcome", "worst_floor_ratio", "reservation_delay",
    # weighted extension
    "WeightedFairShare", "weighted_max_min_allocation",
    "weighted_reservation_floor",
    # asynchronous extension
    "UpdateSchedule", "SynchronousSchedule", "RoundRobinSchedule",
    "BernoulliSchedule", "AsynchronousRunner", "run_async_ensemble",
    "ClockModel", "UniformClock", "RateMixClock", "DriftingClock",
    "BurstyClock", "ClockSchedule", "CLOCK_KINDS", "clock_model",
    # math
    "g", "g_inverse", "as_rate_matrix",
]
