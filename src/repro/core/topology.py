"""Network and traffic topology model (paper Section 2.1).

The paper associates one *logical gateway* with each outgoing line, so a
gateway and a unidirectional communication line are the same object here.
A network is then fully described by:

* a set of gateways ``a``, each with an exponential service rate ``mu^a``
  and a traffic-independent line latency ``l^a``;
* a set of connections ``i``, each with a routing path ``gamma(i)`` (the
  ordered gateways it traverses).

``Gamma(a)`` — the set of connections through gateway ``a`` — and
``N^a = |Gamma(a)|`` are derived.  Routing and the connection set are
static, exactly as in the model.

:class:`Network` is immutable after construction; the "what if" helpers
(:meth:`Network.scaled`, :meth:`Network.with_latencies`) return new
networks, which keeps time-scale-invariance experiments honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx
import numpy as np

from ..errors import TopologyError

__all__ = [
    "Gateway",
    "Connection",
    "Network",
    "TopologyCSR",
    "single_gateway",
    "two_gateway_shared",
    "tandem",
    "parking_lot",
    "random_network",
]


@dataclass(frozen=True)
class Gateway:
    """A logical gateway: one outgoing line with an exponential server.

    Attributes:
        name: unique identifier within the network.
        mu: service rate (packets per unit time), strictly positive.
        latency: traffic-independent propagation delay of the line,
            nonnegative.
    """

    name: str
    mu: float
    latency: float = 0.0

    def __post_init__(self):
        if not (isinstance(self.name, str) and self.name):
            raise TopologyError(f"gateway name must be a nonempty string, "
                                f"got {self.name!r}")
        if not (math.isfinite(self.mu) and self.mu > 0):
            raise TopologyError(
                f"gateway {self.name!r}: service rate must be finite and "
                f"positive, got {self.mu!r}")
        if not (math.isfinite(self.latency) and self.latency >= 0):
            raise TopologyError(
                f"gateway {self.name!r}: latency must be finite and "
                f"nonnegative, got {self.latency!r}")


@dataclass(frozen=True)
class Connection:
    """A source-destination pair with a static route.

    Attributes:
        name: unique identifier within the network.
        path: ordered gateway names the connection traverses.  A gateway
            may appear at most once on a path.
    """

    name: str
    path: Tuple[str, ...]

    def __post_init__(self):
        if not (isinstance(self.name, str) and self.name):
            raise TopologyError(f"connection name must be a nonempty "
                                f"string, got {self.name!r}")
        object.__setattr__(self, "path", tuple(self.path))
        if len(self.path) == 0:
            raise TopologyError(
                f"connection {self.name!r}: path must not be empty")
        if len(set(self.path)) != len(self.path):
            raise TopologyError(
                f"connection {self.name!r}: path visits a gateway twice: "
                f"{self.path!r}")


@dataclass(frozen=True)
class TopologyCSR:
    """CSR-style index arrays over the connection x gateway incidence.

    The paper's ``Gamma(a)`` (connections through a gateway) and
    ``gamma(i)`` (gateways on a connection's path) as flat numpy
    arrays, so large-N code can gather and scatter without per-lookup
    Python work or ``Gamma(a).index(i)`` scans.  Built lazily once per
    :class:`Network` (routing is static) via :attr:`Network.csr`.

    Attributes:
        gateway_names: gateway order; index ``a`` below refers to it.
        mu: per-gateway service rates, shape ``(G,)``.
        latency: per-gateway line latencies, shape ``(G,)``.
        gw_ptr / gw_members: the member lists — connections through
            gateway ``a`` are
            ``gw_members[gw_ptr[a]:gw_ptr[a + 1]]``, in ``Gamma(a)``
            order (the order every local queue vector uses).
        route_ptr / route_gateways: the route lists — gateway indices
            on ``gamma(i)`` are
            ``route_gateways[route_ptr[i]:route_ptr[i + 1]]``, in path
            order.
        route_positions: aligned with ``route_gateways``: the position
            of connection ``i`` inside that gateway's member segment,
            precomputed so per-connection scatter/gather never rescans
            ``Gamma(a)``.
        path_latency: ``L_i`` per connection, shape ``(N,)``.
    """

    gateway_names: Tuple[str, ...]
    mu: np.ndarray
    latency: np.ndarray
    gw_ptr: np.ndarray
    gw_members: np.ndarray
    route_ptr: np.ndarray
    route_gateways: np.ndarray
    route_positions: np.ndarray
    path_latency: np.ndarray

    def members(self, a: int) -> np.ndarray:
        """``Gamma(a)`` as an index array (view into ``gw_members``)."""
        return self.gw_members[self.gw_ptr[a]:self.gw_ptr[a + 1]]

    def route(self, i: int) -> np.ndarray:
        """``gamma(i)`` as gateway indices (view into ``route_gateways``)."""
        return self.route_gateways[self.route_ptr[i]:self.route_ptr[i + 1]]

    def positions(self, i: int) -> np.ndarray:
        """Connection ``i``'s member-segment positions along its route."""
        return self.route_positions[self.route_ptr[i]:self.route_ptr[i + 1]]


class Network:
    """An immutable network + traffic topology.

    Connections are indexed ``0..N-1`` in the order given; all rate
    vectors used elsewhere in the library follow this indexing.
    """

    def __init__(self, gateways: Iterable[Gateway],
                 connections: Iterable[Connection]):
        gws = list(gateways)
        conns = list(connections)
        if not gws:
            raise TopologyError("a network needs at least one gateway")
        if not conns:
            raise TopologyError("a network needs at least one connection")

        self._gateways: Dict[str, Gateway] = {}
        for gw in gws:
            if gw.name in self._gateways:
                raise TopologyError(f"duplicate gateway name {gw.name!r}")
            self._gateways[gw.name] = gw

        names = set()
        for conn in conns:
            if conn.name in names:
                raise TopologyError(f"duplicate connection name "
                                    f"{conn.name!r}")
            names.add(conn.name)
            for gname in conn.path:
                if gname not in self._gateways:
                    raise TopologyError(
                        f"connection {conn.name!r} routed through unknown "
                        f"gateway {gname!r}")
        self._connections: Tuple[Connection, ...] = tuple(conns)
        self._index: Dict[str, int] = {
            c.name: i for i, c in enumerate(self._connections)}

        members: Dict[str, List[int]] = {g: [] for g in self._gateways}
        for i, conn in enumerate(self._connections):
            for gname in conn.path:
                members[gname].append(i)
        self._members: Dict[str, Tuple[int, ...]] = {
            g: tuple(v) for g, v in members.items()}
        self._csr: TopologyCSR = None  # built lazily by .csr

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_connections(self) -> int:
        """Number of connections (the length of every rate vector)."""
        return len(self._connections)

    @property
    def num_gateways(self) -> int:
        return len(self._gateways)

    @property
    def gateway_names(self) -> Tuple[str, ...]:
        return tuple(self._gateways)

    @property
    def connection_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._connections)

    def gateway(self, name: str) -> Gateway:
        try:
            return self._gateways[name]
        except KeyError:
            raise TopologyError(f"no gateway named {name!r}") from None

    def connection(self, i: int) -> Connection:
        return self._connections[i]

    def connection_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise TopologyError(f"no connection named {name!r}") from None

    def mu(self, gateway_name: str) -> float:
        """Service rate ``mu^a`` of a gateway."""
        return self.gateway(gateway_name).mu

    # ------------------------------------------------------------------
    # the paper's gamma / Gamma / N^a
    # ------------------------------------------------------------------
    def gamma(self, i: int) -> Tuple[str, ...]:
        """``gamma(i)``: gateways on connection ``i``'s path, in order."""
        return self._connections[i].path

    def connections_at(self, gateway_name: str) -> Tuple[int, ...]:
        """``Gamma(a)``: indices of connections through gateway ``a``."""
        if gateway_name not in self._members:
            raise TopologyError(f"no gateway named {gateway_name!r}")
        return self._members[gateway_name]

    def n_at(self, gateway_name: str) -> int:
        """``N^a``: number of connections through gateway ``a``."""
        return len(self.connections_at(gateway_name))

    def path_latency(self, i: int) -> float:
        """``L_i``: total line latency along connection ``i``'s path."""
        return sum(self._gateways[g].latency for g in self.gamma(i))

    @property
    def csr(self) -> TopologyCSR:
        """The :class:`TopologyCSR` index arrays of this network.

        Built on first access and cached — routing is static, so the
        arrays never go stale.
        """
        if self._csr is None:
            self._csr = self._build_csr()
        return self._csr

    def _build_csr(self) -> TopologyCSR:
        gateway_names = self.gateway_names
        g_index = {g: a for a, g in enumerate(gateway_names)}
        mu = np.array([self._gateways[g].mu for g in gateway_names])
        latency = np.array([self._gateways[g].latency
                            for g in gateway_names])

        gw_ptr = np.zeros(len(gateway_names) + 1, dtype=np.intp)
        segments = []
        position_of: Dict[Tuple[str, int], int] = {}
        for a, gname in enumerate(gateway_names):
            conns = self._members[gname]
            gw_ptr[a + 1] = gw_ptr[a] + len(conns)
            segments.append(np.asarray(conns, dtype=np.intp))
            for pos, i in enumerate(conns):
                position_of[(gname, i)] = pos
        gw_members = (np.concatenate(segments) if segments
                      else np.empty(0, dtype=np.intp))

        n = self.num_connections
        route_ptr = np.zeros(n + 1, dtype=np.intp)
        route_gateways = []
        route_positions = []
        for i, conn in enumerate(self._connections):
            route_ptr[i + 1] = route_ptr[i] + len(conn.path)
            for gname in conn.path:
                route_gateways.append(g_index[gname])
                route_positions.append(position_of[(gname, i)])
        # Same summation as path_latency() so the vector is
        # bit-identical to the per-connection scalar accessor.
        path_lat = np.array([self.path_latency(i) for i in range(n)])
        return TopologyCSR(
            gateway_names=gateway_names, mu=mu, latency=latency,
            gw_ptr=gw_ptr, gw_members=gw_members,
            route_ptr=route_ptr,
            route_gateways=np.asarray(route_gateways, dtype=np.intp),
            route_positions=np.asarray(route_positions, dtype=np.intp),
            path_latency=path_lat)

    def local_rates(self, gateway_name: str,
                    rates: np.ndarray) -> np.ndarray:
        """Rates of the connections through a gateway, in ``Gamma(a)`` order."""
        idx = list(self.connections_at(gateway_name))
        return np.asarray(rates, dtype=float)[idx]

    def utilisation(self, gateway_name: str, rates: np.ndarray) -> float:
        """Offered load ``rho^a = sum_{i in Gamma(a)} r_i / mu^a``."""
        local = self.local_rates(gateway_name, rates)
        return float(np.sum(local)) / self.mu(gateway_name)

    # ------------------------------------------------------------------
    # derived networks
    # ------------------------------------------------------------------
    def scaled(self, c: float) -> "Network":
        """A copy with every service rate multiplied by ``c`` (TSI probe)."""
        if not (math.isfinite(c) and c > 0):
            raise TopologyError(f"scale factor must be positive, got {c!r}")
        gws = [Gateway(g.name, g.mu * c, g.latency)
               for g in self._gateways.values()]
        return Network(gws, self._connections)

    def with_mu_factors(self, factors: Mapping[str, float]) -> "Network":
        """A copy with some service rates scaled per gateway.

        The graceful-degradation helper of the structural chaos layer:
        a capacity drop at gateway ``a`` is a *derived network* whose
        ``mu^a`` is multiplied by ``factors[a]`` (strictly in ``(0, 1]``
        — a dead line is a blackhole, not a zero-rate server, because
        the queue laws require ``mu > 0``).  An empty map returns
        ``self`` unchanged so the clean path keeps the original object
        (and its cached CSR arrays).
        """
        if not factors:
            return self
        unknown = set(factors) - set(self._gateways)
        if unknown:
            raise TopologyError(f"unknown gateways in mu-factor map: "
                                f"{sorted(unknown)!r}")
        for gname, factor in factors.items():
            f = float(factor)
            if not (math.isfinite(f) and 0.0 < f <= 1.0):
                raise TopologyError(
                    f"mu factor for gateway {gname!r} must lie in "
                    f"(0, 1], got {factor!r}")
        gws = [Gateway(g.name, g.mu * float(factors.get(g.name, 1.0)),
                       g.latency)
               for g in self._gateways.values()]
        return Network(gws, self._connections)

    def with_latencies(self, latencies: Mapping[str, float]) -> "Network":
        """A copy with some gateway latencies replaced (TSI probe)."""
        gws = []
        unknown = set(latencies) - set(self._gateways)
        if unknown:
            raise TopologyError(f"unknown gateways in latency map: "
                                f"{sorted(unknown)!r}")
        for g in self._gateways.values():
            lat = latencies.get(g.name, g.latency)
            gws.append(Gateway(g.name, g.mu, lat))
        return Network(gws, self._connections)

    def __repr__(self):
        return (f"Network({self.num_gateways} gateways, "
                f"{self.num_connections} connections)")


# ----------------------------------------------------------------------
# canonical topologies
# ----------------------------------------------------------------------
def single_gateway(n_connections: int, mu: float = 1.0,
                   latency: float = 0.0) -> Network:
    """``n_connections`` connections sharing one gateway.

    The workhorse topology of the paper's examples (Theorem 2's manifold,
    the Section 3.3 instability example, the heterogeneity example).
    """
    if n_connections < 1:
        raise TopologyError("need at least one connection")
    gw = Gateway("g0", mu, latency)
    conns = [Connection(f"c{i}", ("g0",)) for i in range(n_connections)]
    return Network([gw], conns)


def two_gateway_shared(mu_a: float = 1.0, mu_b: float = 1.0,
                       latency: float = 0.0) -> Network:
    """Three connections over two gateways.

    Connection ``long`` crosses both gateways; ``a_only`` and ``b_only``
    cross one each.  The smallest topology on which bottleneck selection
    (the MAX over gateways) is exercised.
    """
    gws = [Gateway("ga", mu_a, latency), Gateway("gb", mu_b, latency)]
    conns = [
        Connection("long", ("ga", "gb")),
        Connection("a_only", ("ga",)),
        Connection("b_only", ("gb",)),
    ]
    return Network(gws, conns)


def tandem(n_gateways: int, n_connections: int, mu: float = 1.0,
           latency: float = 0.0) -> Network:
    """``n_connections`` connections all crossing the same ``n_gateways``
    gateways in series.  All gateways see identical traffic, so the first
    gateway is the shared bottleneck."""
    if n_gateways < 1 or n_connections < 1:
        raise TopologyError("need at least one gateway and one connection")
    gws = [Gateway(f"g{k}", mu, latency) for k in range(n_gateways)]
    path = tuple(g.name for g in gws)
    conns = [Connection(f"c{i}", path) for i in range(n_connections)]
    return Network(gws, conns)


def parking_lot(n_hops: int, mu: float = 1.0, latency: float = 0.0,
                cross_per_hop: int = 1) -> Network:
    """The classic parking-lot topology.

    One ``long`` connection crosses ``n_hops`` gateways in series, and each
    gateway additionally carries ``cross_per_hop`` one-hop cross
    connections.  The standard stress test for fairness definitions: the
    long connection competes at every hop.
    """
    if n_hops < 1:
        raise TopologyError("need at least one hop")
    if cross_per_hop < 0:
        raise TopologyError("cross_per_hop must be nonnegative")
    gws = [Gateway(f"g{k}", mu, latency) for k in range(n_hops)]
    conns = [Connection("long", tuple(g.name for g in gws))]
    for k in range(n_hops):
        for j in range(cross_per_hop):
            conns.append(Connection(f"x{k}_{j}", (f"g{k}",)))
    return Network(gws, conns)


def random_network(n_gateways: int, n_connections: int, seed: int,
                   mu_range: Tuple[float, float] = (0.5, 2.0),
                   latency_range: Tuple[float, float] = (0.0, 1.0),
                   max_path_len: int = 4) -> Network:
    """A random multi-gateway network for ensemble experiments.

    Gateways are edges of a random connected graph; each connection's
    path is a shortest path between two random distinct nodes, truncated
    to ``max_path_len`` gateways.  Deterministic given ``seed``.
    """
    if n_gateways < 1 or n_connections < 1:
        raise TopologyError("need at least one gateway and one connection")
    rng = np.random.default_rng(seed)

    # Enough graph nodes to host n_gateways directed edges.
    n_nodes = max(3, int(math.ceil((1 + math.sqrt(1 + 4 * n_gateways)) / 2)))
    while n_nodes * (n_nodes - 1) < n_gateways:
        n_nodes += 1
    graph = nx.complete_graph(n_nodes).to_directed()
    edges = sorted(graph.edges())
    order = rng.permutation(len(edges))[:n_gateways]
    chosen = [edges[k] for k in sorted(order)]

    gws = []
    edge_name = {}
    for (u, v) in chosen:
        name = f"g{u}_{v}"
        mu = float(rng.uniform(*mu_range))
        lat = float(rng.uniform(*latency_range))
        gws.append(Gateway(name, mu, lat))
        edge_name[(u, v)] = name

    usable = nx.DiGraph()
    usable.add_edges_from(edge_name)

    conns = []
    attempts = 0
    while len(conns) < n_connections:
        attempts += 1
        if attempts > 200 * n_connections:
            # Fall back: route the remaining connections over a random
            # single gateway so construction always succeeds.
            gw = gws[int(rng.integers(len(gws)))]
            conns.append(Connection(f"c{len(conns)}", (gw.name,)))
            continue
        nodes = list(usable.nodes())
        if len(nodes) < 2:
            gw = gws[int(rng.integers(len(gws)))]
            conns.append(Connection(f"c{len(conns)}", (gw.name,)))
            continue
        src, dst = rng.choice(nodes, size=2, replace=False)
        try:
            node_path = nx.shortest_path(usable, src, dst)
        except nx.NetworkXNoPath:
            continue
        hops = list(zip(node_path[:-1], node_path[1:]))[:max_path_len]
        if not hops:
            continue
        path = tuple(edge_name[h] for h in hops)
        conns.append(Connection(f"c{len(conns)}", path))
    return Network(gws, conns)
