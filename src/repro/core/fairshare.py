"""The Fair Share service discipline (paper Section 2.2 and Table 1).

Fair Share (FS), introduced in Shenker's 1989 "Making Greed Work in
Networks" preprint, is a preemptive priority discipline built from
*rate-ordered substreams*.  Label the connections so the rates are in
increasing order, ``r_(1) <= r_(2) <= ... <= r_(N)``, and define N
priority classes (``A`` highest).  Every connection contributes rate
``r_(1)`` to class 1; every connection whose rate exceeds ``r_(1)``
contributes a further ``r_(2) - r_(1)`` to class 2; and so on — exactly
the paper's Table 1:

    ==========  =====  =========  =========  =========
    connection    A        B          C          D
    ==========  =====  =========  =========  =========
    1           r1
    2           r1     r2 - r1
    3           r1     r2 - r1    r3 - r2
    4           r1     r2 - r1    r3 - r2    r4 - r3
    ==========  =====  =========  =========  =========

Because classes ``1..k`` jointly form an M/M/1 at cumulative load
``sigma_k = (1/mu) * sum_m min(r_m, r_(k))`` (lower classes are invisible
under preemptive priority), the class occupancies are
``L_k = g(sigma_k) - g(sigma_{k-1})``, each shared equally by the
``N - k + 1`` connections present in class ``k``.  Summing a connection's
shares reproduces the paper's recursion

    ``Q_(i) = [ g(sigma_i) - sum_{m<i} Q_(m) ] / (N - i + 1)``.

The decisive structural property (used by Theorems 4 and 5) is
**triangularity**: ``Q_(i)`` depends only on rates ``r_m <= r_(i)``, so a
connection's queue — and hence its individual congestion signal — is
completely insulated from greedier connections.  In particular small
connections keep finite queues even when the gateway as a whole is
overloaded.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import RateVectorError
from .math_utils import (SPARSE_MIN_N, as_rate_vector, g,
                         inverse_permutation, pick_kernel, sorted_order)
from .service import ServiceDiscipline, _check_mu

__all__ = ["FairShare", "priority_decomposition", "cumulative_loads",
           "cumulative_loads_batch", "fair_share_queues_recursive"]


def _compiled_kernels():
    """The compiled Fair Share dispatch module (lazy, cycle-free)."""
    from ..backends import compiled
    return compiled


def _sorted_loads(sorted_rates: np.ndarray, mu: float,
                  xp=np) -> np.ndarray:
    """O(n log n) cumulative loads from row-sorted rates.

    With the rates of each row sorted increasingly,
    ``sum_m min(r_m, r_(k)) = prefix_k + r_(k) * (n - 1 - k)`` — every
    rate at or below rank ``k`` contributes itself (the running prefix
    sum, inclusive of ``r_(k)``), every larger one is capped at
    ``r_(k)``.  This replaces the O(n^2) min-broadcast for large
    gateways; the result differs from the broadcast sum only in
    floating-point summation order (last-ulp), never in value.
    """
    n = sorted_rates.shape[-1]
    prefix = xp.cumsum(sorted_rates, axis=-1)
    counts = (n - 1 - xp.arange(n)).astype(float)
    return (prefix + sorted_rates * counts) / mu


def priority_decomposition(rates: Sequence[float]) -> np.ndarray:
    """The Table 1 substream matrix, in the *original* connection order.

    ``D[i, k]`` is the rate connection ``i`` contributes to priority
    class ``k`` (class 0 highest).  Row sums equal ``r_i``; column ``k``'s
    nonzero entries are all equal to ``r_(k+1) - r_(k)`` (sorted rates,
    ``r_(0) = 0``).
    """
    r = as_rate_vector(rates)
    order = sorted_order(r)
    sorted_rates = r[order]
    prev = np.concatenate(([0.0], sorted_rates[:-1]))
    # D[i, k] = clip(min(r_i, r_(k)) - r_(k-1), 0)
    capped = np.minimum(r[:, None], sorted_rates[None, :])
    decomp = np.clip(capped - prev[None, :], 0.0, None)
    return decomp


def cumulative_loads(rates: Sequence[float], mu: float,
                     sorted_rates: np.ndarray = None,
                     method: str = "auto") -> np.ndarray:
    """``sigma_k = (1/mu) sum_m min(r_m, r_(k))`` for sorted rank ``k``.

    ``sigma_k`` is the cumulative utilisation of priority classes
    ``1..k``; it is the only load the ``k``-th smallest connection ever
    experiences under Fair Share.

    Pass ``sorted_rates`` (the rates in increasing order) when the
    caller has already sorted them — :meth:`FairShare.queue_lengths`
    does — to avoid sorting the same vector twice.

    The inner sum runs over the *sorted* rates, not the caller's order:
    ``sum_m min(r_m, r_(k))`` is permutation-invariant mathematically,
    but floating-point addition is not associative, so summing in the
    caller's order made tied-rate vectors yield queues that differed in
    the last ulp across permutations.  Summing in canonical (sorted)
    order makes the result bit-identical under any permutation of the
    input.

    ``method`` selects the kernel: ``"dense"`` is the O(n^2)
    min-broadcast reference, ``"sorted"`` the O(n log n) prefix-sum
    formulation, ``"auto"`` (default) switches to sorted at
    ``n >= SPARSE_MIN_N``.  The two agree to floating-point summation
    order; the scalar and batch paths use the same kernel at the same
    ``n``, so the scalar/batch identity holds at every size.
    """
    r = as_rate_vector(rates)
    _check_mu(mu)
    if sorted_rates is None:
        sorted_rates = r[sorted_order(r)]
    kernel = pick_kernel(method, r.shape[0])
    if kernel == "compiled":
        out = _compiled_kernels().fs_loads_batch(
            sorted_rates[None, :], mu)
        if out is not None:
            return out[0]
        kernel = "sorted"  # no compiled tier live: sorted twin
    if kernel == "sorted":
        return _sorted_loads(sorted_rates[None, :], mu)[0]
    capped = np.minimum(sorted_rates[None, :], sorted_rates[:, None])
    return capped.sum(axis=1) / mu


def cumulative_loads_batch(rates: np.ndarray, mu: float,
                           sorted_rates: np.ndarray = None,
                           method: str = "auto",
                           xp=None) -> np.ndarray:
    """Batched :func:`cumulative_loads`: row ``m`` of the ``(M, n)``
    result is ``cumulative_loads(rates[m], mu)``.

    ``sorted_rates`` (each row sorted increasingly) can be supplied when
    the caller has already sorted the batch.

    As in :func:`cumulative_loads`, the sum runs over the sorted rates
    so each row's loads are bit-identical under permutation of that row
    (and bit-identical to the scalar path).  ``method`` works as there;
    at ``n >= SPARSE_MIN_N`` the ``(M, n, n)`` min-broadcast — the
    allocation that caps ensemble size — is replaced by the O(M n log n)
    prefix-sum kernel.

    ``xp`` selects the array namespace (numpy when ``None``); the
    compiled kernels only engage on numpy arrays.
    """
    xp = np if xp is None else xp
    r = xp.asarray(rates, dtype=float)
    _check_mu(mu)
    if r.ndim != 2:
        raise RateVectorError(
            f"rate batch must be 2-D, got shape {r.shape}")
    if sorted_rates is None:
        sorted_rates = xp.sort(r, axis=1, kind="stable")
    kernel = pick_kernel(method, r.shape[1])
    if kernel == "compiled":
        out = None
        if xp is np and isinstance(sorted_rates, np.ndarray):
            out = _compiled_kernels().fs_loads_batch(sorted_rates, mu)
        if out is not None:
            return out
        kernel = "sorted"  # no compiled tier live: sorted twin
    if kernel == "sorted":
        return _sorted_loads(sorted_rates, mu, xp=xp)
    capped = xp.minimum(sorted_rates[:, None, :],
                        sorted_rates[:, :, None])
    return capped.sum(axis=2) / mu


class FairShare(ServiceDiscipline):
    """Fair Share service via the substream / priority-class construction."""

    name = "fair-share"

    def queue_lengths(self, rates, mu, method: str = "auto"):
        r = as_rate_vector(rates)
        _check_mu(mu)
        n = r.shape[0]
        if pick_kernel(method, n) != "dense":
            # Large gateways: run the single vector as a one-row batch.
            # Same kernels, same operations — the scalar/batch identity
            # is exact by construction — and neither the O(n) Python
            # class loop nor the O(n^2) broadcast ever runs.  Under an
            # active compiled backend the batch path dispatches to the
            # compiled twin of the sorted pipeline (bit-identical).
            return self.queue_lengths_batch(r[None, :], mu,
                                            method=method)[0]
        order = sorted_order(r)
        inv = inverse_permutation(order)
        sigma = cumulative_loads(r, mu, sorted_rates=r[order],
                                 method=method)

        # Class occupancies L_k = g(sigma_k) - g(sigma_{k-1}); classes at
        # or beyond utilisation 1 have no steady state.
        g_sigma = g(sigma)
        q_sorted = np.zeros(n, dtype=float)
        g_prev = 0.0
        acc = np.zeros(n, dtype=float)  # running per-connection shares
        for k in range(n):
            g_now = float(np.atleast_1d(g_sigma)[k])
            if math.isinf(g_now):
                share = math.inf
            else:
                share = (g_now - g_prev) / (n - k)
            # Connections of sorted rank >= k participate in class k,
            # but only if they actually send in it (distinct rate or the
            # class has zero width -> zero share anyway).
            if share != 0.0:
                acc[k:] = acc[k:] + share
            g_prev = g_now if not math.isinf(g_now) else g_prev
            if math.isinf(g_now):
                # Every later class is also overloaded.
                acc[k:] = math.inf
                break
        q_sorted[:] = acc
        # A connection with zero rate has an empty queue regardless.
        sorted_rates = r[order]
        q_sorted[sorted_rates == 0.0] = 0.0
        return q_sorted[inv]

    def queue_lengths_batch(self, rates, mu, method: str = "auto",
                            xp=None):
        """Vectorised FS queue law over an ``(M, n)`` batch of rate rows.

        Sorts each row once, forms the cumulative loads by broadcasting,
        and turns the per-class occupancy increments into per-connection
        shares with a single ``cumsum`` along the class axis — no Python
        loop over either the batch or the classes.

        ``method`` picks the kernel as in :func:`cumulative_loads_batch`
        (``"compiled"`` forces the compiled twin of the sorted pipeline
        when a tier is live); ``xp`` selects the array namespace (numpy
        when ``None``).  The compiled twin only engages on well-formed
        numpy input — non-finite or negative rates take the numpy
        pipeline so edge-case semantics (``nan`` propagation, the
        ``g()`` domain error) are exactly the historical ones.
        """
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        _check_mu(mu)
        if r.ndim != 2:
            raise RateVectorError(
                f"rate batch must be 2-D, got shape {r.shape}")
        m_batch, n = r.shape
        kernel = pick_kernel(method, n)
        if (kernel == "compiled" and xp is np
                and isinstance(r, np.ndarray)
                and np.all(np.isfinite(r)) and np.all(r >= 0)):
            out = _compiled_kernels().fs_queue_batch(r, mu)
            if out is not None:
                return out
        order = xp.argsort(r, axis=1, kind="stable")
        sorted_rates = xp.take_along_axis(r, order, axis=1)
        sigma = cumulative_loads_batch(r, mu, sorted_rates=sorted_rates,
                                       method=method, xp=xp)

        # L_k = g(sigma_k) - g(sigma_{k-1}), shared by the N - k
        # connections in class k; a connection's queue is the cumsum of
        # its class shares.  sigma is nondecreasing along each row, so
        # once g hits inf (overload) every later class is inf too.
        g_sigma = xp.asarray(g(sigma))
        finite = xp.isfinite(g_sigma)
        g_prev = xp.concatenate(
            [xp.zeros((m_batch, 1)), g_sigma[:, :-1]], axis=1)
        class_size = (n - xp.arange(n)).astype(float)
        with np.errstate(invalid="ignore"):
            shares = (g_sigma - g_prev) / class_size
        acc = xp.cumsum(xp.where(finite, shares, 0.0), axis=1)
        q_sorted = xp.where(finite, acc, math.inf)
        q_sorted[sorted_rates == 0.0] = 0.0

        inv = xp.empty_like(order)
        xp.put_along_axis(
            inv, order, xp.broadcast_to(xp.arange(n), order.shape), axis=1)
        return xp.take_along_axis(q_sorted, inv, axis=1)


def fair_share_queues_recursive(rates: Sequence[float],
                                mu: float) -> np.ndarray:
    """The paper's recursion for the FS queues, for cross-validation.

    ``Q_(i) = [ g(sigma_i) - sum_{m<i} Q_(m) ] / (N - i + 1)`` in sorted
    order, mapped back to the original order.  Mathematically identical
    to :meth:`FairShare.queue_lengths`; kept as an independent
    implementation so tests can check the two derivations against each
    other.
    """
    r = as_rate_vector(rates)
    _check_mu(mu)
    n = r.shape[0]
    order = sorted_order(r)
    inv = inverse_permutation(order)
    sorted_rates = r[order]
    sigma = cumulative_loads(r, mu, sorted_rates=sorted_rates)
    g_sigma = np.atleast_1d(g(sigma))
    q_sorted = np.zeros(n, dtype=float)
    running = 0.0
    for i in range(n):
        gi = float(g_sigma[i])
        if math.isinf(gi):
            q_sorted[i:] = math.inf
            break
        q_sorted[i] = (gi - running) / (n - i)
        running += q_sorted[i]
    q_sorted[sorted_rates == 0.0] = 0.0
    return q_sorted[inv]
