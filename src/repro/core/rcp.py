"""Router-side RCP: explicit per-gateway advertised-rate control.

The Rate Control Protocol (Dukkipati–McKeown; global stability analysed
by Voice, Abuthahir and Raina, arXiv:1810.01411) moves the control law
out of the sources entirely.  Every gateway ``a`` maintains a single
advertised rate ``R^a`` and updates it once per control interval from
two locally observable quantities — spare capacity and backlog::

    R^a <- R^a * (1 + alpha * (1 - x^a) - beta * q^a)

where ``x^a = y^a / mu^a`` is the utilisation (``y^a`` the gateway's
arrival rate) and ``q^a`` the aggregate queue length.  Sources do not
run an adjustment rule at all (:class:`~repro.core.ratecontrol
.RcpSourceRule` is the identity); each simply adopts the smallest
advertised rate along its path::

    r_i = min_{a in gamma(i)} R^a

Both gains are dimensionless here (the queue term is the *queue
length*, not a drain-time), which makes the controller time-scale
invariant in utilisation terms: scaling every ``mu`` leaves ``x*`` and
the stability factor unchanged, Theorem 1's TSI property transplanted
to a router-based scheme.

Under the paper's steady-state queue model every work-conserving
discipline carries the same aggregate queue ``q = x / (1 - x)`` (the
total-queue conservation law in :mod:`repro.core.service`), so the
update needs no per-discipline plumbing.

**Fixed point.**  At a bottlenecked gateway the utilisation settles at
the unique root ``x*`` in (0, 1] of::

    alpha * (1 - x)**2 = beta * x

(``x* = 1`` when ``beta = 0``: no queue penalty, full utilisation).
The equilibrium rates are then exactly the max-min fair allocation of
the *effective* capacities ``C^a = x* mu^a``
(:func:`repro.core.fairness.max_min_allocation`): every source
bottlenecked at ``a`` receives the common advertised ``R^a``.

**Stability.**  Linearising the one-gateway map ``x -> x (1 +
alpha (1 - x) - beta x/(1 - x))`` at ``x*`` gives multiplier ``1 - s``
with stability factor::

    s = x* * (alpha + beta / (1 - x*)**2)  =  alpha * (1 + x*)   [beta > 0]
    s = alpha                                                    [beta = 0]

(the second form follows from the fixed-point identity).  The discrete
analogue of the Voice et al. global-stability condition is ``s < 2``:
for ``beta = 0`` the map is conjugate to the logistic map ``z' = (1 +
alpha) z (1 - z)`` via ``z = alpha x / (1 + alpha)``, globally stable
on (0, 1) exactly for ``alpha <= 2`` and period-doubling beyond — the
regime the ``rcp-stability`` fuzz oracle checks from both sides.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np
from scipy import optimize

from ..errors import RateVectorError
from .fairness import max_min_allocation
from .topology import Network

__all__ = ["RcpController", "RcpBank"]

#: Per-step clamp on the multiplicative update factor.  RCP
#: implementations bound the per-interval rate change so a transient
#: (empty network, sudden burst) cannot fling ``R`` to absurd values;
#: [0.5, 2.0] is the customary halve/double envelope.
FACTOR_MIN = 0.5
FACTOR_MAX = 2.0

#: Advertised rates are floored at this fraction of the gateway's
#: capacity so ``R = 0`` is never absorbing, and capped at the capacity
#: itself (a gateway never advertises more than it can serve).
R_MIN_FRACTION = 1e-6


class RcpController:
    """RCP gain configuration + analytic predictions.

    Pure configuration — bind it to a concrete topology with
    :meth:`bind` to get an :class:`RcpBank` holding per-gateway state.

    Args:
        alpha: spare-capacity gain (dimensionless, positive).
        beta: queue-drain gain (dimensionless, nonnegative; ``0``
            disables the queue term and drives utilisation to 1).
        fill: initial advertised rates are ``fill * mu^a / N^a`` — the
            fraction of each gateway's even split handed out at start.
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.05,
                 fill: float = 0.5):
        a = float(alpha)
        if not (math.isfinite(a) and a > 0):
            raise RateVectorError(
                f"RCP gain alpha must be finite and positive, got {alpha!r}")
        b = float(beta)
        if not (math.isfinite(b) and b >= 0):
            raise RateVectorError(
                f"RCP gain beta must be finite and nonnegative, "
                f"got {beta!r}")
        f = float(fill)
        if not (0.0 < f <= 1.0):
            raise RateVectorError(
                f"RCP fill must lie in (0, 1], got {fill!r}")
        self.alpha = a
        self.beta = b
        self.fill = f

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def fixed_point_utilisation(self) -> float:
        """The root ``x*`` of ``alpha (1-x)^2 = beta x`` on (0, 1]."""
        if self.beta == 0.0:
            return 1.0
        a, b = self.alpha, self.beta

        def g(x):
            return a * (1.0 - x) ** 2 - b * x

        # g(0) = alpha > 0, g(1) = -beta < 0 and g is strictly
        # decreasing, so the root is unique.
        return float(optimize.brentq(g, 0.0, 1.0, xtol=1e-14))

    def stability_factor(self) -> float:
        """``s`` with linearised multiplier ``1 - s``; stable iff s < 2."""
        if self.beta == 0.0:
            return self.alpha
        return self.alpha * (1.0 + self.fixed_point_utilisation())

    def bind(self, network: Network) -> "RcpBank":
        """Attach per-gateway state arrays for ``network``."""
        return RcpBank(network, self)

    def __repr__(self):
        return (f"RcpController(alpha={self.alpha}, beta={self.beta}, "
                f"fill={self.fill})")

    def __eq__(self, other):
        return (isinstance(other, RcpController)
                and (self.alpha, self.beta, self.fill)
                == (other.alpha, other.beta, other.fill))

    def __hash__(self):
        return hash((self.alpha, self.beta, self.fill))


class RcpBank:
    """Per-gateway RCP state bound to one topology.

    The state is the vector of advertised rates ``R``, shape ``(G,)``
    scalar / ``(M, G)`` batched, in :attr:`TopologyCSR.gateway_names`
    order.  :meth:`update` and :meth:`update_batch` use identical
    ufunc sequences over identical index arrays, so a batched row is
    bit-for-bit the scalar trajectory — the same contract the rule
    engine's ``step``/``step_batch`` pair keeps.
    """

    def __init__(self, network: Network, controller: RcpController):
        self.network = network
        self.controller = controller
        csr = network.csr
        self._mu = np.asarray(csr.mu, dtype=float)
        self._members = [np.asarray(csr.members(a), dtype=np.intp)
                         for a in range(len(csr.gateway_names))]
        self._counts = np.array(
            [max(1, m.size) for m in self._members], dtype=float)
        self._routes = [np.asarray(csr.route(i), dtype=np.intp)
                        for i in range(network.num_connections)]
        self._floor = R_MIN_FRACTION * self._mu

    @property
    def num_gateways(self) -> int:
        return self._mu.size

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        """``R(0) = fill * mu^a / N^a``, shape ``(G,)``."""
        return self.controller.fill * self._mu / self._counts

    def initial_state_batch(self, members: int) -> np.ndarray:
        """``(M, G)`` copies of :meth:`initial_state`."""
        return np.tile(self.initial_state(), (int(members), 1))

    # ------------------------------------------------------------------
    # the control law
    # ------------------------------------------------------------------
    def _loads(self, r: np.ndarray) -> np.ndarray:
        """Per-gateway arrival rates ``y^a``, ``(..., N) -> (..., G)``.

        The member rates are accumulated one column at a time so the
        floating-point reduction order is fixed left-to-right and
        independent of the batch shape.  ``ndarray.sum`` does NOT give
        that: its pairwise/SIMD partial-sum order varies between 1-D
        vectors and axis-reductions (and even with the number of rows),
        which breaks the bank's scalar/batch bit-identity contract
        after a few compounding steps.
        """
        out = np.empty(r.shape[:-1] + (self.num_gateways,))
        for a, m in enumerate(self._members):
            if m.size == 0:
                out[..., a] = 0.0
                continue
            acc = r[..., m[0]].astype(float, copy=True)
            for j in m[1:]:
                acc += r[..., j]
            out[..., a] = acc
        return out

    def update(self, rates: np.ndarray, state: np.ndarray) -> np.ndarray:
        """One gateway update from a ``(N,)`` rate vector."""
        r = np.asarray(rates, dtype=float)
        return self._advance(self._loads(r),
                             np.asarray(state, dtype=float))

    def update_batch(self, rates: np.ndarray,
                     state: np.ndarray, xp=None) -> np.ndarray:
        """One gateway update per row of a ``(M, N)`` rate batch.

        ``xp`` selects the array namespace (numpy when ``None``); the
        fixed-order load accumulation itself always runs through numpy
        semantics, which any conforming namespace must reproduce.
        """
        xp = np if xp is None else xp
        r = xp.asarray(rates, dtype=float)
        return self._advance(self._loads(r),
                             xp.asarray(state, dtype=float))

    def _advance(self, y: np.ndarray, state: np.ndarray) -> np.ndarray:
        ctl = self.controller
        x = y / self._mu
        gain = ctl.alpha * (1.0 - x)
        if ctl.beta > 0.0:
            # Aggregate queue law q = x/(1-x); clamp the saturated
            # branch — the factor envelope dominates there anyway.
            spare = 1.0 - x
            safe = np.maximum(spare, 1e-12)
            queue = np.where(spare > 1e-12, x / safe, 1e12)
            gain = gain - ctl.beta * queue
        factor = np.clip(1.0 + gain, FACTOR_MIN, FACTOR_MAX)
        return np.clip(state * factor, self._floor, self._mu)

    def advertised(self, state: np.ndarray) -> np.ndarray:
        """Source rates ``r_i = min over gamma(i) of R^a``, ``(N,)``."""
        s = np.asarray(state, dtype=float)
        return np.array([s[route].min() for route in self._routes])

    def advertised_batch(self, state: np.ndarray, xp=None) -> np.ndarray:
        """Per-row advertised rates from ``(M, G)`` state, ``(M, N)``."""
        xp = np if xp is None else xp
        s = xp.asarray(state, dtype=float)
        return xp.stack([s[:, route].min(axis=1)
                         for route in self._routes], axis=-1)

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    def effective_capacities(self) -> Dict[str, float]:
        """``C^a = x* mu^a`` per gateway name."""
        x_star = self.controller.fixed_point_utilisation()
        names = self.network.csr.gateway_names
        return {name: x_star * float(self._mu[a])
                for a, name in enumerate(names)}

    def predicted_allocation(self) -> np.ndarray:
        """The max-min fair allocation of the effective capacities."""
        return max_min_allocation(self.network, self.effective_capacities())
