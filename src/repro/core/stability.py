"""Linear stability analysis of the iterated map (Section 3.3).

A steady state ``r_ss`` of ``r <- F(r)`` is **linearly (systemically)
stable** when every eigenvalue of the Jacobian ``DF_ij = dF_i/dr_j`` has
magnitude below one, and **unilaterally stable** when each *diagonal*
entry does — the quantity an individual connection can measure by
perturbing its own rate.

The paper's central stability findings, all checkable with this module:

* Aggregate feedback with ``B(C)=C/(C+1)`` and ``f = eta (beta - b)``
  at a shared gateway has ``DF = I - eta * 11^T``-like structure:
  diagonal ``1 - eta`` but leading eigenvalue ``1 - eta N`` — unilateral
  stability does not imply systemic stability (Section 3.3 example).
* Individual feedback with Fair Share makes ``DF`` *triangular* in
  increasing-rate order (a connection's signal never depends on faster
  connections), so the eigenvalues are the diagonal and unilateral
  stability *is* systemic stability (Theorem 4).

Because of the MAX/MIN kinks in ``b_i`` and ``C^a_i`` the derivatives
can be one-sided at the steady state; :func:`jacobian` therefore
supports forward, backward and central differencing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import RateVectorError
from .dynamics import FlowControlSystem
from .math_utils import as_rate_vector, sorted_order

__all__ = [
    "jacobian",
    "eigenvalues",
    "spectral_radius",
    "transverse_eigenvalues",
    "transverse_spectral_radius",
    "zero_sum_tangent_basis",
    "unilateral_margins",
    "is_unilaterally_stable",
    "is_systemically_stable",
    "triangularity_defect",
    "is_triangular_in_rate_order",
    "StabilityReport",
    "analyze",
]


def jacobian(system: FlowControlSystem, rates: Sequence[float],
             rel_step: float = 1e-6, scheme: str = "central") -> np.ndarray:
    """Numerical Jacobian ``DF_ij = dF_i/dr_j`` at ``rates``.

    ``scheme`` is one of ``"central"``, ``"forward"``, ``"backward"``.
    Steps are relative to ``max(r_j, 1e-3 * mu_max)`` so zero rates get
    a sensible absolute step; backward steps are clipped to keep probe
    rates nonnegative (falling back to forward differencing at 0).
    """
    if scheme not in ("central", "forward", "backward"):
        raise RateVectorError(f"unknown differencing scheme {scheme!r}")
    r = as_rate_vector(rates, n=system.network.num_connections)
    n = r.shape[0]
    mu_max = max(system.network.mu(g) for g in system.network.gateway_names)
    base = system.step(r)
    out = np.zeros((n, n), dtype=float)
    for j in range(n):
        h = rel_step * max(float(r[j]), 1e-3 * mu_max)
        lo_h = min(h, float(r[j]))  # cannot probe below zero
        if scheme == "forward" or (scheme in ("central", "backward")
                                   and lo_h <= 0.0):
            plus = r.copy()
            plus[j] += h
            out[:, j] = (system.step(plus) - base) / h
        elif scheme == "backward":
            minus = r.copy()
            minus[j] -= lo_h
            out[:, j] = (base - system.step(minus)) / lo_h
        else:
            plus = r.copy()
            plus[j] += h
            minus = r.copy()
            minus[j] -= lo_h
            out[:, j] = (system.step(plus) - system.step(minus)) / (h + lo_h)
    return out


def eigenvalues(df: np.ndarray) -> np.ndarray:
    """Eigenvalues of the stability matrix, sorted by descending modulus."""
    vals = np.linalg.eigvals(np.asarray(df, dtype=float))
    return vals[np.argsort(-np.abs(vals))]


def spectral_radius(df: np.ndarray) -> float:
    """Largest eigenvalue modulus of ``DF``."""
    return float(np.max(np.abs(eigenvalues(df))))


def zero_sum_tangent_basis(n: int) -> np.ndarray:
    """Orthonormal basis of the zero-sum subspace of ``R^n``.

    At a single shared gateway the aggregate steady-state manifold is
    ``{sum r = const}``, whose tangent space is exactly the zero-sum
    vectors; the returned ``(n, n-1)`` matrix spans it.
    """
    if n < 2:
        raise RateVectorError(f"need n >= 2, got {n!r}")
    basis = np.eye(n)[:, : n - 1] - 1.0 / n
    q, _ = np.linalg.qr(basis)
    return q


def transverse_eigenvalues(df: np.ndarray,
                           tangent_basis: np.ndarray) -> np.ndarray:
    """Eigenvalues of ``DF`` restricted transverse to a manifold.

    The paper (Section 2.4.3): with a manifold of steady states, only
    deviations *perpendicular* to it must dissipate.  ``tangent_basis``
    spans the manifold's tangent space; we project ``DF`` onto the
    orthogonal complement and return that block's eigenvalues.
    """
    m = np.asarray(df, dtype=float)
    t = np.asarray(tangent_basis, dtype=float)
    n = m.shape[0]
    if t.shape[0] != n or t.shape[1] >= n:
        raise RateVectorError(
            f"tangent basis shape {t.shape} incompatible with DF "
            f"{m.shape}")
    q, _ = np.linalg.qr(np.hstack([t, np.eye(n)]))
    complement = q[:, t.shape[1]:n]
    block = complement.T @ m @ complement
    return eigenvalues(block)


def transverse_spectral_radius(df: np.ndarray,
                               tangent_basis: np.ndarray) -> float:
    """Largest transverse eigenvalue modulus (manifold-aware stability)."""
    return float(np.max(np.abs(transverse_eigenvalues(df, tangent_basis))))


def unilateral_margins(df: np.ndarray) -> np.ndarray:
    """``|DF_ii|`` — what connection ``i`` measures by self-perturbation."""
    return np.abs(np.diag(np.asarray(df, dtype=float)))


def is_unilaterally_stable(df: np.ndarray, tol: float = 1e-9) -> bool:
    """All diagonal entries have modulus < 1."""
    return bool(np.all(unilateral_margins(df) < 1.0 - tol))


def is_systemically_stable(df: np.ndarray, tol: float = 1e-9) -> bool:
    """All eigenvalues have modulus < 1 (linear stability)."""
    return spectral_radius(df) < 1.0 - tol


def triangularity_defect(df: np.ndarray, rates: Sequence[float]) -> float:
    """Largest ``|DF_ij|`` with ``r_j > r_i`` (in increasing-rate order).

    Zero (up to differencing noise) means a connection's update never
    depends on any *faster* connection — the Fair Share structure behind
    Theorem 4.  Ties in rates are skipped: triangularity is only
    meaningful across strictly separated rates.
    """
    r = as_rate_vector(rates)
    m = np.asarray(df, dtype=float)
    if m.shape != (r.shape[0], r.shape[0]):
        raise RateVectorError(
            f"Jacobian shape {m.shape} does not match {r.shape[0]} rates")
    order = sorted_order(r)
    sorted_rates = r[order]
    permuted = m[np.ix_(order, order)]
    worst = 0.0
    n = r.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if sorted_rates[j] > sorted_rates[i] + 1e-12:
                worst = max(worst, abs(float(permuted[i, j])))
    return worst


def is_triangular_in_rate_order(df: np.ndarray, rates: Sequence[float],
                                tol: float = 1e-4) -> bool:
    """True when :func:`triangularity_defect` is below ``tol``."""
    return triangularity_defect(df, rates) <= tol


@dataclass
class StabilityReport:
    """Everything Section 3.3 asks about one steady state."""

    df: np.ndarray
    eigenvalues: np.ndarray
    spectral_radius: float
    unilateral_margins: np.ndarray
    unilaterally_stable: bool
    systemically_stable: bool
    triangularity_defect: float

    @property
    def unilateral_implies_systemic(self) -> bool:
        """Did unilateral stability correctly predict systemic stability?

        True when the two verdicts agree (the Fair Share guarantee) or
        unilateral stability failed anyway.
        """
        if not self.unilaterally_stable:
            return True
        return self.systemically_stable


def analyze(system: FlowControlSystem, steady_state: Sequence[float],
            rel_step: float = 1e-6,
            scheme: str = "central") -> StabilityReport:
    """Compute the full stability picture at a steady state."""
    df = jacobian(system, steady_state, rel_step=rel_step, scheme=scheme)
    eig = eigenvalues(df)
    return StabilityReport(
        df=df,
        eigenvalues=eig,
        spectral_radius=float(np.max(np.abs(eig))),
        unilateral_margins=unilateral_margins(df),
        unilaterally_stable=is_unilaterally_stable(df),
        systemically_stable=is_systemically_stable(df),
        triangularity_defect=triangularity_defect(df, steady_state),
    )
