"""Attractor classification for orbit tails.

Given a sampled attractor (the tail of a long orbit), decide whether the
long-run behaviour is a fixed point, a periodic cycle (and of what
period), or aperiodic/chaotic — the three regimes the paper names for
the aggregate-feedback recursion.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import RateVectorError

__all__ = ["Regime", "OrbitClass", "classify_tail"]


class Regime(enum.Enum):
    """Long-run behaviour of an orbit."""

    FIXED_POINT = "fixed-point"
    PERIODIC = "periodic"
    APERIODIC = "aperiodic"


@dataclass(frozen=True)
class OrbitClass:
    """Classification result: the regime and, if periodic, the period."""

    regime: Regime
    period: Optional[int]

    def __str__(self):
        if self.regime is Regime.PERIODIC:
            return f"periodic({self.period})"
        return self.regime.value


def classify_tail(tail: Sequence[float], max_period: int = 64,
                  rel_tol: float = 1e-6) -> OrbitClass:
    """Classify an orbit tail as fixed point / periodic(p) / aperiodic.

    A period ``p`` is accepted when the tail matches itself under a lag
    of ``p`` to relative tolerance ``rel_tol`` *and* no smaller lag
    matches (so period-2 is not reported as period-4).  Fixed points are
    period 1.  The tail should be long enough to contain several copies
    of the largest period probed: at least ``3 * max_period`` samples.
    """
    arr = np.asarray(tail, dtype=float)
    if arr.ndim != 1:
        raise RateVectorError(f"tail must be 1-D, got shape {arr.shape}")
    if arr.size < 3 * max_period:
        raise RateVectorError(
            f"tail of {arr.size} samples is too short for max_period="
            f"{max_period}; provide at least {3 * max_period}")
    scale = max(float(np.max(np.abs(arr))), 1e-12)
    for period in range(1, max_period + 1):
        lagged = arr[:-period]
        recent = arr[period:]
        if np.max(np.abs(recent - lagged)) <= rel_tol * scale:
            if period == 1:
                return OrbitClass(Regime.FIXED_POINT, 1)
            return OrbitClass(Regime.PERIODIC, period)
    return OrbitClass(Regime.APERIODIC, None)
