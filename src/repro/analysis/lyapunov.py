"""Lyapunov exponents of one-dimensional maps.

The Lyapunov exponent ``lambda = lim (1/n) sum log |F'(x_k)|``
distinguishes the regimes of the Section 3.3 example: negative at a
stable fixed point or periodic orbit, positive on a chaotic attractor.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..errors import RateVectorError

__all__ = ["lyapunov_exponent"]

#: Slopes below this magnitude contribute a clamped log to avoid ``-inf``
#: from an exactly-superstable point poisoning the average.
_SLOPE_FLOOR = 1e-12


def lyapunov_exponent(fn: Callable[[float], float],
                      derivative: Callable[[float], float],
                      x0: float, steps: int = 5000,
                      discard: int = 500) -> float:
    """Average log-slope along the orbit of ``fn`` from ``x0``.

    Args:
        fn: the map.
        derivative: its pointwise derivative ``F'``.
        x0: initial condition.
        steps: orbit length used for the average (after ``discard``).
        discard: transient iterations excluded from the average.

    Returns:
        The finite-time Lyapunov exponent estimate.
    """
    if steps < 1:
        raise RateVectorError(f"steps must be >= 1, got {steps!r}")
    if discard < 0:
        raise RateVectorError(f"discard must be >= 0, got {discard!r}")
    x = float(x0)
    for _ in range(discard):
        x = float(fn(x))
        if not math.isfinite(x):
            raise RateVectorError("orbit diverged during transient")
    total = 0.0
    for _ in range(steps):
        slope = abs(float(derivative(x)))
        total += math.log(max(slope, _SLOPE_FLOOR))
        x = float(fn(x))
        if not math.isfinite(x):
            raise RateVectorError("orbit diverged during averaging")
    return total / steps
