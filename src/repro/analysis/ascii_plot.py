"""Plain-text charts for examples and experiment reports.

No plotting stack is assumed (the environment is offline); these helpers
render numeric series as ASCII so examples remain runnable anywhere and
EXPERIMENTS.md can embed figure-shaped evidence.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import RateVectorError

__all__ = ["line_chart", "scatter_chart", "histogram"]


def _bounds(values: np.ndarray) -> tuple:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return 0.0, 1.0
    lo, hi = float(np.min(finite)), float(np.max(finite))
    if hi <= lo:
        hi = lo + 1.0
    return lo, hi


def line_chart(ys: Sequence[float], width: int = 72, height: int = 16,
               title: str = "", y_label: str = "") -> str:
    """Render one series as an ASCII line chart (x = index)."""
    arr = np.asarray(ys, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise RateVectorError("line_chart needs a nonempty 1-D series")
    xs = np.arange(arr.size, dtype=float)
    return scatter_chart(xs, arr, width=width, height=height, title=title,
                         y_label=y_label, mark="*")


def scatter_chart(xs: Sequence[float], ys: Sequence[float], width: int = 72,
                  height: int = 16, title: str = "", y_label: str = "",
                  mark: str = ".") -> str:
    """Render (x, y) points on a character grid with axis annotations."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise RateVectorError("scatter_chart needs matching 1-D arrays")
    if width < 16 or height < 4:
        raise RateVectorError("chart must be at least 16x4")
    x_lo, x_hi = _bounds(x)
    y_lo, y_hi = _bounds(y)
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        if not (math.isfinite(xi) and math.isfinite(yi)):
            continue
        col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((yi - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    top = f"{y_hi:.4g}"
    bottom = f"{y_lo:.4g}"
    pad = max(len(top), len(bottom))
    for idx, row in enumerate(grid):
        if idx == 0:
            label = top.rjust(pad)
        elif idx == height - 1:
            label = bottom.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    lines.append(" " * pad + f"  {x_lo:.4g}" +
                 f"{x_hi:.4g}".rjust(width - len(f"{x_lo:.4g}")))
    if y_label:
        lines.append(f"[y: {y_label}]")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 20, width: int = 50,
              title: str = "") -> str:
    """Render a horizontal-bar histogram of ``values``."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise RateVectorError("histogram needs at least one finite value")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(np.max(counts)), 1)
    lines = [title] if title else []
    for k in range(bins):
        bar = "#" * int(round(counts[k] / peak * width))
        lines.append(f"{edges[k]:>10.4g} .. {edges[k + 1]:<10.4g} "
                     f"|{bar} {counts[k]}")
    return "\n".join(lines)
