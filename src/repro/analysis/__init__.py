"""Iterated-map analysis: orbits, attractors, bifurcations, Lyapunov.

Supports the Section 3.3 example in which the aggregate-feedback
dynamics reduce to the quadratic map ``x <- x + eta N (beta - x^2)`` and
walk from stability through period doubling into chaos as ``eta N``
grows.
"""

from .ascii_plot import histogram, line_chart, scatter_chart
from .bifurcation import (BifurcationPoint, bifurcation_diagram,
                          quadratic_map_sweep)
from .classify import OrbitClass, Regime, classify_tail
from .fairness_tables import (allocation_summary, bottleneck_utilisation,
                              format_grid, gateway_utilisations)
from .lyapunov import lyapunov_exponent
from .maps import QuadraticRateMap, orbit, orbit_tail

__all__ = [
    "QuadraticRateMap", "orbit", "orbit_tail",
    "Regime", "OrbitClass", "classify_tail",
    "lyapunov_exponent",
    "BifurcationPoint", "bifurcation_diagram", "quadratic_map_sweep",
    "line_chart", "scatter_chart", "histogram",
    "gateway_utilisations", "bottleneck_utilisation",
    "allocation_summary", "format_grid",
]
