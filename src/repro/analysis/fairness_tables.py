"""Utilisation / Jain-fairness tables for controller sweeps.

The controller-zoo experiment (F13) reports its grids the way
congestion-control benchmark write-ups do: one pipe-separated table
per sweep, a row per grid point, with link utilisation and Jain's
fairness index side by side.  This module holds the small, reusable
pieces: per-gateway utilisation of a rate vector, the
utilisation/fairness summary of an allocation, and the ASCII grid
formatter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.fairness import jain_index
from ..core.topology import Network

__all__ = [
    "gateway_utilisations",
    "bottleneck_utilisation",
    "allocation_summary",
    "format_grid",
]


def gateway_utilisations(network: Network,
                         rates: Sequence[float]) -> Dict[str, float]:
    """Offered load over capacity, ``y^a / mu^a``, per gateway."""
    r = np.asarray(rates, dtype=float)
    out: Dict[str, float] = {}
    for name in network.gateway_names:
        members = network.connections_at(name)
        out[name] = float(r[list(members)].sum()) / network.mu(name)
    return out


def bottleneck_utilisation(network: Network,
                           rates: Sequence[float]) -> float:
    """The busiest gateway's utilisation — the number a capacity
    sweep tracks."""
    return max(gateway_utilisations(network, rates).values())


def allocation_summary(network: Network,
                       rates: Sequence[float]) -> Dict[str, float]:
    """The two grid metrics of an allocation: bottleneck utilisation
    and Jain's fairness index."""
    return {
        "utilisation": bottleneck_utilisation(network, rates),
        "jain": float(jain_index(np.asarray(rates, dtype=float))),
    }


def format_grid(point_label: str,
                rows: Sequence[Tuple[str, float, float]]) -> List[str]:
    """Render ``(point, utilisation, jain)`` rows as a pipe table::

        BW (mu) | Utilization | JFI
        --------|-------------|------
        1       | 0.730       | 1.000

    Returns the table as a list of lines (callers join or append to
    experiment notes).
    """
    width = max(len(point_label),
                max((len(str(p)) for p, _, _ in rows), default=0))
    header = f"{point_label:<{width}} | Utilization | JFI"
    rule = f"{'-' * width}-|-------------|------"
    lines = [header, rule]
    for point, util, jain in rows:
        lines.append(f"{str(point):<{width}} | {util:11.3f} | {jain:.3f}")
    return lines
