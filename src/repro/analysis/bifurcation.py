"""Bifurcation diagrams for map families.

Sweep a parameter, iterate past the transient, and record the attractor
samples — the numeric content of the textbook bifurcation plot.  For
the paper's quadratic rate map this exhibits the stable → period-2 →
period-4 → ... → chaos cascade as ``eta N`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..errors import RateVectorError
from .classify import OrbitClass, classify_tail
from .lyapunov import lyapunov_exponent
from .maps import (QuadraticRateMap, orbit_tail, quadratic_lyapunov_exponents,
                   quadratic_orbit_tails)

__all__ = ["BifurcationPoint", "bifurcation_diagram",
           "quadratic_map_sweep"]


@dataclass
class BifurcationPoint:
    """Attractor summary at one parameter value."""

    parameter: float
    attractor: np.ndarray          #: sampled attractor values
    classification: OrbitClass
    lyapunov: float

    @property
    def n_branches(self) -> int:
        """Distinct attractor values after clustering (inf for chaos)."""
        if self.classification.period is None:
            return len(self.attractor)
        return self.classification.period


def bifurcation_diagram(map_family: Callable[[float], Callable],
                        parameters: Sequence[float], x0: float,
                        transient: int = 2000, keep: int = 256,
                        derivative_family: Callable[[float], Callable] = None,
                        max_period: int = 64,
                        continuation: bool = False
                        ) -> List[BifurcationPoint]:
    """Sweep ``parameters``; classify the attractor at each value.

    ``map_family(p)`` must return the map at parameter ``p``;
    ``derivative_family(p)`` its derivative (required for the Lyapunov
    column; pass ``None`` to skip, yielding ``nan``).

    ``continuation=True`` warm-starts each grid point from the last
    attractor sample of the *previous* point instead of ``x0`` —
    neighbouring parameters have neighbouring attractors, so a much
    smaller ``transient`` suffices to shed the start-up transient.  The
    default (``False``) keeps every point independent and bit-identical
    to earlier releases.  Continuation caveat: crossing a supercritical
    bifurcation, the warm start can land *exactly on* the now-unstable
    branch (e.g. the fixed point past a period-doubling) and stay there
    — the classic continuation failure.  Use it in regimes where the
    attractor deforms continuously, or keep a transient long enough for
    rounding noise to escape the unstable branch.
    """
    if keep < 3 * max_period:
        raise RateVectorError(
            f"keep={keep} too small for max_period={max_period}")
    points = []
    start = x0
    for p in parameters:
        fn = map_family(p)
        tail = orbit_tail(fn, start, transient=transient, keep=keep)
        cls = classify_tail(tail, max_period=max_period)
        if derivative_family is not None:
            lam = lyapunov_exponent(fn, derivative_family(p), start,
                                    steps=transient, discard=transient // 4)
        else:
            lam = float("nan")
        points.append(BifurcationPoint(parameter=float(p), attractor=tail,
                                       classification=cls, lyapunov=lam))
        if continuation:
            start = float(tail[-1])
    return points


def quadratic_map_sweep(gains: Sequence[float], beta: float = 0.25,
                        x0: float = 0.1, transient: int = 2000,
                        keep: int = 256, truncate: bool = True,
                        max_period: int = 64) -> List[BifurcationPoint]:
    """The paper's sweep: ``x <- x + a (beta - x^2)`` over gains ``a``.

    ``a = eta N``; increasing ``N`` at fixed ``eta`` walks the same
    axis, which is how the paper phrases the cascade.  Pass
    ``truncate=False`` to study the untruncated map, whose chaotic band
    survives instead of collapsing onto boundary cycles through 0.

    The whole gain grid is iterated as one array (see
    :func:`~repro.analysis.maps.quadratic_orbit_tails`), so the sweep
    costs one vectorised update per step rather than one Python call
    per (gain, step) pair; each point's attractor, classification, and
    Lyapunov exponent match the generic :func:`bifurcation_diagram`
    driven by :class:`~repro.analysis.maps.QuadraticRateMap`.
    """
    if keep < 3 * max_period:
        raise RateVectorError(
            f"keep={keep} too small for max_period={max_period}")
    # Validates the grid (and each gain) exactly as constructing the
    # per-point QuadraticRateMap would.
    tails = quadratic_orbit_tails(gains, beta=beta, x0=x0,
                                  transient=transient, keep=keep,
                                  truncate=truncate)
    lams = quadratic_lyapunov_exponents(gains, beta=beta, x0=x0,
                                        steps=transient,
                                        discard=transient // 4,
                                        truncate=truncate)
    points = []
    for i, a in enumerate(np.asarray(list(gains), dtype=float)):
        cls = classify_tail(tails[i], max_period=max_period)
        points.append(BifurcationPoint(parameter=float(a),
                                       attractor=tails[i],
                                       classification=cls,
                                       lyapunov=float(lams[i])))
    return points
