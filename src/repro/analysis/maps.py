"""One-dimensional iterated maps (the Section 3.3 route to chaos).

The paper observes that with the signalling function changed so the
aggregate signal at a unit-rate gateway becomes ``rho**2``, a symmetric
initial condition reduces the N-connection update to the scalar map

    ``x <- x + eta N (beta - x**2)``

(``x`` the total sending rate), which moves from a stable fixed point
through period doubling to chaos as ``eta N`` grows — the standard
quadratic-family story of Collet–Eckmann.  This module provides the map,
orbit generation, and the exact reduction from the full
:class:`~repro.core.dynamics.FlowControlSystem`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from ..errors import RateVectorError

__all__ = ["QuadraticRateMap", "orbit", "orbit_tail",
           "quadratic_orbit_tails", "quadratic_lyapunov_exponents"]


@dataclass(frozen=True)
class QuadraticRateMap:
    """The paper's reduced map ``x <- x + a (beta - x^2)``.

    ``a = eta * N`` aggregates the per-connection gain and the number of
    connections; ``beta`` is the target signal.  With ``truncate=True``
    (the default) the image is clamped at 0, mirroring the rate
    truncation of the full dynamics.

    The family is universal in ``alpha = a sqrt(beta)`` (substituting
    ``x = sqrt(beta) y`` gives ``y <- y + alpha (1 - y^2)``):

    * fixed point ``x* = sqrt(beta)``, multiplier
      ``F'(x*) = 1 - 2 alpha``; linearly stable iff ``alpha < 1``;
    * the period-doubling cascade runs for ``alpha`` just above 1 and
      accumulates into chaos near ``alpha ~ 1.28``;
    * slightly before the chaotic band the orbit starts visiting
      negative values, so under truncation the deepest chaos collapses
      onto superstable boundary cycles through 0 — the *untruncated*
      map is the one exhibiting the clean textbook cascade, which is
      why experiments report both variants.
    """

    a: float
    beta: float
    truncate: bool = True

    def __post_init__(self):
        if not (math.isfinite(self.a) and self.a > 0):
            raise RateVectorError(f"gain a must be positive, got {self.a!r}")
        if not (math.isfinite(self.beta) and self.beta > 0):
            raise RateVectorError(
                f"target beta must be positive, got {self.beta!r}")

    def __call__(self, x: float) -> float:
        image = x + self.a * (self.beta - x * x)
        if self.truncate:
            return max(0.0, image)
        return image

    def apply_batch(self, x: np.ndarray) -> np.ndarray:
        """Elementwise map image for an array of states."""
        xv = np.asarray(x, dtype=float)
        image = xv + self.a * (self.beta - xv * xv)
        if self.truncate:
            return np.maximum(0.0, image)
        return image

    def derivative(self, x: float) -> float:
        """``F'(x) = 1 - 2 a x``; 0 on the clamped branch when truncating."""
        if self.truncate and x + self.a * (self.beta - x * x) < 0.0:
            return 0.0
        return 1.0 - 2.0 * self.a * x

    def derivative_batch(self, x: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`derivative` for an array of states."""
        xv = np.asarray(x, dtype=float)
        slope = 1.0 - 2.0 * self.a * xv
        if self.truncate:
            image = xv + self.a * (self.beta - xv * xv)
            return np.where(image < 0.0, 0.0, slope)
        return slope

    @property
    def fixed_point(self) -> float:
        return math.sqrt(self.beta)

    @property
    def multiplier(self) -> float:
        """``F'`` at the fixed point: ``1 - 2 a sqrt(beta)``."""
        return 1.0 - 2.0 * self.a * self.fixed_point

    @property
    def is_linearly_stable(self) -> bool:
        return abs(self.multiplier) < 1.0

    @property
    def period_doubling_gain(self) -> float:
        """The ``a`` at which the fixed point loses stability:
        ``a = 1 / sqrt(beta)``."""
        return 1.0 / math.sqrt(self.beta)

    @classmethod
    def from_system(cls, n_connections: int, eta: float, beta: float,
                    truncate: bool = True) -> "QuadraticRateMap":
        """The reduction of the symmetric N-connection aggregate system.

        With ``B(C) = (C/(C+1))**2``, ``f = eta (beta - b)`` and a single
        unit-rate gateway, the total rate ``x = N r`` obeys
        ``x <- x + eta N (beta - x^2)`` while ``x < 1`` (above capacity
        the signal saturates at 1; the stable and oscillatory regimes
        studied here stay below that).
        """
        if n_connections < 1:
            raise RateVectorError("need at least one connection")
        return cls(a=eta * n_connections, beta=beta, truncate=truncate)


def orbit(fn: Callable[[float], float], x0: float, steps: int,
          discard: int = 0) -> np.ndarray:
    """Iterate ``fn`` from ``x0``; return the post-``discard`` orbit.

    The returned array has ``steps - discard + 1`` entries when
    ``discard == 0`` (it includes ``x0``), otherwise ``steps - discard``.
    """
    if steps < 1:
        raise RateVectorError(f"steps must be >= 1, got {steps!r}")
    if not 0 <= discard <= steps:
        raise RateVectorError(
            f"discard must lie in [0, steps], got {discard!r}")
    out = []
    x = float(x0)
    if discard == 0:
        out.append(x)
    for k in range(1, steps + 1):
        x = float(fn(x))
        if not math.isfinite(x):
            raise RateVectorError(
                f"orbit diverged to {x!r} at step {k}")
        if k > discard:
            out.append(x)
    return np.asarray(out)


def orbit_tail(fn: Callable[[float], float], x0: float,
               transient: int = 2000, keep: int = 200) -> np.ndarray:
    """The attractor sample: iterate ``transient`` steps, keep ``keep``."""
    return orbit(fn, x0, steps=transient + keep, discard=transient)


def _validate_gains(gains, beta: float) -> np.ndarray:
    arr = np.asarray(list(gains), dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise RateVectorError(
            f"gain grid must be a nonempty 1-D sequence, got {gains!r}")
    if not np.all(np.isfinite(arr)) or np.any(arr <= 0):
        raise RateVectorError("every gain must be finite and positive")
    if not (math.isfinite(beta) and beta > 0):
        raise RateVectorError(f"target beta must be positive, got {beta!r}")
    return arr


def quadratic_orbit_tails(gains, beta: float, x0: float,
                          transient: int = 2000, keep: int = 200,
                          truncate: bool = True) -> np.ndarray:
    """Attractor tails of ``x <- x + a (beta - x^2)`` for a whole gain
    grid at once.

    Iterates the entire grid as one array — one vectorised update per
    step instead of one Python call per (gain, step) pair.  Row ``i`` of
    the result equals ``orbit_tail(QuadraticRateMap(gains[i], beta,
    truncate), x0, transient, keep)``, including the ``transient == 0``
    convention of returning ``keep + 1`` samples led by ``x0``.
    """
    a = _validate_gains(gains, beta)
    steps = transient + keep
    if steps < 1:
        raise RateVectorError(f"steps must be >= 1, got {steps!r}")
    if not 0 <= transient <= steps:
        raise RateVectorError(
            f"discard must lie in [0, steps], got {transient!r}")
    n_keep = keep + (1 if transient == 0 else 0)
    out = np.empty((a.size, n_keep), dtype=float)
    col = 0
    x = np.full(a.size, float(x0))
    if transient == 0:
        out[:, col] = x
        col += 1
    for k in range(1, steps + 1):
        image = x + a * (beta - x * x)
        x = np.maximum(0.0, image) if truncate else image
        if not np.all(np.isfinite(x)):
            bad = int(np.flatnonzero(~np.isfinite(x))[0])
            raise RateVectorError(
                f"orbit diverged to {x[bad]!r} at step {k} "
                f"(gain a={a[bad]!r})")
        if k > transient:
            out[:, col] = x
            col += 1
    return out


def quadratic_lyapunov_exponents(gains, beta: float, x0: float,
                                 steps: int = 5000, discard: int = 500,
                                 truncate: bool = True) -> np.ndarray:
    """Finite-time Lyapunov exponents of the quadratic map over a gain
    grid, vectorised across the grid.

    Entry ``i`` equals ``lyapunov_exponent(map_i, map_i.derivative, x0,
    steps, discard)`` for ``map_i = QuadraticRateMap(gains[i], beta,
    truncate)``.
    """
    from .lyapunov import _SLOPE_FLOOR

    a = _validate_gains(gains, beta)
    if steps < 1:
        raise RateVectorError(f"steps must be >= 1, got {steps!r}")
    if discard < 0:
        raise RateVectorError(f"discard must be >= 0, got {discard!r}")

    def advance(x):
        image = x + a * (beta - x * x)
        return np.maximum(0.0, image) if truncate else image

    x = np.full(a.size, float(x0))
    for _ in range(discard):
        x = advance(x)
        if not np.all(np.isfinite(x)):
            raise RateVectorError("orbit diverged during transient")
    total = np.zeros(a.size, dtype=float)
    for _ in range(steps):
        slope = 1.0 - 2.0 * a * x
        if truncate:
            image = x + a * (beta - x * x)
            slope = np.where(image < 0.0, 0.0, slope)
        total += np.log(np.maximum(np.abs(slope), _SLOPE_FLOOR))
        x = advance(x)
        if not np.all(np.isfinite(x)):
            raise RateVectorError("orbit diverged during averaging")
    return total / steps
