"""Fast self-test: ``python -m repro.selftest``.

A smoke check of the batch trajectory engine that finishes well under
30 seconds: every batched path (queue laws, signals, rules, one-step
map, ensemble runner, vectorised quadratic sweep, parallel sweep
runner) is compared against its scalar counterpart on small
configurations, to 1e-12, plus a fault-injection smoke (empty plan is
a no-op, seeded plan replays identically, checkpoint/resume
round-trips), an asynchronous-engine smoke (clocked batched ensemble
bit-identical to the scalar runner, fixed point invariant under a
delayed round-robin schedule) and a scenario-fuzzing smoke
(deterministic generation,
exact JSON round-trip, a handful of generated scenarios through the
full oracle catalogue).  Exit code 0 means everything agreed, and the
nonzero exit propagates through ``python -m repro selftest``.

``--quick`` shrinks the ensembles for CI; ``--force-fail`` injects one
deliberately failing check so the exit-code plumbing itself can be
exercised end to end.

This is deliberately a subset of the full test suite — the quick
confidence check to run after touching the engine, not a replacement
for ``pytest``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .analysis.bifurcation import bifurcation_diagram, quadratic_map_sweep
from .analysis.maps import QuadraticRateMap
from .core.dynamics import FlowControlSystem
from .core.fairshare import FairShare
from .core.fifo import Fifo
from .core.ratecontrol import (DecbitRateRule, ProportionalTargetRule,
                               TargetRule)
from .core.signals import (FeedbackStyle, LinearSaturating,
                           PowerSaturating)
from .core.topology import parking_lot, single_gateway
from .errors import SweepError
from .observability import collect, validate_run_record
from .parallel import sweep

__all__ = ["main", "run_selftest"]

_TOL = 1e-12


def _check(name: str, ok: bool, failures: list) -> None:
    print(f"  {'ok' if ok else 'FAIL'}  {name}")
    if not ok:
        failures.append(name)


def _square(x):
    return x * x


def run_selftest(quick: bool = False, force_fail: bool = False) -> bool:
    """Run every smoke check; return True when all pass.

    ``quick`` shrinks ensemble sizes and step budgets so the whole run
    finishes in a couple of seconds; ``force_fail`` appends one check
    that always fails (for testing exit-code propagation).
    """
    failures: list = []
    rng = np.random.default_rng(42)
    members = 6 if quick else 16
    max_steps = 1000 if quick else 3000
    keep = 192 if quick else 256  # sweep requires keep >= 3 * max_period

    print("batch step vs scalar step:")
    hetero = [TargetRule(eta=0.1, beta=0.5),
              ProportionalTargetRule(eta=0.2, beta=0.4),
              DecbitRateRule(eta=0.05, beta=0.3)]
    for network, label in ((single_gateway(3, mu=1.0), "single-gateway"),
                           (parking_lot(2, mu=1.2), "parking-lot")):
        n = network.num_connections
        for discipline in (Fifo(), FairShare()):
            for style in (FeedbackStyle.AGGREGATE,
                          FeedbackStyle.INDIVIDUAL):
                system = FlowControlSystem(network, discipline,
                                           PowerSaturating(p=2.0),
                                           (hetero * n)[:n], style=style)
                batch = rng.uniform(0.0, 0.3, size=(6, n))
                batch[0] = 0.0            # idle
                batch[1] = 2.0 / n        # overloaded
                out = system.step_batch(batch)
                ok = all(np.allclose(out[m], system.step(batch[m]),
                                     atol=_TOL)
                         for m in range(batch.shape[0]))
                _check(f"{label} {type(discipline).__name__} "
                       f"{style.name.lower()}", ok, failures)

    print("ensemble vs member-by-member run:")
    system = FlowControlSystem(single_gateway(4, mu=1.0), FairShare(),
                               LinearSaturating(),
                               TargetRule(eta=0.1, beta=0.5),
                               style=FeedbackStyle.INDIVIDUAL)
    starts = rng.uniform(0.0, 0.6, size=(members, 4))
    result = system.run_ensemble(starts, max_steps=max_steps)
    ok = True
    for m in range(len(result)):
        traj = system.run(starts[m], max_steps=max_steps)
        ok &= (result.outcomes[m] is traj.outcome
               and result.steps[m] == traj.steps
               and bool(np.allclose(result.finals[m], traj.final,
                                    atol=_TOL)))
    _check(f"{members}-member ensemble matches run()", ok, failures)

    print("blocked ensemble execution:")
    blocked = system.run_ensemble(starts, max_steps=max_steps,
                                  block_size=3)
    _check("block_size=3 is bit-identical to one-shot",
           bool(np.array_equal(blocked.finals, result.finals))
           and blocked.outcomes == result.outcomes
           and bool(np.array_equal(blocked.steps, result.steps)),
           failures)
    lean = system.run_ensemble(starts, max_steps=max_steps,
                               block_size=3, history="none")
    _check("history='none' keeps the finals",
           bool(np.array_equal(lean.finals, result.finals))
           and lean.history_policy == "none", failures)
    try:
        system.run_ensemble(starts, block_size=0)
        _check("block_size=0 raises SweepError", False, failures)
    except SweepError:
        _check("block_size=0 raises SweepError", True, failures)

    print("engine edge cases:")
    empty = system.run_ensemble(np.empty((0, 4)), max_steps=max_steps)
    _check("M=0 ensemble returns well-shaped empties",
           len(empty) == 0 and empty.finals.shape == (0, 4)
           and empty.steps.shape == (0,), failures)
    tied = np.array([0.3, 0.1, 0.1, 0.3])
    perm = np.array([3, 1, 0, 2])
    q_direct = FairShare().queue_lengths(tied, mu=1.0)
    q_perm = FairShare().queue_lengths(tied[perm], mu=1.0)
    _check("Fair Share tie-break is permutation invariant",
           bool(np.array_equal(q_direct[perm], q_perm)), failures)
    over = np.full(4, 0.5)
    _check("overload step stays finite (scalar vs batch)",
           bool(np.allclose(system.step(over),
                            system.step_batch(over[None, :])[0],
                            atol=_TOL))
           and bool(np.all(np.isfinite(system.step(over)))), failures)

    print("observability collector:")
    with collect() as session:
        system.run_ensemble(starts[:4], max_steps=max_steps)
        system.run(starts[0], max_steps=max_steps)
    records = session.run_records
    violations = [v for r in records
                  for v in validate_run_record(r.to_dict(), "selftest")]
    _check("2 schema-valid run records collected",
           len(records) == 2 and not violations, failures)
    _check("telemetry off outside collect()",
           system.run(starts[0], max_steps=max_steps).telemetry is None,
           failures)

    print("vectorised quadratic sweep vs generic path:")
    gains = [0.8, 1.5, 2.3, 2.62]
    pts = quadratic_map_sweep(gains, beta=0.25, x0=0.1, transient=1000,
                              keep=keep)
    generic = bifurcation_diagram(
        lambda a: QuadraticRateMap(a=a, beta=0.25),
        gains, x0=0.1, transient=1000, keep=keep,
        derivative_family=lambda a: QuadraticRateMap(a=a,
                                                     beta=0.25).derivative)
    ok = all(np.array_equal(pt.attractor, gpt.attractor)
             and abs(pt.lyapunov - gpt.lyapunov) <= _TOL
             for pt, gpt in zip(pts, generic))
    _check("4-gain sweep (attractors and lyapunov)", ok, failures)

    print("parallel sweep runner:")
    grid = list(range(17))
    ok = (sweep(_square, grid, workers=1) ==
          sweep(_square, grid, workers=4, executor="thread") ==
          [x * x for x in grid])
    _check("grid order preserved across executors", ok, failures)

    print("fault injection and resilient execution:")
    from .faults import FaultPlan, parse_fault_spec
    plain = system.run(starts[0], max_steps=max_steps)
    empty = system.run(starts[0], max_steps=max_steps,
                       faults=FaultPlan())
    _check("empty fault plan is bit-identical",
           bool(np.array_equal(plain.history, empty.history))
           and empty.fault_events is None, failures)
    plan = parse_fault_spec("loss=0.4,quantise=8,seed=7")
    faulty_a = system.run(starts[0], max_steps=max_steps, faults=plan)
    faulty_b = system.run(starts[0], max_steps=max_steps, faults=plan)
    _check("seeded faulty run is reproducible (trajectory + events)",
           bool(np.array_equal(faulty_a.history, faulty_b.history))
           and faulty_a.fault_events == faulty_b.fault_events
           and len(faulty_a.fault_events) > 0, failures)
    import shutil
    import tempfile
    ckpt = tempfile.mkdtemp(prefix="repro-selftest-ckpt-")
    try:
        first = sweep(_square, grid, executor="serial", chunk_size=4,
                      checkpoint_dir=ckpt)
        resumed = sweep(_square, grid, executor="serial", chunk_size=4,
                        checkpoint_dir=ckpt)
        _check("checkpoint/resume round-trip matches the grid",
               first == resumed == [x * x for x in grid], failures)
    finally:
        shutil.rmtree(ckpt, ignore_errors=True)

    print("structural chaos smoke:")
    from .chaos import (BlasterRule, CapacityDegradation,
                        StructuralFaultPlan, check_robustness_floor)
    splan = StructuralFaultPlan(injectors=(
        CapacityDegradation("g0", factor=0.5, start=30, duration=30),),
        seed=3)
    clean = system.run(starts[0], max_steps=max_steps)
    noop = system.run(starts[0], max_steps=max_steps,
                      structural=StructuralFaultPlan())
    _check("empty structural plan is bit-identical",
           bool(np.array_equal(clean.history, noop.history))
           and noop.structural_events is None, failures)
    dmg_a = system.run(starts[0], max_steps=max_steps, structural=splan)
    dmg_b = system.run(starts[0], max_steps=max_steps, structural=splan)
    _check("structural run is reproducible (trajectory + transitions)",
           bool(np.array_equal(dmg_a.history, dmg_b.history))
           and dmg_a.structural_events == dmg_b.structural_events
           and len(dmg_a.structural_events) == 2, failures)
    mixed = [TargetRule(eta=0.1, beta=0.5)] * 3 \
        + [BlasterRule(increment=0.2, cap=5.0)]
    adv_sys = FlowControlSystem(single_gateway(4, mu=1.0), FairShare(),
                                LinearSaturating(), mixed,
                                style=FeedbackStyle.INDIVIDUAL)
    adv_final = adv_sys.run(starts[0], max_steps=max_steps,
                            tol=1e-11).final
    floor = check_robustness_floor(adv_sys.network, LinearSaturating(),
                                   mixed, adv_final)
    _check("Theorem 5 floor holds for honest sources vs a blaster",
           floor.holds, failures)

    print("asynchronous engine smoke:")
    from .core.asynchronous import (AsynchronousRunner, ClockSchedule,
                                    RateMixClock, RoundRobinSchedule,
                                    run_async_ensemble)
    sched = ClockSchedule(RateMixClock(0.25, 1.0, 0.5, seed=5))
    async_budget = 400 if quick else 1200
    aens = run_async_ensemble(system, starts[:4], schedule=sched,
                              signal_delay=2, max_steps=async_budget,
                              tol=1e-11)
    runner = AsynchronousRunner(system, sched, signal_delay=2)
    ok = True
    for m in range(len(aens)):
        traj = runner.run(starts[m], max_steps=async_budget, tol=1e-11)
        ok &= (aens.outcomes[m] is traj.outcome
               and int(aens.steps[m]) == traj.steps
               and bool(np.array_equal(aens.finals[m], traj.final)))
    _check("clocked ensemble is bit-identical to the scalar runner",
           ok, failures)
    settled = system.run(starts[0], max_steps=max_steps, tol=1e-11)
    held = run_async_ensemble(system, settled.final[None, :],
                              schedule=RoundRobinSchedule(),
                              signal_delay=1, max_steps=async_budget,
                              tol=1e-11)
    _check("sync fixed point survives round-robin with delay",
           settled.outcome.name == "CONVERGED"
           and held.outcomes[0].name == "CONVERGED"
           and bool(np.allclose(held.finals[0], settled.final,
                                atol=1e-8)), failures)

    print("backends:")
    from . import backends
    from .backends import compiled as compiled_kernels
    act = backends.active()
    print(f"  available: {', '.join(backends.available_backends())}; "
          f"active: {act.name} (kernel tier: {act.kernel_tier}, "
          f"compiled FS kernels: "
          f"{'yes' if compiled_kernels.fs_available() else 'no'}, "
          f"compiled FIFO engine: "
          f"{'yes' if compiled_kernels.fifo_lib() is not None else 'no'})")
    big = rng.uniform(0.0, 0.5, size=(4, 96))
    want = FairShare().queue_lengths_batch(big, mu=1.0, method="sorted")
    got = compiled_kernels.fs_queue_batch(big, 1.0)
    if got is None:
        _check("compiled FS kernels unavailable (pure-python tier ok)",
               True, failures)
    else:
        _check("compiled FS queue law is bit-identical to sorted",
               bool(np.array_equal(got, want)), failures)
    stub = backends.resolve("stub")
    stub_sys = FlowControlSystem(single_gateway(4, mu=1.0), FairShare(),
                                 LinearSaturating(),
                                 TargetRule(eta=0.1, beta=0.5),
                                 style=FeedbackStyle.INDIVIDUAL,
                                 backend=stub)
    _check("stub xp namespace is exercised and bit-identical",
           bool(np.array_equal(stub_sys.step_batch(starts[:4]),
                               system.step_batch(starts[:4])))
           and stub.xp.calls > 0, failures)

    print("scenario fuzzing smoke:")
    from .scenarios import generate, run_scenario
    budget = 3 if quick else 6
    specs = generate(11, budget)
    _check("generator is deterministic (same seed, same specs)",
           specs == generate(11, budget), failures)
    from .scenarios import ScenarioSpec
    _check("specs JSON round-trip exactly",
           all(ScenarioSpec.from_json(s.to_json()) == s for s in specs),
           failures)
    outcomes = [run_scenario(s) for s in specs]
    ok = all(o.passed for o in outcomes)
    checked = sum(1 for o in outcomes for res in o.results
                  if res.applicable)
    _check(f"{budget} fuzzed scenarios pass all oracles "
           f"({checked} applicable checks)", ok, failures)
    if not ok:
        for o in outcomes:
            for res in o.violations:
                print(f"       {o.spec.name} {res.name}: {res.detail}")

    if force_fail:
        _check("forced failure (--force-fail)", False, failures)

    return not failures


def main(argv=None, quick: bool = False, force_fail: bool = False) -> int:
    if argv is not None or __name__ == "__main__":
        parser = argparse.ArgumentParser(prog="repro.selftest")
        parser.add_argument("--quick", action="store_true")
        parser.add_argument("--force-fail", action="store_true")
        parser.add_argument("--backend", default=None, metavar="NAME")
        args = parser.parse_args(argv)
        quick = quick or args.quick
        force_fail = force_fail or args.force_fail
        if args.backend is not None:
            from . import backends
            backends.use(backends.resolve(args.backend))
    t0 = time.perf_counter()
    passed = run_selftest(quick=quick, force_fail=force_fail)
    elapsed = time.perf_counter() - t0
    print(f"\nselftest {'PASSED' if passed else 'FAILED'} "
          f"in {elapsed:.1f}s")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
