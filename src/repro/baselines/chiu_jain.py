"""Chiu–Jain additive-increase multiplicative-decrease (AIMD) baseline.

[Chi89] analyses linear controls under *binary* aggregate feedback at a
single bottleneck: every source learns only whether the total load
exceeded a goal.  AIMD (``r += a`` on 0, ``r *= b`` on 1) converges to a
limit cycle around the efficiency line while Jain's fairness index rises
monotonically toward 1 — the classic phase-plane result.

The paper contrasts this with its own steady-state framework: binary
feedback never admits ``f = 0``, so the asymptotics are oscillation, not
a fixed point.  This module reproduces the limit-cycle behaviour and the
fairness convergence so the F11 experiment can quote it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.fairness import jain_index
from ..core.math_utils import as_rate_vector
from ..errors import RateVectorError

__all__ = ["AimdResult", "run_chiu_jain"]


@dataclass
class AimdResult:
    """Trajectory of synchronous binary-feedback AIMD."""

    rates: np.ndarray            #: (steps + 1, N)
    feedback: np.ndarray         #: (steps,) the shared binary signal

    @property
    def fairness_trajectory(self) -> np.ndarray:
        """Jain index at every step — non-decreasing under AIMD."""
        return np.array([jain_index(row) for row in self.rates])

    def mean_total(self, tail: int) -> float:
        """Average total load over the last ``tail`` steps."""
        return float(self.rates[-tail:].sum(axis=1).mean())

    def amplitude(self, tail: int) -> float:
        """Peak-to-trough total-load swing over the last ``tail`` steps."""
        totals = self.rates[-tail:].sum(axis=1)
        return float(totals.max() - totals.min())


def run_chiu_jain(initial_rates: Sequence[float], goal: float,
                  steps: int = 500, additive: float = 0.01,
                  multiplicative: float = 0.85) -> AimdResult:
    """Iterate AIMD under binary feedback ``y = [sum r > goal]``.

    Args:
        initial_rates: starting rates (positive).
        goal: the bottleneck's target total load (the "knee").
        steps: synchronous iterations.
        additive: the additive increase ``a > 0``.
        multiplicative: the decrease factor ``0 < b < 1``.
    """
    r = as_rate_vector(initial_rates)
    if goal <= 0:
        raise RateVectorError(f"goal must be positive, got {goal!r}")
    if additive <= 0:
        raise RateVectorError(f"additive step must be positive")
    if not 0.0 < multiplicative < 1.0:
        raise RateVectorError("decrease factor must lie in (0, 1)")
    history = [r.copy()]
    feedback = []
    for _ in range(steps):
        overloaded = float(np.sum(r)) > goal
        if overloaded:
            r = r * multiplicative
        else:
            r = r + additive
        history.append(r.copy())
        feedback.append(1.0 if overloaded else 0.0)
    return AimdResult(rates=np.asarray(history),
                      feedback=np.asarray(feedback))
