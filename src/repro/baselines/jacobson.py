"""A fluid Jacobson-style (TCP Tahoe) baseline.

Jacobson's 4.3bsd algorithm uses packet drops as implicit aggregate
feedback: slow start doubles the window each round trip until loss,
then congestion avoidance adds one packet per round trip, halving the
slow-start threshold and restarting from one on every loss.  Zhang
[Zha89] and Hashem [Has89] observed pronounced synchronized oscillation
in this scheme — the behaviour the paper cites as evidence of stability
trouble in aggregate implicit feedback.

We model the round-trip-synchronous fluid version at a single drop-tail
bottleneck: a loss epoch occurs whenever the total window exceeds the
pipe size (bandwidth-delay product plus buffer), and *all* connections
cut simultaneously (loss synchronisation).  The sawtooth period and the
window trajectories feed the F11 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.math_utils import as_rate_vector
from ..errors import RateVectorError

__all__ = ["TahoeResult", "run_tahoe"]


@dataclass
class TahoeResult:
    """Window trajectories and loss epochs of the fluid Tahoe model."""

    windows: np.ndarray          #: (steps + 1, N)
    losses: np.ndarray           #: (steps,) 1.0 at synchronized loss epochs

    @property
    def loss_epochs(self) -> np.ndarray:
        """Indices of the loss rounds."""
        return np.nonzero(self.losses > 0.5)[0]

    @property
    def sawtooth_periods(self) -> np.ndarray:
        """Gaps between consecutive loss epochs (rounds)."""
        epochs = self.loss_epochs
        return np.diff(epochs) if epochs.size >= 2 else np.array([])

    def mean_windows(self, tail: int) -> np.ndarray:
        return self.windows[-tail:].mean(axis=0)


def run_tahoe(initial_windows: Sequence[float], pipe: float,
              steps: int = 400, reno: bool = False) -> TahoeResult:
    """Round-trip-synchronous fluid Tahoe/Reno at one bottleneck.

    Args:
        initial_windows: starting windows (positive).
        pipe: capacity in packets (bandwidth-delay product + buffer);
            a round with ``sum w > pipe`` is a synchronized loss round.
        steps: number of round trips to simulate.
        reno: halve on loss instead of Tahoe's reset-to-one.
    """
    w = as_rate_vector(initial_windows)
    if np.any(w <= 0):
        raise RateVectorError("initial windows must be positive")
    if pipe <= 0:
        raise RateVectorError(f"pipe size must be positive, got {pipe!r}")
    ssthresh = np.full(w.shape[0], pipe / 2.0)
    history = [w.copy()]
    losses = []
    for _ in range(steps):
        if float(np.sum(w)) > pipe:
            ssthresh = np.maximum(w / 2.0, 1.0)
            w = w / 2.0 if reno else np.ones_like(w)
            losses.append(1.0)
        else:
            in_slow_start = w < ssthresh
            w = np.where(in_slow_start, np.minimum(2.0 * w, ssthresh),
                         w + 1.0)
            losses.append(0.0)
        history.append(w.copy())
    return TahoeResult(windows=np.asarray(history),
                       losses=np.asarray(losses))
