"""Baseline algorithms from the paper's Section 4 and related work.

* :mod:`repro.baselines.decbit` — the DECbit window algorithm (latency
  sensitivity, non-TSI sawtooth).
* :mod:`repro.baselines.chiu_jain` — binary-feedback AIMD (limit cycle
  + monotone fairness convergence).
* :mod:`repro.baselines.jacobson` — fluid TCP Tahoe at a drop-tail
  bottleneck (synchronized sawtooth oscillation).
* :mod:`repro.baselines.reservation` — the reservation-based allocation
  that defines the robustness floor and the delay comparison.
"""

from .chiu_jain import AimdResult, run_chiu_jain
from .decbit import DecbitWindowResult, run_decbit_windows
from .jacobson import TahoeResult, run_tahoe
from .reservation import reservation_delays, reservation_rates

__all__ = [
    "DecbitWindowResult", "run_decbit_windows",
    "AimdResult", "run_chiu_jain",
    "TahoeResult", "run_tahoe",
    "reservation_rates", "reservation_delays",
]
