"""The reservation-based allocation baseline (Section 2.4.4).

A reservation network carves each server into ``N^a`` equal slices of
rate ``mu^a / N^a``, guaranteeing every connection its slice whatever
the others do — at the price of losing statistical multiplexing.  The
robustness goal says a datagram scheme must never allocate less
throughput than this baseline; the paper's closing remark is that a
robust TSI individual+Fair Share scheme also beats it on queueing delay
by a factor of at least ``N^a`` per gateway.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.robustness import reservation_floor
from ..core.topology import Network

__all__ = ["reservation_rates", "reservation_delays"]


def reservation_rates(network: Network, rho_ss: float) -> np.ndarray:
    """Steady rates under reservations: the robustness floor itself.

    Each connection, alone on its reserved ``mu^a / N^a`` slices,
    settles where its tightest slice reaches the steady utilisation:
    ``min_a rho_ss mu^a / N^a``.
    """
    return reservation_floor(network, rho_ss)


def reservation_delays(network: Network, rho_ss: float) -> np.ndarray:
    """Mean round-trip delay under reservations at the steady rates.

    At gateway ``a`` the connection is an M/M/1 with service rate
    ``mu^a / N^a`` and arrival rate ``r_i``, so the sojourn is
    ``1 / (mu^a / N^a - r_i)``; latencies add along the path.
    """
    rates = reservation_rates(network, rho_ss)
    delays = np.zeros(network.num_connections, dtype=float)
    for i in range(network.num_connections):
        total = network.path_latency(i)
        for gname in network.gamma(i):
            slice_rate = network.mu(gname) / network.n_at(gname)
            if rates[i] >= slice_rate:
                total = math.inf
                break
            total += 1.0 / (slice_rate - rates[i])
        delays[i] = total
    return delays
