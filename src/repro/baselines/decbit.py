"""The DECbit window algorithm as a baseline (paper Section 4).

The original DECbit scheme [Jai88, Ram88, Chi89] is a *window*
algorithm: each round trip, a source increases its window by one packet
if fewer than half of the returning congestion bits were set, and
multiplies it by a decrease factor (0.875) otherwise; the gateway sets
the bit when its average queue is at least one packet.

We model it on the analytic substrate: rates are windows divided by
round-trip delays, ``r_i = w_i / d_i(r)``, queue averages come from the
FIFO law, and the bit is the thresholded aggregate queue.  The paper's
point, reproduced by the F11 experiment: the ``1/d`` factor makes the
allocation latency-sensitive (long-latency connections lose), and the
scheme is not TSI — scaling every ``mu`` does not scale the sawtooth's
operating point linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.delays import round_trip_delays
from ..core.fifo import Fifo
from ..core.math_utils import as_rate_vector
from ..core.service import ServiceDiscipline
from ..core.topology import Network
from ..errors import RateVectorError

__all__ = ["DecbitWindowResult", "run_decbit_windows"]


@dataclass
class DecbitWindowResult:
    """Window/rate trajectories of a synchronous DECbit run."""

    windows: np.ndarray          #: (steps + 1, N)
    rates: np.ndarray            #: (steps + 1, N)
    bits: np.ndarray             #: (steps, N) congestion bit per source

    def mean_rates(self, tail: int) -> np.ndarray:
        """Average rates over the last ``tail`` steps (the sawtooth mean)."""
        if tail < 1:
            raise RateVectorError(f"tail must be >= 1, got {tail!r}")
        return self.rates[-tail:].mean(axis=0)


def run_decbit_windows(network: Network,
                       initial_windows: Sequence[float],
                       steps: int = 400,
                       queue_threshold: float = 1.0,
                       decrease: float = 0.875,
                       increase: float = 1.0,
                       discipline: ServiceDiscipline = None,
                       min_window: float = 0.1) -> DecbitWindowResult:
    """Synchronous DECbit window dynamics on the analytic model.

    Each step: rates are ``w_i / d_i`` at the previous rates' delays;
    the congestion bit of source ``i`` is set when the aggregate queue
    at any gateway on its path reaches ``queue_threshold``; windows then
    move by ``+increase`` or ``* decrease``.
    """
    if discipline is None:
        discipline = Fifo()
    w = as_rate_vector(initial_windows, n=network.num_connections)
    if np.any(w <= 0):
        raise RateVectorError("initial windows must be positive")
    n = network.num_connections
    # Bootstrap delays from the empty network (latency + 1/mu).
    rates = np.array([
        min(network.mu(g) for g in network.gamma(i)) * 0.01
        for i in range(n)])
    windows_hist = [w.copy()]
    rates_hist = [rates.copy()]
    bits_hist = []
    for _ in range(steps):
        d = round_trip_delays(network, discipline, rates)
        d = np.where(np.isfinite(d), d, np.max(d[np.isfinite(d)])
                     if np.any(np.isfinite(d)) else 1.0)
        d = np.maximum(d, 1e-9)
        rates = w / d
        # Keep the substrate in its stable regime: cap utilisation just
        # below 1 so the FIFO law stays finite (a real gateway would be
        # dropping packets here, which the window model cannot see).
        for gname in network.gateway_names:
            local = list(network.connections_at(gname))
            load = float(np.sum(rates[local]))
            cap = 0.98 * network.mu(gname)
            if load > cap:
                rates[local] *= cap / load
        bits = np.zeros(n)
        for i in range(n):
            congested = any(
                float(np.sum(discipline.queue_lengths(
                    network.local_rates(g, rates), network.mu(g))))
                >= queue_threshold
                for g in network.gamma(i))
            bits[i] = 1.0 if congested else 0.0
        w = np.where(bits > 0.5, np.maximum(w * decrease, min_window),
                     w + increase)
        windows_hist.append(w.copy())
        rates_hist.append(rates.copy())
        bits_hist.append(bits.copy())
    return DecbitWindowResult(
        windows=np.asarray(windows_hist),
        rates=np.asarray(rates_hist),
        bits=np.asarray(bits_hist),
    )
