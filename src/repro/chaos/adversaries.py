"""The adversary zoo: misbehaving rate-adjustment rules.

Theorem 5's robustness guarantee is a statement about *neighbours that
misbehave*: whatever rules the other sources run, an honest TSI source
behind a Fair Share gateway keeps its reservation floor
``min_a rho_ss * mu^a / N^a``.  These rules are the misbehaviour — each
is a legal :class:`~repro.core.ratecontrol.RateAdjustment` (so it
composes with honest rules per connection, scalar and batch alike)
that deliberately violates the paper's design contract by ignoring or
abusing the congestion signal:

* :class:`BlasterRule` — feedback-ignoring ramp: always add
  ``increment`` until the line-rate ``cap``, whatever the signal says;
* :class:`PinnedRateRule` — jumps to a fixed rate and holds it,
  deaf to congestion;
* :class:`SawtoothRule` — a signal-ignoring AIMD-style relay (per the
  Andrews–Slivkins oscillation regime): additive climb to ``high``,
  instant crash to ``low``, forever.

:func:`is_adversary` / :func:`honest_indices` let the robustness-floor
monitor (and oracle #14) separate the honest connections whose floors
Theorem 5 actually guarantees from the misbehaving ones it does not.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.ratecontrol import RateAdjustment
from ..errors import ChaosError

__all__ = ["AdversaryRule", "BlasterRule", "PinnedRateRule",
           "SawtoothRule", "is_adversary", "honest_indices"]


def _positive(value: float, what: str) -> float:
    v = float(value)
    if not (math.isfinite(v) and v > 0):
        raise ChaosError(f"{what} must be finite and positive, "
                         f"got {value!r}")
    return v


class AdversaryRule(RateAdjustment):
    """Base class marking a rule as deliberately misbehaving.

    Subclasses ignore the congestion signal (``df/db = 0``), which is
    exactly what the paper's design space forbids — and what Theorem 5
    must survive.
    """

    name = "adversary"


class BlasterRule(AdversaryRule):
    """Feedback-ignoring blaster: ``f = increment`` until ``cap``.

    Ramps unconditionally, then pins at the cap (its line rate), so
    trajectories stay classifiable instead of formally diverging.
    """

    name = "blaster"

    def __init__(self, increment: float = 0.05, cap: float = 10.0):
        self.increment = _positive(increment, "blaster increment")
        self.cap = _positive(cap, "blaster cap")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        return min(self.increment, self.cap - rate) if rate < self.cap \
            else self.cap - rate

    def delta_batch(self, rates, signals, delays):
        r = np.asarray(rates, dtype=float)
        return np.minimum(self.increment, self.cap - r)

    def __repr__(self):
        return f"BlasterRule(increment={self.increment}, cap={self.cap})"


class PinnedRateRule(AdversaryRule):
    """Fixed-rate pinner: ``f = pinned - r`` (jump and hold)."""

    name = "pinned"

    def __init__(self, rate: float = 1.0):
        self.rate = _positive(rate, "pinned rate")
        self.declared_target = None

    def delta(self, rate, signal, delay):
        return self.rate - rate

    def delta_batch(self, rates, signals, delays):
        r = np.asarray(rates, dtype=float)
        return self.rate - r

    def __repr__(self):
        return f"PinnedRateRule(rate={self.rate})"


class SawtoothRule(AdversaryRule):
    """Signal-ignoring AIMD relay: climb to ``high``, crash to ``low``.

    ``f = increase`` while ``r < high`` and ``f = low - r`` at or above
    it — the perpetual-sawtooth regime of Andrews–Slivkins, with the
    feedback loop cut entirely.  Never admits ``f = 0``, so the
    long-run behaviour is a limit cycle.
    """

    name = "sawtooth"

    def __init__(self, low: float = 0.1, high: float = 2.0,
                 increase: float = 0.1):
        self.low = _positive(low, "sawtooth low rate")
        self.high = _positive(high, "sawtooth high rate")
        if not self.low < self.high:
            raise ChaosError(
                f"sawtooth needs low < high, got low={low!r}, "
                f"high={high!r}")
        self.increase = _positive(increase, "sawtooth increase")

    def delta(self, rate, signal, delay):
        if rate < self.high:
            return self.increase
        return self.low - rate

    def delta_batch(self, rates, signals, delays):
        r = np.asarray(rates, dtype=float)
        return np.where(r < self.high, self.increase, self.low - r)

    def __repr__(self):
        return (f"SawtoothRule(low={self.low}, high={self.high}, "
                f"increase={self.increase})")


def is_adversary(rule: RateAdjustment) -> bool:
    """True when ``rule`` is a member of the adversary zoo."""
    return isinstance(rule, AdversaryRule)


def honest_indices(rules: Sequence[RateAdjustment]) -> np.ndarray:
    """Indices of the connections running honest (non-adversary) rules."""
    return np.asarray([i for i, rule in enumerate(rules)
                       if not is_adversary(rule)], dtype=np.intp)
