"""Kill-anywhere harness: SIGKILL a worker at fuzzed crashpoints and
prove the resumed sweep is bit-identical to an uninterrupted one.

The victim is a real subprocess running a real
:class:`~repro.parallel.SweepJob` through the orchestrator, with
``REPRO_CRASHPOINT`` armed at a fuzzed ``(site, hit-count)`` pair drawn
from :data:`~repro.chaos.crashpoints.KNOWN_CRASHPOINTS` — including the
mid-write windows between a checkpoint's temp file and its atomic
rename.  The harness then re-runs the victim unarmed against the same
job directory and asserts the recovered results equal the clean
``[fn(p) for p in grid]`` list exactly.

This module sits *above* :mod:`repro.parallel` in the layering (it
imports the orchestrator), which is why :mod:`repro.chaos`'s package
``__init__`` does not import it eagerly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from .crashpoints import CRASHPOINT_ENV, KNOWN_CRASHPOINTS

__all__ = ["KillReport", "victim_fn", "victim_job", "run_victim",
           "kill_anywhere"]


def victim_fn(x: int) -> tuple:
    """Deterministic per-item work for the victim sweep (module-level
    so shard pickles and resumed checkpoints replay identically)."""
    return (x, x * x - 3 * x)


def victim_job(name: str, n_items: int, shards: int):
    """The victim's :class:`~repro.parallel.SweepJob` — serial executor
    so the SIGKILL lands in the process doing the checkpoint writes."""
    from ..parallel import SweepJob
    return SweepJob(name=name, fn=victim_fn, grid=list(range(n_items)),
                    shards=shards, executor="serial", retries=0)


_VICTIM_SOURCE = """\
import sys

from repro.chaos.harness import victim_job
from repro.parallel import Orchestrator

root, name, n_items, shards = sys.argv[1:5]
orchestrator = Orchestrator(root)
job = victim_job(name, int(n_items), int(shards))
orchestrator.submit(job)
orchestrator.run_job(name)
"""


def run_victim(root: Union[str, Path], job_name: str = "kill-anywhere",
               n_items: int = 9, shards: int = 3,
               crash_spec: Optional[str] = None,
               timeout: float = 120.0) -> subprocess.CompletedProcess:
    """Run one victim subprocess against ``root``; returns the
    completed process (``returncode == -SIGKILL`` when the armed
    crashpoint fired, ``0`` on a clean finish)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if crash_spec:
        env[CRASHPOINT_ENV] = crash_spec
    else:
        env.pop(CRASHPOINT_ENV, None)
    return subprocess.run(
        [sys.executable, "-c", _VICTIM_SOURCE, str(root), job_name,
         str(int(n_items)), str(int(shards))],
        env=env, capture_output=True, text=True, timeout=timeout)


@dataclass(frozen=True)
class KillReport:
    """The outcome of one kill-and-resume round."""

    point: str
    count: int
    killed: bool
    resumed: bool
    identical: bool
    note: str = ""

    @property
    def ok(self) -> bool:
        """The round proved recovery: resume finished and the results
        match the uninterrupted reference bit-for-bit.  (``killed`` may
        legitimately be False when the fuzzed hit count exceeds how
        often the site is reached — the run simply completed.)"""
        return self.resumed and self.identical

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"FAILED ({self.note or 'mismatch'})"
        death = "killed" if self.killed else "survived"
        return (f"{self.point}:{self.count} -> {death}, "
                f"resume {verdict}")


def kill_anywhere(workdir: Union[str, Path], rounds: int = 6,
                  seed: int = 0, n_items: int = 9, shards: int = 3,
                  points: Sequence[str] = KNOWN_CRASHPOINTS,
                  max_count: int = 3) -> List[KillReport]:
    """Fuzz ``rounds`` (site, count) pairs; kill, resume, compare.

    Every round uses a fresh job directory under ``workdir``.  The
    reference is the clean list comprehension — the strongest oracle
    available, since the orchestrator's contract is exactly
    ``[fn(p) for p in grid]``.
    """
    from ..parallel import Orchestrator
    workdir = Path(workdir)
    expected = [victim_fn(x) for x in range(n_items)]
    rng = np.random.default_rng(seed)
    reports: List[KillReport] = []
    for k in range(rounds):
        point = points[int(rng.integers(0, len(points)))]
        count = int(rng.integers(1, max_count + 1))
        root = workdir / f"round_{k:02d}"
        victim = run_victim(root, n_items=n_items, shards=shards,
                            crash_spec=f"{point}:{count}")
        killed = victim.returncode == -int(signal.SIGKILL)
        if not killed and victim.returncode != 0:
            reports.append(KillReport(
                point, count, killed=False, resumed=False, identical=False,
                note=f"victim exited {victim.returncode}: "
                     f"{victim.stderr.strip()[-400:]}"))
            continue
        resume = run_victim(root, n_items=n_items, shards=shards,
                            crash_spec=None)
        resumed = resume.returncode == 0
        identical = False
        note = ""
        if resumed:
            try:
                identical = (Orchestrator(root).results("kill-anywhere")
                             == expected)
                if not identical:
                    note = "recovered results differ from reference"
            except Exception as exc:
                note = f"results unreadable after resume: {exc!r}"
        else:
            note = (f"resume exited {resume.returncode}: "
                    f"{resume.stderr.strip()[-400:]}")
        reports.append(KillReport(point, count, killed=killed,
                                  resumed=resumed, identical=identical,
                                  note=note))
    return reports
