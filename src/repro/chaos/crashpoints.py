"""Env-armed crashpoints: deterministic SIGKILL injection sites.

The kill-anywhere harness needs to murder a worker at *specific*
places — above all between a checkpoint's temp-file write and its
atomic ``os.replace`` — and have the next run prove the resume path is
bit-identical.  A crashpoint is one named call site::

    crashpoint("sweep-checkpoint-mid-write")

Unarmed (the default — ``REPRO_CRASHPOINT`` unset) it is a dictionary
miss and nothing more; the production path is untouched.  Armed with
``REPRO_CRASHPOINT="name"`` or ``"name:count"``, the process SIGKILLs
*itself* the ``count``-th time that site is hit — no cleanup handlers,
no ``atexit``, exactly the crash a power loss delivers.  The
environment variable propagates into worker subprocesses, so a
crashpoint inside a sweep worker kills the worker, not the harness.

:data:`KNOWN_CRASHPOINTS` is the catalogue of instrumented sites; the
harness fuzzes over it rather than hard-coding names.
"""

from __future__ import annotations

import os
import signal
from typing import Dict, Tuple

from ..errors import ChaosError

__all__ = ["CRASHPOINT_ENV", "KNOWN_CRASHPOINTS", "crashpoint",
           "parse_crashpoint", "reset_crashpoints"]

CRASHPOINT_ENV = "REPRO_CRASHPOINT"

#: Every instrumented call site, in execution order along the sweep /
#: orchestrator write paths.  ``mid-write`` points sit between a temp
#: file's write and its atomic ``os.replace`` — the window a naive
#: checkpointer corrupts.
KNOWN_CRASHPOINTS = (
    "sweep-checkpoint-pre-write",
    "sweep-checkpoint-mid-write",
    "orchestrator-pre-shard-result",
    "orchestrator-shard-mid-write",
    "orchestrator-pre-state-update",
    "orchestrator-state-mid-write",
)

_hits: Dict[str, int] = {}


def parse_crashpoint(spec: str) -> Tuple[str, int]:
    """Parse ``"name"`` or ``"name:count"`` into ``(name, count)``."""
    if not isinstance(spec, str) or not spec:
        raise ChaosError(
            f"crashpoint spec must be a nonempty string, got {spec!r}")
    name, _, count_text = spec.partition(":")
    if not name:
        raise ChaosError(f"crashpoint spec {spec!r} has no name")
    if not count_text:
        return name, 1
    try:
        count = int(count_text)
    except ValueError:
        raise ChaosError(
            f"crashpoint count must be an integer, got {spec!r}") from None
    if count < 1:
        raise ChaosError(
            f"crashpoint count must be >= 1, got {spec!r}")
    return name, count


def crashpoint(name: str) -> None:
    """Die here if armed for this site; otherwise do nothing."""
    spec = os.environ.get(CRASHPOINT_ENV)
    if not spec:
        return
    target, count = parse_crashpoint(spec)
    if target != name:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] >= count:
        os.kill(os.getpid(), signal.SIGKILL)


def reset_crashpoints() -> None:
    """Forget hit counts (test isolation within one process)."""
    _hits.clear()
