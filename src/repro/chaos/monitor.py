"""Runtime robustness-floor monitor (Theorem 5 under adversaries).

Theorem 5 guarantees every connection at least the reservation floor
``floor_i = min_a rho_ss_i * mu^a / N^a`` under a TSI individual
scheme whose discipline satisfies the queueing bound — *whatever* the
other sources do.  :func:`check_robustness_floor` turns that into a
runtime assertion over the **honest** connections only (the adversary
zoo's members get no guarantee — they forfeited it by ignoring the
signal), computed against whatever network is passed in: the intact
topology for adversary-only runs, or a degraded
:meth:`~repro.core.topology.Network.with_mu_factors` network when the
floor is being judged mid-outage (graceful degradation: the guarantee
shrinks *with* the capacity, it does not vanish).

Fair Share satisfies Theorem 5's condition, so the check must hold
there; FIFO violates it as soon as an adversary sends faster — the
demonstration the `adversarial-floor` fuzz oracle and experiment X7
both run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.ratecontrol import RateAdjustment, tsi_target
from ..core.robustness import reservation_floor_heterogeneous
from ..core.topology import Network
from ..errors import ChaosError
from .adversaries import honest_indices

__all__ = ["FloorCheck", "check_robustness_floor"]

#: Relative slack for the floor assertion (matches the fuzz oracle's
#: FLOOR_TOL — finite-precision fixed points sit a hair under).
FLOOR_TOL = 1e-5


@dataclass(frozen=True)
class FloorCheck:
    """The verdict of one robustness-floor assertion.

    Attributes:
        honest: indices of the honest connections that were judged.
        floors: their reservation floors, aligned with ``honest``.
        rates: their achieved rates, aligned with ``honest``.
        ratios: ``rates / floors``.
        worst: ``min(ratios)`` — at or above ``1 - FLOOR_TOL`` means
            every honest connection kept its guarantee.
        holds: the boolean verdict.
    """

    honest: np.ndarray
    floors: np.ndarray
    rates: np.ndarray
    ratios: np.ndarray
    worst: float
    holds: bool

    def describe(self) -> str:
        verdict = "holds" if self.holds else "VIOLATED"
        return (f"robustness floor {verdict}: worst honest ratio "
                f"{self.worst:.6f} over {self.honest.size} connections")


def check_robustness_floor(network: Network, signal_fn,
                           rules: Sequence[RateAdjustment],
                           rates: Sequence[float],
                           tol: float = FLOOR_TOL,
                           rho_ss: Optional[Sequence[float]] = None
                           ) -> FloorCheck:
    """Assert Theorem 5's floor for the honest connections.

    Each honest connection's steady utilisation comes from its own
    rule's TSI target through ``signal_fn.steady_state_utilisation``
    (the heterogeneous form used in the proof); pass ``rho_ss`` (one
    value per connection, adversary entries ignored) to override —
    e.g. when the honest rules are not TSI and no floor is defined,
    which otherwise raises :class:`~repro.errors.ChaosError`.

    ``network`` is the topology to judge against — the intact network
    for behavioural misbehaviour alone, or the degraded network while
    a structural window is active.
    """
    r = np.asarray(rates, dtype=float)
    n = network.num_connections
    if r.shape != (n,):
        raise ChaosError(
            f"need one rate per connection ({n}), got shape {r.shape}")
    if len(rules) != n:
        raise ChaosError(
            f"need one rule per connection ({n}), got {len(rules)}")
    honest = honest_indices(rules)
    if honest.size == 0:
        raise ChaosError(
            "every connection is an adversary; Theorem 5 guarantees "
            "nothing and there is no floor to monitor")
    if rho_ss is not None:
        rho = np.asarray(rho_ss, dtype=float)
        if rho.shape != (n,):
            raise ChaosError(
                f"need one rho_ss per connection ({n}), got shape "
                f"{rho.shape}")
    else:
        rho = np.full(n, 0.5)  # adversary slots: placeholder in (0, 1)
        for i in honest:
            rule = rules[i]
            if rule.declared_target is None:
                raise ChaosError(
                    f"honest rule {rule!r} (connection {i}) is not TSI; "
                    f"its reservation floor is undefined — pass rho_ss "
                    f"explicitly")
            rho[i] = signal_fn.steady_state_utilisation(tsi_target(rule))
    floors = reservation_floor_heterogeneous(network, rho)[honest]
    achieved = r[honest]
    ratios = achieved / floors
    worst = float(np.min(ratios))
    return FloorCheck(honest=honest, floors=floors, rates=achieved,
                      ratios=ratios, worst=worst,
                      holds=worst >= 1.0 - tol)
