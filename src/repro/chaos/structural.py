"""Structural fault plans: scheduled topology damage.

Where :mod:`repro.faults` perturbs the *signal path* (what sources
observe), a :class:`StructuralFaultPlan` perturbs the *network itself*:
gateways lose capacity or stop forwarding entirely for scheduled
windows of steps, then restore.  Two injector families with defined
degradation semantics:

* :class:`CapacityDegradation` — gateway ``a``'s service rate becomes
  ``factor * mu^a`` while the window is active (proportional ``mu``
  scaling).  Queue laws, congestion signals, and round-trip delays are
  all recomputed on the degraded network, so the whole analytic
  pipeline — scalar, batch, and CSR sparse paths alike — sees the
  damage through the one quantity it reads, ``network.mu(a)``.
* :class:`GatewayBlackhole` — gateway ``a`` stops forwarding: every
  connection routed through it observes the saturated congestion
  signal ``b = 1`` while the window is active (*rerouting-free*
  semantics — the model has static routes, so a dead gateway is
  maximal congestion, not a detour).  Honest rules back off toward
  zero; the window ending is the restore event.

Determinism contract (the :class:`~repro.faults.FaultPlan` precedent):

* an *empty* plan starts to ``None`` — callers keep the clean code
  path, which is therefore bit-identical by construction;
* windows are deterministic in the step index; the plan ``seed`` and
  the member index drive only the optional per-member start ``jitter``
  (one draw per injector per member from
  ``default_rng([seed, member])``), so ensemble member ``m``
  reproduces ``run(initials[m], structural=plan, fault_member=m)``
  exactly, blocked or not;
* while no window is active the resolved view *is* the base network
  and scheme — the pre-fault prefix of a faulted run is bit-identical
  to a clean run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..errors import ChaosError

__all__ = ["StructuralEvent", "StructuralInjector", "CapacityDegradation",
           "GatewayBlackhole", "StructuralFaultPlan", "StructuralFaultState"]


class StructuralEvent(NamedTuple):
    """One structural transition, as recorded.

    ``kind`` is ``"degrade"`` / ``"blackhole"`` when a window opens and
    ``"restore"`` when it closes; ``detail`` is the degradation factor
    (``0.0`` for a blackhole, ``1.0`` for a restore).
    """

    step: int
    member: int
    gateway: str
    kind: str
    detail: float

    def as_list(self) -> list:
        """JSON-safe view (observability artifacts, X7 tables)."""
        return [int(self.step), int(self.member), str(self.gateway),
                str(self.kind), float(self.detail)]


class StructuralInjector:
    """Base class; subclasses set ``kind`` and a scheduled window."""

    kind: str = "abstract"

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for key, value in self.__dict__.items():
            out[key] = value
        return out


def _check_window(start, duration, period, jitter):
    if not (isinstance(start, int) and start >= 0):
        raise ChaosError(f"window start must be an int >= 0, got {start!r}")
    if not (isinstance(duration, int) and duration >= 1):
        raise ChaosError(
            f"window duration must be an int >= 1, got {duration!r}")
    if period is not None and not (
            isinstance(period, int) and period >= duration):
        raise ChaosError(
            f"window period must be an int >= duration ({duration}), "
            f"got {period!r}")
    if not (isinstance(jitter, int) and jitter >= 0):
        raise ChaosError(f"start jitter must be an int >= 0, got {jitter!r}")


def _window_active(step: int, start: int, duration: int,
                   period: Optional[int]) -> bool:
    offset = step - start
    if offset < 0:
        return False
    if period is None:
        return offset < duration
    return (offset % period) < duration


@dataclass(frozen=True)
class CapacityDegradation(StructuralInjector):
    """Gateway ``gateway`` runs at ``factor * mu`` while active.

    ``factor`` must lie strictly in ``(0, 1)`` — a full capacity loss
    is a :class:`GatewayBlackhole`, because the queue laws require
    ``mu > 0``.  With ``period=None`` the window
    ``[start, start + duration)`` happens once; otherwise it repeats
    every ``period`` steps.  ``jitter`` shifts the start by a seeded
    per-member offset in ``{0, ..., jitter}``.
    """

    gateway: str = ""
    factor: float = 0.5
    start: int = 0
    duration: int = 1
    period: Optional[int] = None
    jitter: int = 0

    kind = "degrade"

    def __post_init__(self):
        if not (isinstance(self.gateway, str) and self.gateway):
            raise ChaosError(
                f"degradation gateway must be a nonempty string, "
                f"got {self.gateway!r}")
        f = float(self.factor)
        if not (math.isfinite(f) and 0.0 < f < 1.0):
            raise ChaosError(
                f"degradation factor must lie strictly in (0, 1), got "
                f"{self.factor!r} (use GatewayBlackhole for a dead line)")
        _check_window(self.start, self.duration, self.period, self.jitter)


@dataclass(frozen=True)
class GatewayBlackhole(StructuralInjector):
    """Gateway ``gateway`` stops forwarding while active.

    Rerouting-free semantics: routes are static, so every connection
    through the gateway observes the saturated signal ``b = 1`` for
    the whole window (maximal congestion, never a silent detour).
    Window parameters as in :class:`CapacityDegradation`.
    """

    gateway: str = ""
    start: int = 0
    duration: int = 1
    period: Optional[int] = None
    jitter: int = 0

    kind = "blackhole"

    def __post_init__(self):
        if not (isinstance(self.gateway, str) and self.gateway):
            raise ChaosError(
                f"blackhole gateway must be a nonempty string, "
                f"got {self.gateway!r}")
        _check_window(self.start, self.duration, self.period, self.jitter)


@dataclass(frozen=True)
class StructuralFaultPlan:
    """A seeded, immutable set of structural injectors.

    ``StructuralFaultPlan()`` is the empty plan — a guaranteed no-op
    (:meth:`start` returns ``None`` so callers keep the clean path).
    Plans are picklable and travel into sweep workers.
    """

    injectors: Tuple[StructuralInjector, ...] = ()
    seed: int = 0

    def __post_init__(self):
        injectors = tuple(self.injectors)
        for inj in injectors:
            if not isinstance(inj, StructuralInjector):
                raise ChaosError(
                    f"plan entries must be structural injectors, "
                    f"got {inj!r}")
        object.__setattr__(self, "injectors", injectors)
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ChaosError(
                f"plan seed must be an int >= 0, got {self.seed!r}")

    @property
    def empty(self) -> bool:
        return not self.injectors

    def start(self, system, member: int = 0
              ) -> Optional["StructuralFaultState"]:
        """Create the per-run state, or ``None`` for the empty plan.

        ``system`` is the :class:`~repro.core.dynamics.FlowControlSystem`
        being run — the state needs its network *and* its signalling
        configuration (discipline, signal function, style, weights) to
        build degraded feedback schemes.
        """
        if self.empty:
            return None
        network = system.network
        for inj in self.injectors:
            if inj.gateway not in network.gateway_names:
                raise ChaosError(
                    f"{inj.kind} names unknown gateway {inj.gateway!r}; "
                    f"known: {sorted(network.gateway_names)}")
        return StructuralFaultState(self, system, int(member))

    def describe(self) -> str:
        """One-line human-readable summary (CLI, provenance notes)."""
        if self.empty:
            return "no structural faults"
        parts = [repr(inj) for inj in self.injectors]
        return f"seed={self.seed}; " + ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe description (artifact provenance)."""
        return {"seed": self.seed,
                "injectors": [inj.to_dict() for inj in self.injectors]}


class _ResolvedView(NamedTuple):
    """The world one step sees: a (possibly degraded) network and
    scheme, plus the blackholed connection index array.  ``key`` is a
    hashable damage signature — rows of a batch sharing a key may be
    evolved through any one member's view bit-identically (equal
    signatures build equal schemes from the same base system)."""

    key: tuple
    network: object
    scheme: object
    blackholed: np.ndarray


class StructuralFaultState:
    """Mutable per-trajectory structural machinery.

    Resolves each step to a :class:`_ResolvedView` (cached per damage
    signature — a long outage builds its degraded network and scheme
    once) and records :class:`StructuralEvent` transitions.

    Attributes:
        events: every window transition so far, in step order.
    """

    def __init__(self, plan: StructuralFaultPlan, system, member: int):
        # Imported here, not at module top: chaos sits above core in
        # the layering, and the deferred import keeps accidental
        # core -> chaos cycles impossible.
        from ..core.signals import FeedbackScheme
        self._scheme_cls = FeedbackScheme
        self.plan = plan
        self.member = int(member)
        self.events: List[StructuralEvent] = []
        self._network = system.network
        self._scheme = system.scheme
        self._discipline = system.discipline
        self._signal_fn = system.scheme.signal_fn
        self._style = system.scheme.style
        self._weights = system.scheme.weights
        rng = np.random.default_rng([plan.seed, self.member])
        # One jitter draw per injector, in plan order, drawn
        # unconditionally so the stream shape never depends on which
        # injectors happen to carry jitter.
        draws = rng.integers(0, [inj.jitter + 1
                                 for inj in plan.injectors])
        self._starts = tuple(inj.start + int(draws[k])
                             for k, inj in enumerate(plan.injectors))
        self._empty_idx = np.empty(0, dtype=np.intp)
        self._clean = _ResolvedView((), self._network, self._scheme,
                                    self._empty_idx)
        self._cache: Dict[tuple, _ResolvedView] = {(): self._clean}
        self._active_prev: Tuple[bool, ...] = (False,) * len(plan.injectors)
        self._last_step: Optional[int] = None

    def _active(self, step: int) -> Tuple[bool, ...]:
        return tuple(
            _window_active(step, self._starts[k], inj.duration, inj.period)
            for k, inj in enumerate(self.plan.injectors))

    def _build(self, active: Tuple[bool, ...]) -> _ResolvedView:
        factors: Dict[str, float] = {}
        blackholed: List[str] = []
        key_parts = []
        for k, inj in enumerate(self.plan.injectors):
            if not active[k]:
                continue
            if isinstance(inj, CapacityDegradation):
                factors[inj.gateway] = (factors.get(inj.gateway, 1.0)
                                        * inj.factor)
                key_parts.append(("degrade", inj.gateway, inj.factor))
            else:
                blackholed.append(inj.gateway)
                key_parts.append(("blackhole", inj.gateway))
        key = tuple(sorted(key_parts))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        network = self._network.with_mu_factors(factors)
        scheme = (self._scheme if network is self._network else
                  self._scheme_cls(network, self._discipline,
                                   self._signal_fn, self._style,
                                   weights=self._weights))
        if blackholed:
            idx = np.unique(np.concatenate([
                np.asarray(self._network.connections_at(g), dtype=np.intp)
                for g in sorted(set(blackholed))]))
        else:
            idx = self._empty_idx
        view = _ResolvedView(key, network, scheme, idx)
        self._cache[key] = view
        return view

    def resolve(self, step: int) -> _ResolvedView:
        """The network/scheme/blackhole view for one step.

        Records activation and restore events the first time a step is
        resolved (re-resolving the same step is idempotent, so scalar
        probes like ``system.step`` may be replayed).
        """
        active = self._active(step)
        if self._last_step is None or step > self._last_step:
            for k, inj in enumerate(self.plan.injectors):
                if active[k] and not self._active_prev[k]:
                    detail = (inj.factor
                              if isinstance(inj, CapacityDegradation)
                              else 0.0)
                    self.events.append(StructuralEvent(
                        int(step), self.member, inj.gateway, inj.kind,
                        float(detail)))
                elif self._active_prev[k] and not active[k]:
                    self.events.append(StructuralEvent(
                        int(step), self.member, inj.gateway, "restore",
                        1.0))
            self._active_prev = active
            self._last_step = step
        return self._build(active)
