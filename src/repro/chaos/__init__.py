"""Structural chaos layer: topology faults, adversaries, crashpoints.

Three kinds of trouble, one package:

* :mod:`repro.chaos.structural` — scheduled *topology* damage
  (capacity degradations, gateway blackholes) threaded through the
  analytic dynamics, scalar and batch alike, with the same empty-plan
  bit-identity contract as :mod:`repro.faults`;
* :mod:`repro.chaos.adversaries` — misbehaving sources (blasters,
  pinners, sawtooths) that compose per-connection with honest TSI
  rules, plus :mod:`repro.chaos.monitor`'s runtime Theorem 5
  robustness-floor assertion over the honest connections;
* :mod:`repro.chaos.crashpoints` — env-armed SIGKILL sites along the
  sweep/orchestrator write paths, driven by the kill-anywhere harness
  in :mod:`repro.chaos.harness` (imported lazily by its users, not
  here — it sits above :mod:`repro.parallel` in the layering).

Entry point: ``python -m repro chaos`` runs the structural demo, the
floor monitor on FS vs FIFO, and a small kill-anywhere check.
"""

from .adversaries import (AdversaryRule, BlasterRule, PinnedRateRule,
                          SawtoothRule, honest_indices, is_adversary)
from .crashpoints import (CRASHPOINT_ENV, KNOWN_CRASHPOINTS, crashpoint,
                          parse_crashpoint, reset_crashpoints)
from .monitor import FLOOR_TOL, FloorCheck, check_robustness_floor
from .structural import (CapacityDegradation, GatewayBlackhole,
                         StructuralEvent, StructuralFaultPlan,
                         StructuralFaultState, StructuralInjector)

__all__ = [
    "AdversaryRule", "BlasterRule", "PinnedRateRule", "SawtoothRule",
    "honest_indices", "is_adversary",
    "CRASHPOINT_ENV", "KNOWN_CRASHPOINTS", "crashpoint",
    "parse_crashpoint", "reset_crashpoints",
    "FLOOR_TOL", "FloorCheck", "check_robustness_floor",
    "CapacityDegradation", "GatewayBlackhole", "StructuralEvent",
    "StructuralFaultPlan", "StructuralFaultState", "StructuralInjector",
]
