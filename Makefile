PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test selftest gate fuzz-quick verify bench

test:
	$(PYTHON) -m pytest -q

selftest:
	$(PYTHON) -m repro selftest --quick

gate:
	$(PYTHON) benchmarks/regression_gate.py --quick

# Seeded, bounded fuzzing sweep (~15 s): 12 deterministic scenarios
# through the full differential/theorem oracle catalogue.  Runs
# alongside `gate` in the tier-1 flow; a failing scenario prints its
# ScenarioSpec JSON for reproduction.
fuzz-quick:
	$(PYTHON) -m repro fuzz --seed 7 --count 12 --shrink

# The tier-1 flow: full test suite, the engine smoke check, the
# benchmark regression gate (quick CI workload), and the bounded
# fuzzing sweep.
verify: test selftest gate fuzz-quick

# Full-scale benchmarks + gate; refreshes BENCH_core.json and
# BENCH_sim.json.
bench:
	$(PYTHON) benchmarks/bench_core_engine.py
	$(PYTHON) benchmarks/bench_sim_kernel.py
	$(PYTHON) benchmarks/regression_gate.py
