PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test selftest gate fuzz-quick scale-quick chaos-quick \
	async-quick compiled-quick verify bench

test:
	$(PYTHON) -m pytest -q

selftest:
	$(PYTHON) -m repro selftest --quick

gate:
	$(PYTHON) benchmarks/regression_gate.py --quick

# Seeded, bounded fuzzing sweep (~15 s): 12 deterministic scenarios
# through the full differential/theorem oracle catalogue.  Runs
# alongside `gate` in the tier-1 flow; a failing scenario prints its
# ScenarioSpec JSON for reproduction.
fuzz-quick:
	$(PYTHON) -m repro fuzz --seed 7 --count 12 --shrink

# Quick blocked-vs-one-shot scale check: small workloads judged
# against the committed BENCH_scale.json quick floors (no rewrite).
scale-quick:
	$(PYTHON) benchmarks/bench_scale.py --quick --check

# Quick chaos sweep (~30 s): the structural-fault demo, the Theorem 5
# robustness-floor monitor (Fair Share holds / FIFO violates), and the
# kill-anywhere orchestrator recovery harness at 2 rounds.
chaos-quick:
	$(PYTHON) -m repro chaos --quick

# Quick asynchronous-engine check: batched run_async_ensemble vs the
# scalar per-member loop (bit-identity verified before timing) and the
# delay-ring overhead, judged against the BENCH_async.json quick
# floors (no rewrite).
async-quick:
	$(PYTHON) benchmarks/bench_async.py --quick --check

# Quick compiled-backend check: small workloads judged against the
# BENCH_compiled.json quick floors (no rewrite).  Exits 0 with a
# notice when no compiled tier can be built (no numba, no C compiler)
# so a bare install stays green.
compiled-quick:
	$(PYTHON) benchmarks/bench_compiled.py --quick

# The tier-1 flow: full test suite, the engine smoke check, the
# benchmark regression gate (quick CI workload), the bounded fuzzing
# sweep, the blocked-ensemble scale check, the chaos sweep, the
# asynchronous-engine check, and the compiled-backend check.
verify: test selftest gate fuzz-quick scale-quick chaos-quick \
	async-quick compiled-quick

# Full-scale benchmarks + gate; refreshes BENCH_core.json,
# BENCH_sim.json, BENCH_scale.json, BENCH_controllers.json,
# BENCH_chaos.json, BENCH_async.json, and BENCH_compiled.json.
bench:
	$(PYTHON) benchmarks/bench_core_engine.py
	$(PYTHON) benchmarks/bench_sim_kernel.py
	$(PYTHON) benchmarks/bench_scale.py
	$(PYTHON) benchmarks/bench_controllers.py
	$(PYTHON) benchmarks/bench_chaos.py
	$(PYTHON) benchmarks/bench_async.py
	$(PYTHON) benchmarks/bench_compiled.py
	$(PYTHON) benchmarks/regression_gate.py
