PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test selftest gate verify bench

test:
	$(PYTHON) -m pytest -q

selftest:
	$(PYTHON) -m repro selftest --quick

gate:
	$(PYTHON) benchmarks/regression_gate.py --quick

# The tier-1 flow: full test suite, the engine smoke check, and the
# benchmark regression gate (quick CI workload).
verify: test selftest gate

# Full-scale benchmarks + gate; refreshes BENCH_core.json and
# BENCH_sim.json.
bench:
	$(PYTHON) benchmarks/bench_core_engine.py
	$(PYTHON) benchmarks/bench_sim_kernel.py
	$(PYTHON) benchmarks/regression_gate.py
