"""Unit tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem
from repro.core.fairshare import FairShare
from repro.core.ratecontrol import TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway, two_gateway_shared
from repro.errors import FaultError
from repro.faults import (ExtraDelay, FaultPlan, GatewayOutage,
                          SignalLoss, SignalNoise, SignalQuantisation,
                          parse_fault_spec)
from repro.observability import collect


def _signals(steps, n=3, seed=0):
    """A deterministic stream of 'true' signal vectors in [0, 1]."""
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.0, 1.0, n) for _ in range(steps)]


def _replay(plan, signals, member=0):
    state = plan.start(n_connections=signals[0].shape[0], member=member)
    observed = [state.apply(t + 1, b) for t, b in enumerate(signals)]
    return observed, state.events


class TestFaultPlan:
    def test_empty_plan_starts_to_none(self):
        assert FaultPlan().empty
        assert FaultPlan().start(n_connections=4) is None

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultPlan(injectors=("not an injector",))
        with pytest.raises(FaultError):
            FaultPlan(seed=-1)
        with pytest.raises(FaultError):
            FaultPlan(injectors=(SignalLoss(0.5),)).start()
        with pytest.raises(FaultError):
            FaultPlan(injectors=(SignalLoss(0.5),)).start(n_connections=0)

    def test_describe_and_to_dict(self):
        plan = FaultPlan(injectors=(SignalLoss(0.25),), seed=3)
        assert "seed=3" in plan.describe()
        assert FaultPlan().describe() == "no faults"
        d = plan.to_dict()
        assert d["seed"] == 3
        assert d["injectors"][0]["kind"] == "loss"

    def test_plan_is_picklable(self):
        import pickle
        plan = parse_fault_spec("loss=0.2,delay=2:1,outage=5:3,seed=9")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_unknown_gateway_rejected(self):
        net = single_gateway(3)
        plan = FaultPlan(injectors=(GatewayOutage(gateway="nope"),))
        with pytest.raises(FaultError):
            plan.start(network=net)

    def test_named_gateway_needs_network(self):
        plan = FaultPlan(injectors=(GatewayOutage(gateway="g0"),))
        with pytest.raises(FaultError):
            plan.start(n_connections=3)

    def test_shape_mismatch_rejected(self):
        state = FaultPlan(injectors=(SignalLoss(0.5),)).start(
            n_connections=3)
        with pytest.raises(FaultError):
            state.apply(1, np.zeros(4))


class TestInjectorValidation:
    def test_bad_parameters_raise(self):
        for bad in (lambda: SignalLoss(rate=1.5),
                    lambda: SignalLoss(rate=-0.1),
                    lambda: SignalLoss(rate=0.5, connections=(-1,)),
                    lambda: SignalNoise(rate=2.0),
                    lambda: SignalNoise(rate=0.5, amplitude=0.0),
                    lambda: SignalNoise(rate=0.5, amplitude=2.0),
                    lambda: SignalQuantisation(levels=1),
                    lambda: ExtraDelay(delay=-1),
                    lambda: ExtraDelay(delay=0, jitter=0),
                    lambda: GatewayOutage(start=-1),
                    lambda: GatewayOutage(duration=0),
                    lambda: GatewayOutage(duration=5, period=3)):
            with pytest.raises(FaultError):
                bad()


class TestInjectorDeterminism:
    """Same plan + same member + same inputs => identical everything."""

    PLANS = [
        FaultPlan(injectors=(SignalLoss(rate=0.4),), seed=11),
        FaultPlan(injectors=(SignalNoise(rate=0.5, amplitude=0.2),),
                  seed=11),
        FaultPlan(injectors=(SignalQuantisation(levels=4),), seed=11),
        FaultPlan(injectors=(ExtraDelay(delay=2, jitter=2),), seed=11),
        FaultPlan(injectors=(GatewayOutage(start=3, duration=4,
                                           period=10),), seed=11),
        parse_fault_spec("loss=0.3,noise=0.4:0.1,quantise=5,"
                         "delay=1:1,outage=2:2:8,seed=11"),
    ]

    @pytest.mark.parametrize("plan", PLANS,
                             ids=lambda p: p.describe()[:40])
    def test_bitwise_reproducible(self, plan):
        signals = _signals(40)
        obs_a, ev_a = _replay(plan, signals)
        obs_b, ev_b = _replay(plan, signals)
        for a, b in zip(obs_a, obs_b):
            assert np.array_equal(a, b)
        assert ev_a == ev_b
        assert ev_a  # every plan here actually injects something

    def test_members_get_independent_streams(self):
        plan = FaultPlan(injectors=(SignalLoss(rate=0.5),), seed=11)
        signals = _signals(40)
        _, ev0 = _replay(plan, signals, member=0)
        _, ev1 = _replay(plan, signals, member=1)
        assert [e.step for e in ev0] != [e.step for e in ev1]

    def test_input_never_mutated(self):
        plan = FaultPlan(injectors=(SignalNoise(rate=1.0),), seed=1)
        state = plan.start(n_connections=3)
        b = np.array([0.2, 0.5, 0.8])
        keep = b.copy()
        state.apply(1, b)
        assert np.array_equal(b, keep)


class TestInjectorSemantics:
    def test_loss_delivers_stale_value(self):
        plan = FaultPlan(injectors=(SignalLoss(rate=1.0),), seed=0)
        state = plan.start(n_connections=2)
        first = state.apply(1, np.array([0.3, 0.6]))
        # Before anything was delivered, the stale value is 0.
        assert np.array_equal(first, np.zeros(2))
        second = state.apply(2, np.array([0.9, 0.1]))
        assert np.array_equal(second, first)
        assert all(e.kind == "loss" for e in state.events)

    def test_loss_respects_connection_subset(self):
        plan = FaultPlan(injectors=(
            SignalLoss(rate=1.0, connections=(1,)),), seed=0)
        state = plan.start(n_connections=3)
        state.apply(1, np.array([0.2, 0.5, 0.8]))
        assert {e.connection for e in state.events} == {1}

    def test_loss_out_of_range_connection(self):
        plan = FaultPlan(injectors=(
            SignalLoss(rate=1.0, connections=(5,)),), seed=0)
        state = plan.start(n_connections=2)
        with pytest.raises(FaultError):
            state.apply(1, np.zeros(2))

    def test_delay_shifts_the_stream(self):
        plan = FaultPlan(injectors=(ExtraDelay(delay=2),), seed=0)
        signals = _signals(10)
        observed, events = _replay(plan, signals)
        # From step 3 on, the observation is the signal two steps back.
        for t in range(2, 10):
            assert np.array_equal(observed[t], signals[t - 2])
        assert all(e.detail == 2.0 for e in events
                   if e.step >= 3)

    def test_delay_clamps_to_available_history(self):
        plan = FaultPlan(injectors=(ExtraDelay(delay=5),), seed=0)
        signals = _signals(3)
        observed, _ = _replay(plan, signals)
        # Step 1 has no history: lag clamps to 0, signal passes through.
        assert np.array_equal(observed[0], signals[0])
        assert np.array_equal(observed[2], signals[0])

    def test_outage_freezes_last_delivery(self):
        plan = FaultPlan(injectors=(GatewayOutage(start=3, duration=2),),
                         seed=0)
        signals = _signals(6)
        observed, events = _replay(plan, signals)
        # steps 3 and 4 stay frozen at step 2's delivery; step 5 clears
        assert np.array_equal(observed[2], signals[1])
        assert np.array_equal(observed[3], signals[1])
        assert np.array_equal(observed[4], signals[4])
        assert {e.step for e in events} == {3, 4}

    def test_periodic_outage_recurs(self):
        inj = GatewayOutage(start=2, duration=1, period=4)
        active = [step for step in range(1, 12) if inj.active(step)]
        assert active == [2, 6, 10]

    def test_named_gateway_outage_only_hits_local_connections(self):
        net = two_gateway_shared()  # per-gateway connection subsets
        gname = "ga"
        local = set(net.connections_at(gname))
        assert local != set(range(net.num_connections))
        plan = FaultPlan(injectors=(
            GatewayOutage(start=1, duration=3, gateway=gname),), seed=0)
        state = plan.start(network=net)
        for t in range(1, 4):
            state.apply(t, np.full(net.num_connections, 0.5))
        assert {e.connection for e in state.events} == local

    def test_noise_stays_in_unit_interval(self):
        plan = FaultPlan(injectors=(SignalNoise(rate=1.0,
                                                amplitude=1.0),), seed=2)
        state = plan.start(n_connections=4)
        for t in range(1, 30):
            out = state.apply(t, np.array([0.0, 0.01, 0.99, 1.0]))
            assert np.all(out >= 0.0) and np.all(out <= 1.0)
        # detail is the realised (post-clip) perturbation
        for e in state.events:
            assert abs(e.detail) <= 1.0

    def test_quantisation_rounds_to_grid(self):
        plan = FaultPlan(injectors=(SignalQuantisation(levels=3),),
                         seed=0)
        state = plan.start(n_connections=4)
        out = state.apply(1, np.array([0.0, 0.26, 0.5, 1.0]))
        assert np.array_equal(out, np.array([0.0, 0.5, 0.5, 1.0]))
        # events only where rounding moved the value
        assert {e.connection for e in state.events} == {1}

    def test_stage_order_is_fixed_regardless_of_listing(self):
        signals = _signals(20)
        a = FaultPlan(injectors=(SignalQuantisation(levels=4),
                                 SignalLoss(rate=0.5)), seed=7)
        b = FaultPlan(injectors=(SignalLoss(rate=0.5),
                                 SignalQuantisation(levels=4)), seed=7)
        obs_a, ev_a = _replay(a, signals)
        obs_b, ev_b = _replay(b, signals)
        for x, y in zip(obs_a, obs_b):
            assert np.array_equal(x, y)
        assert ev_a == ev_b


class TestSpecParsing:
    def test_round_trip_of_every_injector(self):
        plan = parse_fault_spec(
            " loss=0.3 , noise=0.2:0.05, quantise=16, delay=2:1, "
            "outage=10:5:40@g0, seed=21 ")
        kinds = [inj.kind for inj in plan.injectors]
        assert kinds == ["loss", "corrupt", "quantise", "delay",
                         "outage"]
        assert plan.seed == 21
        outage = plan.injectors[-1]
        assert (outage.start, outage.duration, outage.period,
                outage.gateway) == (10, 5, 40, "g0")

    def test_defaults(self):
        plan = parse_fault_spec("noise=0.2,delay=3")
        assert plan.injectors[0].amplitude == 0.1
        assert plan.injectors[1].jitter == 0
        assert plan.seed == 0

    @pytest.mark.parametrize("bad", [
        "loss", "loss=abc", "loss=1.5", "noise=0.1:0.2:0.3",
        "delay=1:2:3", "outage=5", "outage=a:b", "seed=-2",
        "wormhole=1", "loss=0.1 noise=0.2",
    ])
    def test_malformed_specs_name_the_token(self, bad):
        with pytest.raises(FaultError) as err:
            parse_fault_spec(bad)
        first = bad.split(",")[0].strip()
        assert first.split("=")[0] in str(err.value)


class TestFaultsInRuns:
    def _system(self, n=3):
        return FlowControlSystem(single_gateway(n, mu=1.0), FairShare(),
                                 LinearSaturating(),
                                 TargetRule(eta=0.1, beta=0.5),
                                 style=FeedbackStyle.INDIVIDUAL)

    def test_run_records_events_and_is_deterministic(self):
        system = self._system()
        plan = parse_fault_spec("loss=0.5,seed=3")
        start = np.array([0.1, 0.2, 0.3])
        t1 = system.run(start, max_steps=400, faults=plan)
        t2 = system.run(start, max_steps=400, faults=plan)
        assert t1.fault_events
        assert t1.fault_events == t2.fault_events
        assert np.array_equal(t1.final, t2.final)

    def test_faultless_run_has_no_event_channel(self):
        system = self._system()
        traj = system.run(np.array([0.1, 0.2, 0.3]), max_steps=100)
        assert traj.fault_events is None

    def test_run_events_reach_observability(self):
        system = self._system()
        plan = parse_fault_spec("loss=0.5,seed=3")
        with collect() as session:
            traj = system.run(np.array([0.1, 0.2, 0.3]), max_steps=200,
                              faults=plan)
        rec = session.run_records[0]
        assert len(rec.fault_events) == len(traj.fault_events)
        data = rec.to_dict()
        assert data["fault_events"][0][3] == "loss"

    def test_x6_artifact_is_schema_valid(self, tmp_path):
        import json

        from repro.experiments import run_x6_faulty_feedback, to_json
        from repro.observability import validate_artifact

        with collect() as session:
            result = run_x6_faulty_feedback(steps=2000,
                                            loss_rates=(0.0, 0.5))
        assert result.all_checks_pass, result.failed_checks()
        path = to_json(result, tmp_path, session=session,
                       config={"experiment_id": "X6"})
        data = json.loads(path.read_text())
        assert validate_artifact(data) == []
        assert data["experiment"]["id"] == "X6"
        # the sweep that produced the grid is on the record
        assert data["observability"]["sweep_records"]

    def test_ensemble_member_matches_scalar_run(self):
        system = self._system()
        plan = parse_fault_spec("loss=0.3,noise=0.3:0.05,seed=5")
        starts = np.array([[0.1, 0.2, 0.3],
                           [0.3, 0.1, 0.2],
                           [0.05, 0.4, 0.15]])
        ens = system.run_ensemble(starts, max_steps=500, faults=plan)
        for m in range(starts.shape[0]):
            tm = system.run(starts[m], max_steps=500, faults=plan,
                            fault_member=m)
            assert np.array_equal(ens.finals[m], tm.final)
            scalar_events = [
                e._replace(member=m) for e in tm.fault_events]
            ens_events = [e for e in ens.fault_events if e.member == m]
            assert ens_events == scalar_events
