"""Unit tests for the rate-adjustment rules and the TSI predicate."""

import math

import pytest

from repro.core.ratecontrol import (BinaryAimdRule, DecbitRateRule,
                                    DecbitWindowRule,
                                    ProportionalTargetRule, TargetRule,
                                    tsi_target, verify_tsi)
from repro.errors import NotTimeScaleInvariantError, RateVectorError


class TestTargetRule:
    def test_sign(self):
        rule = TargetRule(eta=0.1, beta=0.5)
        assert rule.delta(1.0, 0.4, 1.0) > 0
        assert rule.delta(1.0, 0.6, 1.0) < 0
        assert rule.delta(1.0, 0.5, 1.0) == 0.0

    def test_independent_of_rate_and_delay(self):
        rule = TargetRule(eta=0.1, beta=0.5)
        assert rule.delta(0.1, 0.3, 1.0) == rule.delta(99.0, 0.3, 77.0)

    def test_apply_truncates(self):
        rule = TargetRule(eta=10.0, beta=0.1)
        assert rule.apply(0.0, 1.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            TargetRule(eta=-1.0)
        with pytest.raises(RateVectorError):
            TargetRule(beta=1.0)

    def test_declared_target(self):
        assert TargetRule(beta=0.3).declared_target == 0.3


class TestProportionalTargetRule:
    def test_scales_with_rate(self):
        rule = ProportionalTargetRule(eta=0.5, beta=0.5)
        assert rule.delta(2.0, 0.4, 1.0) == \
            pytest.approx(2 * rule.delta(1.0, 0.4, 1.0))

    def test_zero_rate_absorbing(self):
        rule = ProportionalTargetRule()
        assert rule.apply(0.0, 0.1, 1.0) == 0.0


class TestDecbitRules:
    def test_window_rule_latency_sensitivity(self):
        rule = DecbitWindowRule(eta=0.1, beta=0.5)
        fast = rule.delta(0.1, 0.2, 0.5)
        slow = rule.delta(0.1, 0.2, 5.0)
        assert fast > slow  # long RTT grows more slowly

    def test_window_rule_infinite_delay(self):
        rule = DecbitWindowRule()
        assert rule.delta(1.0, 0.5, math.inf) < 0

    def test_window_rule_bad_delay(self):
        with pytest.raises(RateVectorError):
            DecbitWindowRule().delta(1.0, 0.5, 0.0)

    def test_rate_rule_steady_rate(self):
        rule = DecbitRateRule(eta=0.05, beta=0.5)
        b = 0.4
        r = rule.steady_rate(b)
        assert rule.delta(r, b, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_rate_rule_steady_rate_at_zero_signal(self):
        assert math.isinf(DecbitRateRule().steady_rate(0.0))


class TestBinaryAimd:
    def test_increase_below_threshold(self):
        rule = BinaryAimdRule(increase=0.01, decrease=0.5, threshold=0.5)
        assert rule.delta(1.0, 0.2, 1.0) == pytest.approx(0.01)

    def test_decrease_above_threshold(self):
        rule = BinaryAimdRule(increase=0.01, decrease=0.5, threshold=0.5)
        assert rule.delta(1.0, 0.9, 1.0) == pytest.approx(-0.5)

    def test_never_zero(self):
        rule = BinaryAimdRule()
        for b in (0.0, 0.49, 0.51, 1.0):
            assert rule.delta(1.0, b, 1.0) != 0.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            BinaryAimdRule(decrease=1.5)


class TestTsiPredicate:
    def test_target_rule_is_tsi(self):
        assert verify_tsi(TargetRule(eta=0.1, beta=0.5)) == \
            pytest.approx(0.5, abs=1e-6)

    def test_proportional_rule_is_tsi(self):
        assert verify_tsi(ProportionalTargetRule(beta=0.3)) == \
            pytest.approx(0.3, abs=1e-6)

    def test_decbit_rate_rule_not_tsi(self):
        # Its zero depends on r: different (r, d) give different roots.
        assert verify_tsi(DecbitRateRule()) is None

    def test_decbit_window_rule_not_tsi(self):
        assert verify_tsi(DecbitWindowRule()) is None

    def test_tsi_target_uses_declaration(self):
        assert tsi_target(TargetRule(beta=0.7)) == 0.7

    def test_tsi_target_raises_for_non_tsi(self):
        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(DecbitRateRule())

    def test_theorem1_condition2_rule_with_flat_region_rejected(self):
        # A rule vanishing on an interval of b violates condition (2).
        class Flat(TargetRule):
            declared_target = None

            def delta(self, rate, signal, delay):
                if 0.4 <= signal <= 0.6:
                    return 0.0
                return super().delta(rate, signal, delay)

        assert verify_tsi(Flat(eta=0.1, beta=0.5)) is None
