"""Unit tests for the rate-adjustment rules and the TSI predicate."""

import math

import numpy as np
import pytest

from repro.core.ratecontrol import (BinaryAimdRule, DecbitRateRule,
                                    DecbitWindowRule,
                                    ProportionalTargetRule, RateAdjustment,
                                    RcpSourceRule, TargetRule, TcpLikeRule,
                                    tsi_target, verify_tsi)
from repro.errors import NotTimeScaleInvariantError, RateVectorError


class TestTargetRule:
    def test_sign(self):
        rule = TargetRule(eta=0.1, beta=0.5)
        assert rule.delta(1.0, 0.4, 1.0) > 0
        assert rule.delta(1.0, 0.6, 1.0) < 0
        assert rule.delta(1.0, 0.5, 1.0) == 0.0

    def test_independent_of_rate_and_delay(self):
        rule = TargetRule(eta=0.1, beta=0.5)
        assert rule.delta(0.1, 0.3, 1.0) == rule.delta(99.0, 0.3, 77.0)

    def test_apply_truncates(self):
        rule = TargetRule(eta=10.0, beta=0.1)
        assert rule.apply(0.0, 1.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            TargetRule(eta=-1.0)
        with pytest.raises(RateVectorError):
            TargetRule(beta=1.0)

    def test_declared_target(self):
        assert TargetRule(beta=0.3).declared_target == 0.3


class TestProportionalTargetRule:
    def test_scales_with_rate(self):
        rule = ProportionalTargetRule(eta=0.5, beta=0.5)
        assert rule.delta(2.0, 0.4, 1.0) == \
            pytest.approx(2 * rule.delta(1.0, 0.4, 1.0))

    def test_zero_rate_absorbing(self):
        rule = ProportionalTargetRule()
        assert rule.apply(0.0, 0.1, 1.0) == 0.0


class TestDecbitRules:
    def test_window_rule_latency_sensitivity(self):
        rule = DecbitWindowRule(eta=0.1, beta=0.5)
        fast = rule.delta(0.1, 0.2, 0.5)
        slow = rule.delta(0.1, 0.2, 5.0)
        assert fast > slow  # long RTT grows more slowly

    def test_window_rule_infinite_delay(self):
        rule = DecbitWindowRule()
        assert rule.delta(1.0, 0.5, math.inf) < 0

    def test_window_rule_bad_delay(self):
        with pytest.raises(RateVectorError):
            DecbitWindowRule().delta(1.0, 0.5, 0.0)

    def test_rate_rule_steady_rate(self):
        rule = DecbitRateRule(eta=0.05, beta=0.5)
        b = 0.4
        r = rule.steady_rate(b)
        assert rule.delta(r, b, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_rate_rule_steady_rate_at_zero_signal(self):
        assert math.isinf(DecbitRateRule().steady_rate(0.0))


class TestBinaryAimd:
    def test_increase_below_threshold(self):
        rule = BinaryAimdRule(increase=0.01, decrease=0.5, threshold=0.5)
        assert rule.delta(1.0, 0.2, 1.0) == pytest.approx(0.01)

    def test_decrease_above_threshold(self):
        rule = BinaryAimdRule(increase=0.01, decrease=0.5, threshold=0.5)
        assert rule.delta(1.0, 0.9, 1.0) == pytest.approx(-0.5)

    def test_never_zero(self):
        rule = BinaryAimdRule()
        for b in (0.0, 0.49, 0.51, 1.0):
            assert rule.delta(1.0, b, 1.0) != 0.0

    def test_validation(self):
        with pytest.raises(RateVectorError):
            BinaryAimdRule(decrease=1.5)


class TestTsiPredicate:
    def test_target_rule_is_tsi(self):
        assert verify_tsi(TargetRule(eta=0.1, beta=0.5)) == \
            pytest.approx(0.5, abs=1e-6)

    def test_proportional_rule_is_tsi(self):
        assert verify_tsi(ProportionalTargetRule(beta=0.3)) == \
            pytest.approx(0.3, abs=1e-6)

    def test_decbit_rate_rule_not_tsi(self):
        # Its zero depends on r: different (r, d) give different roots.
        assert verify_tsi(DecbitRateRule()) is None

    def test_decbit_window_rule_not_tsi(self):
        assert verify_tsi(DecbitWindowRule()) is None

    def test_tsi_target_uses_declaration(self):
        assert tsi_target(TargetRule(beta=0.7)) == 0.7

    def test_tsi_target_raises_for_non_tsi(self):
        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(DecbitRateRule())

    def test_theorem1_condition2_rule_with_flat_region_rejected(self):
        # A rule vanishing on an interval of b violates condition (2).
        class Flat(TargetRule):
            declared_target = None

            def delta(self, rate, signal, delay):
                if 0.4 <= signal <= 0.6:
                    return 0.0
                return super().delta(rate, signal, delay)

        assert verify_tsi(Flat(eta=0.1, beta=0.5)) is None


class TestTcpLikeRule:
    def test_increase_scales_inversely_with_delay(self):
        rule = TcpLikeRule(increase=0.05, decrease=0.125, threshold=0.5)
        assert rule.delta(1.0, 0.2, 1.0) == pytest.approx(0.05)
        assert rule.delta(1.0, 0.2, 5.0) == pytest.approx(0.01)

    def test_decrease_is_multiplicative(self):
        rule = TcpLikeRule(increase=0.05, decrease=0.125, threshold=0.5)
        assert rule.delta(2.0, 0.9, 1.0) == pytest.approx(-0.25)
        assert rule.delta(4.0, 0.9, 1.0) == pytest.approx(-0.5)

    def test_never_zero_at_positive_rate(self):
        rule = TcpLikeRule()
        for b in (0.0, 0.49, 0.51, 1.0):
            assert rule.delta(1.0, b, 2.0) != 0.0

    def test_infinite_delay_stalls_the_increase(self):
        rule = TcpLikeRule(threshold=0.5)
        assert rule.delta(1.0, 0.2, math.inf) == 0.0

    def test_nonpositive_delay_rejected(self):
        rule = TcpLikeRule()
        with pytest.raises(RateVectorError):
            rule.delta(1.0, 0.2, 0.0)
        with pytest.raises(RateVectorError):
            rule.delta(1.0, 0.2, -1.0)

    def test_batch_matches_scalar(self):
        rule = TcpLikeRule(increase=0.03, decrease=0.2, threshold=0.45)
        r = np.array([0.5, 1.0, 2.0, 4.0])
        b = np.array([0.1, 0.44, 0.45, 0.9])
        d = np.array([0.5, 1.0, 2.0, np.inf])
        batch = rule.delta_batch(r, b, d)
        for k in range(4):
            assert batch[k] == rule.delta(float(r[k]), float(b[k]),
                                          float(d[k]))

    def test_batch_rejects_nonpositive_delay(self):
        rule = TcpLikeRule()
        with pytest.raises(RateVectorError):
            rule.delta_batch(np.ones(3), np.zeros(3),
                             np.array([1.0, 0.0, 2.0]))

    def test_validation(self):
        with pytest.raises(RateVectorError):
            TcpLikeRule(increase=0.0)
        with pytest.raises(RateVectorError):
            TcpLikeRule(decrease=1.5)
        with pytest.raises(RateVectorError):
            TcpLikeRule(threshold=1.0)

    def test_not_tsi(self):
        # f = eta/d never vanishes below the threshold, so there is no
        # rate-independent root b_ss: Theorem 1 does not apply.
        assert verify_tsi(TcpLikeRule()) is None
        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(TcpLikeRule())


class TestRcpSourceRule:
    def test_delta_is_identically_zero(self):
        rule = RcpSourceRule()
        assert rule.delta(1.0, 0.9, 2.0) == 0.0

    def test_delta_batch_broadcasts_zeros(self):
        rule = RcpSourceRule()
        out = rule.delta_batch(np.ones((2, 3)), 0.5, np.ones(3))
        assert out.shape == (2, 3)
        assert not out.any()


class TestDiscontinuousRulesNotTsi:
    """Regression: brentq's pseudo-root at a jump used to let the TSI
    verifier certify binary AIMD (and tcp-like) as TSI with the
    threshold as target."""

    def test_binary_aimd_not_tsi(self):
        assert verify_tsi(BinaryAimdRule()) is None

    def test_binary_aimd_tsi_target_raises(self):
        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(BinaryAimdRule())


class TestTsiTargetValidatesDeclaration:
    """Regression: ``tsi_target`` used to return ``declared_target``
    without checking it numerically."""

    def test_mislabelled_non_tsi_rule_rejected(self):
        class Mislabelled(BinaryAimdRule):
            declared_target = 0.5

        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(Mislabelled())

    def test_wrong_declared_value_rejected(self):
        rule = TargetRule(eta=0.1, beta=0.5)
        rule.declared_target = 0.3  # claim contradicts the dynamics
        with pytest.raises(NotTimeScaleInvariantError):
            tsi_target(rule)

    def test_honest_declaration_validated_and_returned(self):
        assert tsi_target(TargetRule(eta=0.1, beta=0.5)) == 0.5


class TestBaseDeltaBatchFallback:
    """The base (loop) ``delta_batch`` must accept exactly the input
    shapes the vectorised overrides accept."""

    class ScalarOnly(TargetRule):
        # Force the scalar-loop fallback.
        delta_batch = RateAdjustment.delta_batch

    def rule(self):
        return self.ScalarOnly(eta=0.1, beta=0.5)

    def test_broadcasts_mixed_scalar_and_vector(self):
        rule = self.rule()
        out = rule.delta_batch(np.ones(4), np.linspace(0, 1, 4), 2.0)
        expected = [rule.delta(1.0, float(b), 2.0)
                    for b in np.linspace(0, 1, 4)]
        assert np.array_equal(out, expected)

    def test_zero_dim_inputs(self):
        rule = self.rule()
        out = rule.delta_batch(np.float64(1.0), np.float64(0.3),
                               np.float64(1.0))
        assert float(out) == rule.delta(1.0, 0.3, 1.0)

    def test_empty_inputs(self):
        out = self.rule().delta_batch(np.empty(0), np.empty(0),
                                      np.empty(0))
        assert out.shape == (0,)

    def test_non_contiguous_inputs(self):
        rule = self.rule()
        r = np.arange(8.0)[::2]
        b = np.linspace(0, 1, 8)[::2]
        d = np.ones(8)[::2]
        out = rule.delta_batch(r, b, d)
        expected = [rule.delta(float(r[k]), float(b[k]), float(d[k]))
                    for k in range(4)]
        assert np.array_equal(out, expected)

    def test_matches_vectorised_override(self):
        fallback = self.rule()
        vectorised = TargetRule(eta=0.1, beta=0.5)
        b = np.linspace(0, 1, 7)
        assert np.array_equal(
            fallback.delta_batch(np.ones(7), b, np.ones(7)),
            np.broadcast_to(
                vectorised.delta_batch(np.ones(7), b, np.ones(7)), (7,)))
