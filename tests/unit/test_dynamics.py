"""Unit tests for the synchronous dynamics."""

import numpy as np
import pytest

from repro.core.dynamics import FlowControlSystem, Outcome, Trajectory
from repro.core.fairshare import FairShare
from repro.core.fifo import Fifo
from repro.core.ratecontrol import BinaryAimdRule, TargetRule
from repro.core.signals import FeedbackStyle, LinearSaturating
from repro.core.topology import single_gateway
from repro.errors import ConvergenceError, RateVectorError


def _system(n=3, eta=0.1, beta=0.5, style=FeedbackStyle.INDIVIDUAL,
            discipline=None, rules=None):
    net = single_gateway(n, mu=1.0)
    return FlowControlSystem(net, discipline or FairShare(),
                             LinearSaturating(),
                             rules or TargetRule(eta=eta, beta=beta),
                             style=style)


class TestConstruction:
    def test_single_rule_broadcast(self):
        system = _system(n=4)
        assert len(system.rules) == 4
        assert system.homogeneous

    def test_rule_list_length_checked(self):
        net = single_gateway(3)
        with pytest.raises(RateVectorError):
            FlowControlSystem(net, Fifo(), LinearSaturating(),
                              [TargetRule(), TargetRule()])

    def test_heterogeneous_flag(self):
        net = single_gateway(2)
        system = FlowControlSystem(
            net, Fifo(), LinearSaturating(),
            [TargetRule(beta=0.4), TargetRule(beta=0.6)],
            style=FeedbackStyle.AGGREGATE)
        assert not system.homogeneous


class TestStep:
    def test_step_truncates_at_zero(self):
        system = _system(rules=TargetRule(eta=50.0, beta=0.01))
        out = system.step(np.array([0.9, 0.9, 0.9]))
        assert np.all(out >= 0.0)

    def test_step_moves_toward_target(self):
        system = _system()
        r = np.array([0.01, 0.01, 0.01])
        out = system.step(r)
        assert np.all(out > r)  # far below target: everyone increases

    def test_residual_zero_at_fixed_point(self):
        system = _system()
        fixed = system.solve(np.array([0.05, 0.1, 0.2]))
        assert np.allclose(system.residual(fixed), 0.0, atol=1e-8)

    def test_is_steady_state(self):
        system = _system()
        fixed = system.solve(np.array([0.05, 0.1, 0.2]))
        assert system.is_steady_state(fixed, tol=1e-6)
        assert not system.is_steady_state(np.array([0.01, 0.01, 0.01]))

    def test_wrong_length_rejected(self):
        with pytest.raises(RateVectorError):
            _system(n=3).step(np.array([0.1, 0.1]))


class TestRun:
    def test_converges_and_records_history(self):
        system = _system()
        traj = system.run(np.array([0.05, 0.1, 0.2]))
        assert traj.outcome is Outcome.CONVERGED
        assert traj.history.shape[1] == 3
        assert traj.history.shape[0] == traj.steps + 1
        assert np.array_equal(traj.initial, [0.05, 0.1, 0.2])

    def test_period_one_on_convergence(self):
        traj = _system().run(np.array([0.05, 0.1, 0.2]))
        assert traj.period == 1

    def test_oscillation_detected(self):
        # AIMD never has f = 0: a limit cycle must be reported.
        system = _system(rules=BinaryAimdRule(increase=0.05, decrease=0.5,
                                              threshold=0.5),
                         style=FeedbackStyle.AGGREGATE,
                         discipline=Fifo())
        traj = system.run(np.array([0.1, 0.1, 0.1]), max_steps=500)
        assert traj.outcome is Outcome.OSCILLATING
        assert traj.period is not None and traj.period >= 2

    def test_tail(self):
        traj = _system().run(np.array([0.05, 0.1, 0.2]))
        assert traj.tail(4).shape == (4, 3)
        with pytest.raises(RateVectorError):
            traj.tail(0)

    def test_solve_raises_on_oscillation(self):
        system = _system(rules=BinaryAimdRule(),
                         style=FeedbackStyle.AGGREGATE, discipline=Fifo())
        with pytest.raises(ConvergenceError):
            system.solve(np.array([0.1, 0.1, 0.1]), max_steps=400)

    def test_zero_start_grows(self):
        # TargetRule has f > 0 at b=0, so zero rates take off.
        system = _system()
        traj = system.run(np.zeros(3))
        assert traj.outcome is Outcome.CONVERGED
        assert np.all(traj.final > 0)


class TestObservables:
    def test_signals_shape(self):
        system = _system(n=4)
        assert system.signals(np.full(4, 0.1)).shape == (4,)

    def test_delays_shape(self):
        system = _system(n=4)
        assert system.delays(np.full(4, 0.1)).shape == (4,)

    def test_style_property(self):
        assert _system(style=FeedbackStyle.AGGREGATE).style is \
            FeedbackStyle.AGGREGATE
